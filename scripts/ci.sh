#!/bin/sh
# Offline CI gate: formatting, lints, release build, full test suite.
# Everything runs with --offline — the workspace has no external
# dependencies by design (see docs/eval-cache.md and crates/wafe-prop).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

echo "CI OK"
