#!/bin/sh
# Offline CI gate: formatting, lints, release build, full test suite.
# Everything runs with --offline — the workspace has no external
# dependencies by design (see docs/eval-cache.md and crates/wafe-prop).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

# The chaos suite is deterministic by construction (seeded fault plans,
# virtual tick clock); 50 consecutive runs under a hard timeout catch
# any flakiness regression. The suite is compiled by the test step
# above, so the loop only pays test startup time.
echo "== supervisor chaos suite x50 (60s guard)"
timeout 60 sh -c '
    i=1
    while [ $i -le 50 ]; do
        cargo test -q -p wafe-ipc --test supervisor_chaos --offline \
            >/dev/null 2>&1 || { echo "chaos run $i failed"; exit 1; }
        i=$((i + 1))
    done
' || { echo "supervisor chaos suite: FAILED (or exceeded 60s)"; exit 1; }

# Perf gates. E21 is the dual-rep value model: one smoke run must
# complete (its >=3x acceptance assert is inside the bench) and leave
# well-formed JSON behind. E19 must not regress: the freshly measured
# speedups are compared against the committed BENCH_e19.json with 5%
# tolerance (ratios, not raw ns, so the gate is machine-portable).
# Timing asserts are noise-sensitive right after the heavy steps above,
# so each bench gets one retry before the gate fails.
run_bench() {
    cargo bench -q -p bench --bench "$1" --offline >/dev/null 2>&1 \
        || cargo bench -q -p bench --bench "$1" --offline >/dev/null
}

echo "== bench e21 smoke run"
run_bench e21_value_reps
python3 -c 'import json; json.load(open("BENCH_e21.json"))' \
    || { echo "BENCH_e21.json: malformed"; exit 1; }

echo "== bench e19 no-regression check (<=5%)"
baseline=$(git show HEAD:BENCH_e19.json 2>/dev/null || cat BENCH_e19.json)
run_bench e19_eval_cache
echo "$baseline" | python3 -c '
import json, sys
base = {w["name"]: w["speedup"] for w in json.load(sys.stdin)["workloads"]}
fresh = {w["name"]: w["speedup"] for w in json.load(open("BENCH_e19.json"))["workloads"]}
for name, b in base.items():
    f = fresh[name]
    if f < b * 0.95:
        sys.exit(f"e19 regression: {name} speedup {f:.2f}x < 95% of baseline {b:.2f}x")
    print(f"  {name}: {f:.2f}x (baseline {b:.2f}x) ok")
'

echo "CI OK"
