#!/bin/sh
# Offline CI gate: formatting, lints, release build, full test suite.
# Everything runs with --offline — the workspace has no external
# dependencies by design (see docs/eval-cache.md and crates/wafe-prop).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

# The chaos suite is deterministic by construction (seeded fault plans,
# virtual tick clock); 50 consecutive runs under a hard timeout catch
# any flakiness regression. The suite is compiled by the test step
# above, so the loop only pays test startup time.
echo "== supervisor chaos suite x50 (60s guard)"
timeout 60 sh -c '
    i=1
    while [ $i -le 50 ]; do
        cargo test -q -p wafe-ipc --test supervisor_chaos --offline \
            >/dev/null 2>&1 || { echo "chaos run $i failed"; exit 1; }
        i=$((i + 1))
    done
' || { echo "supervisor chaos suite: FAILED (or exceeded 60s)"; exit 1; }

echo "CI OK"
