#!/bin/sh
# Offline CI gate: formatting, lints, release build, full test suite.
# Everything runs with --offline — the workspace has no external
# dependencies by design (see docs/eval-cache.md and crates/wafe-prop).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

# The chaos suite is deterministic by construction (seeded fault plans,
# virtual tick clock); 50 consecutive runs under a hard timeout catch
# any flakiness regression. The suite is compiled by the test step
# above, so the loop only pays test startup time.
echo "== supervisor chaos suite x50 (60s guard)"
timeout 60 sh -c '
    i=1
    while [ $i -le 50 ]; do
        cargo test -q -p wafe-ipc --test supervisor_chaos --offline \
            >/dev/null 2>&1 || { echo "chaos run $i failed"; exit 1; }
        i=$((i + 1))
    done
' || { echo "supervisor chaos suite: FAILED (or exceeded 60s)"; exit 1; }

# The serve scheduler tests are deterministic the same way (virtual
# tick clock, buffer sinks, no wall-clock asserts); repeat them as a
# flakiness gate too.
echo "== serve deterministic suite x50 (60s guard)"
timeout 60 sh -c '
    i=1
    while [ $i -le 50 ]; do
        cargo test -q -p wafe-serve --test serve_deterministic --offline \
            >/dev/null 2>&1 || { echo "serve run $i failed"; exit 1; }
        i=$((i + 1))
    done
' || { echo "serve deterministic suite: FAILED (or exceeded 60s)"; exit 1; }

# The snapshot property suite pins the checkpoint codec park/restore
# rides on (canonical bytes, fixed-point restore, no shimmer, loud
# failure on truncation/garbage). Each run is ~700 generated cases off
# a fresh xorshift seed; five consecutive runs under a hard timeout
# keep it honest without dominating the gate.
echo "== snapshot property suite x5 (60s guard)"
timeout 60 sh -c '
    i=1
    while [ $i -le 5 ]; do
        cargo test -q -p wafe-serve --test snapshot_props --offline \
            >/dev/null 2>&1 || { echo "snapshot props run $i failed"; exit 1; }
        i=$((i + 1))
    done
' || { echo "snapshot property suite: FAILED (or exceeded 60s)"; exit 1; }

# waferd smoke test: spawn the release binary, connect N clients over
# loopback, round-trip one command each, then drain from a client and
# require a clean exit — all under a hard timeout.
echo "== waferd smoke test (30s guard)"
timeout 30 sh -c '
    ./target/release/waferd --quiet --max-sessions 16 > /tmp/waferd-ci.out 2>&1 &
    pid=$!
    port=""
    i=0
    while [ $i -lt 50 ]; do
        port=$(sed -n "s/.*listening tcp 127\.0\.0\.1:\([0-9]*\)/\1/p" /tmp/waferd-ci.out)
        [ -n "$port" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$port" ] || { echo "waferd did not report a port"; kill $pid; exit 1; }
    python3 - "$port" <<"EOF" || { kill $pid; exit 1; }
import socket, sys
port = int(sys.argv[1])
conns = []
for c in range(8):
    s = socket.create_connection(("127.0.0.1", port), timeout=5)
    f = s.makefile("rw", newline="\n")
    f.write(f"%set v smoke-{c}\n%echo [set v]\n"); f.flush()
    got = f.readline().rstrip("\n")
    assert got == f"smoke-{c}", f"client {c}: {got!r}"
    conns.append((s, f))
s, f = conns[0]
f.write("%serve drain\n"); f.flush()
for s, f in conns:
    assert f.readline() == "", "expected EOF after drain"
    s.close()
EOF
    wait $pid || { echo "waferd exited non-zero"; exit 1; }
    grep -q "waferd drained" /tmp/waferd-ci.out \
        || { echo "waferd did not report a clean drain"; exit 1; }
' || { echo "waferd smoke test: FAILED (or exceeded 30s)"; exit 1; }

# Display smoke test: attach the display protocol over real TCP, drive
# a widget update, and require a checksum-valid frame notice back —
# the browser-free path through the exact bytes the canvas client sees.
echo "== waferd display smoke test (30s guard)"
timeout 30 sh -c '
    ./target/release/waferd --quiet --max-sessions 4 > /tmp/waferd-ci-display.out 2>&1 &
    pid=$!
    port=""
    i=0
    while [ $i -lt 50 ]; do
        port=$(sed -n "s/.*listening tcp 127\.0\.0\.1:\([0-9]*\)/\1/p" /tmp/waferd-ci-display.out)
        [ -n "$port" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$port" ] || { echo "waferd did not report a port"; kill $pid; exit 1; }
    python3 - "$port" <<"EOF" || { kill $pid; exit 1; }
import socket, sys

def fnv1a(data):
    h = 0x811C9DC5
    for b in data:
        h = ((h ^ b) * 16777619) & 0xFFFFFFFF
    return h

def read_frame(f):
    while True:
        line = f.readline()
        assert line, "EOF before a display frame arrived"
        line = line.rstrip("\n")
        if not line.startswith("!display frame "):
            continue
        payload = bytes.fromhex(line.split(" ", 2)[2])
        assert payload[:4] == b"WFRM", "bad frame magic"
        assert int.from_bytes(payload[4:8], "big") == 1, "bad frame version"
        want = int.from_bytes(payload[-4:], "big")
        assert fnv1a(payload[:-4]) == want, "frame checksum mismatch"
        w = int.from_bytes(payload[16:20], "big")
        h = int.from_bytes(payload[20:24], "big")
        assert (w, h) == (1024, 768), f"unexpected screen {w}x{h}"
        return int.from_bytes(payload[8:16], "big")

port = int(sys.argv[1])
s = socket.create_connection(("127.0.0.1", port), timeout=10)
f = s.makefile("rw", newline="\n")
f.write("%display attach\n")
f.write("%label hello topLevel label {ci smoke} width 120 height 40\n")
f.write("%realize\n")
f.flush()
first = read_frame(f)
# Frames coalesce to latest while unsent, so the second update is only
# driven after the first frame has been read off the wire.
f.write("%setValues hello label {ci smoke updated}\n")
f.flush()
second = read_frame(f)
assert second > first, f"frame seq did not advance: {first} -> {second}"
s.close()
EOF
    kill $pid 2>/dev/null
    wait $pid 2>/dev/null
    exit 0
' || { echo "waferd display smoke test: FAILED (or exceeded 30s)"; exit 1; }

# Perf gates. E21 is the dual-rep value model: one smoke run must
# complete (its >=3x acceptance assert is inside the bench) and leave
# well-formed JSON behind. E19 must not regress: the freshly measured
# speedups are compared against the committed BENCH_e19.json with 5%
# tolerance (ratios, not raw ns, so the gate is machine-portable).
# Timing asserts are noise-sensitive right after the heavy steps above,
# so each bench gets one retry before the gate fails.
run_bench() {
    cargo bench -q -p bench --bench "$1" --offline >/dev/null 2>&1 \
        || cargo bench -q -p bench --bench "$1" --offline >/dev/null
}

echo "== bench e21 smoke run"
run_bench e21_value_reps
python3 -c 'import json; json.load(open("BENCH_e21.json"))' \
    || { echo "BENCH_e21.json: malformed"; exit 1; }

# E22 is the multi-session server: the run itself asserts 64 truly
# concurrent sessions with zero protocol corruption.
echo "== bench e22 smoke run"
run_bench e22_serve_throughput
python3 -c 'import json; json.load(open("BENCH_e22.json"))' \
    || { echo "BENCH_e22.json: malformed"; exit 1; }

# E24 is the readiness-driven event loop at scale. CI runs the smoke
# shape (256 clients via WAFE_E24_CLIENTS; the full 1k/4k/10k sweep is
# a manual run) — the bench itself asserts peak_active == clients and
# zero protocol corruption. The gate below requires smoke commands/s
# to stay within 70% of the e22 64-client figure just regenerated
# above: 4x the concurrency must not cost more than the noise band.
# Like the other timing gates, one retry before failing.
echo "== bench e24 smoke run (256 clients) + >=70% of e22-c64 gate"
run_e24() {
    WAFE_E24_CLIENTS=256 cargo bench -q -p bench --bench e24_serve_scale \
        --offline >/dev/null 2>&1 \
        || WAFE_E24_CLIENTS=256 cargo bench -q -p bench \
            --bench e24_serve_scale --offline >/dev/null
}
check_e24() {
    python3 -c '
import json
smoke = json.load(open("target/BENCH_e24_smoke.json"))
e22 = json.load(open("BENCH_e22.json"))
c256 = {w["name"]: w for w in smoke["workloads"]}["poll_c256"]
c64 = {w["name"]: w for w in e22["workloads"]}["serve_c64"]
ratio = c256["commands_per_sec"] / c64["commands_per_sec"]
assert ratio >= 0.70, (
    "e24: %.0f cmd/s at 256 clients is %.0f%% of e22 c64 (%.0f), gate 70%%"
    % (c256["commands_per_sec"], ratio * 100, c64["commands_per_sec"]))
print("  256-client commands/s: %.0f (%.0f%% of e22 c64, gate >=70%%) ok"
      % (c256["commands_per_sec"], ratio * 100))
'
}
run_e24
check_e24 || { run_e24; check_e24; }

# E23 is the bytecode VM: the run itself asserts byte-identical output
# against the tree-walker on every workload, and the gate below requires
# >=3x on the loop-heavy workload. The speedup field is a median of
# interleaved per-round tree/VM ratios, so machine-wide drift cancels.
echo "== bench e23 smoke run + >=3x VM gate"
run_bench e23_bytecode
python3 -c '
import json
d = json.load(open("BENCH_e23.json"))
s = {w["name"]: w["speedup"] for w in d["workloads"]}
lh = s["loop_heavy_factor"]
assert lh >= 3.0, "e23: loop_heavy_factor %.2fx < 3x" % lh
print("  loop_heavy_factor: %.2fx (gate >=3x) ok" % lh)
' || { echo "BENCH_e23.json: malformed or below the 3x gate"; exit 1; }

# E26 is the observability plane: the run itself asserts output parity
# with spans/profiler on, and the gate below requires the *disabled*
# cost (span checks + the per-instruction profiler branch, computed
# from per-site costs inside one binary) to stay within 2% of the
# all-off baseline on the E19 loop-heavy workload.
echo "== bench e26 smoke run + <=2% disabled-overhead gate"
run_bench e26_span_overhead
python3 -c '
import json
d = json.load(open("BENCH_e26.json"))
pct = d["disabled_overhead_pct"]
assert pct <= 2.0, "e26: disabled overhead %.2f%% > 2%%" % pct
print("  disabled overhead: %.2f%% (gate <=2%%) ok" % pct)
' || { echo "BENCH_e26.json: malformed or above the 2% disabled gate"; exit 1; }

# E27 is session checkpointing: the run itself asserts park → restore
# → park is a byte-identical fixed point, and the gate below requires
# restore p99 <= 10ms — above that, "hot handoff" on reconnect would
# be a stall the user can feel.
echo "== bench e27 smoke run + <=10ms restore-p99 gate"
run_bench e27_checkpoint
python3 -c '
import json
d = json.load(open("BENCH_e27.json"))
p99 = d["restore_p99_us"]
assert p99 <= 10000.0, "e27: restore p99 %.1fus > 10ms" % p99
print("  restore p99: %.1fus (gate <=10ms) ok" % p99)
' || { echo "BENCH_e27.json: malformed or above the 10ms restore gate"; exit 1; }

# E28 is the display protocol: the run itself asserts every frame
# decodes back to the bytes it encoded, and the gate below requires
# damage-tracked frames to ship >=5x fewer bytes than full repaints on
# the dashboard workload — below that, per-mutation damage bookkeeping
# would not earn its keep and the protocol could just ship screens.
echo "== bench e28 smoke run + >=5x bytes-saved gate"
run_bench e28_display
python3 -c '
import json
d = json.load(open("BENCH_e28.json"))
r = d["bytes_saved_ratio"]
assert r >= 5.0, "e28: bytes_saved_ratio %.1fx < 5x" % r
print("  bytes saved: %.1fx (gate >=5x) ok" % r)
' || { echo "BENCH_e28.json: malformed or below the 5x gate"; exit 1; }

# The band was 5% while the cached side was tree-walked; the bytecode
# VM cut cached iteration times ~3x, which widened the run-to-run
# spread of the ratio to +/-30% on a busy machine. 70% of baseline
# still catches every structural regression this gate exists for —
# the parse cache breaking (speedup collapses to ~1x) or the VM
# disengaging (back to the ~6.5x tree-walker ratio vs ~19x committed).
echo "== bench e19 no-regression check (>=70% of baseline)"
baseline=$(git show HEAD:BENCH_e19.json 2>/dev/null || cat BENCH_e19.json)
check_e19() {
    echo "$baseline" | python3 -c '
import json, sys
base = {w["name"]: w["speedup"] for w in json.load(sys.stdin)["workloads"]}
fresh = {w["name"]: w["speedup"] for w in json.load(open("BENCH_e19.json"))["workloads"]}
for name, b in base.items():
    f = fresh[name]
    if f < b * 0.70:
        sys.exit(f"e19 regression: {name} speedup {f:.2f}x < 70% of baseline {b:.2f}x")
    print(f"  {name}: {f:.2f}x (baseline {b:.2f}x) ok")
'
}
# The comparison itself also gets one retry: e19 runs right after the
# other bench smoke runs, and a busy machine can depress the first
# sample below the band without any real regression.
run_bench e19_eval_cache
check_e19 || { run_bench e19_eval_cache; check_e19; }

echo "CI OK"
