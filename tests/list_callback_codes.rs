//! E3 — the paper's "Athena List Widget Callback" percent-code table:
//! `%w` widget's name, `%i` index, `%s` active element.

use wafe::core::{Flavor, WafeSession};

fn setup() -> WafeSession {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("form f topLevel").unwrap();
    s.eval("label confirmLab f label {}").unwrap();
    s.eval("list chooseLst f fromVert confirmLab list {red,green,blue}")
        .unwrap();
    s.eval("realize").unwrap();
    s
}

fn click_row(s: &mut WafeSession, row: usize) {
    {
        let mut app = s.app.borrow_mut();
        let l = app.lookup("chooseLst").unwrap();
        let abs = app.displays[0].abs_rect(app.widget(l).window.unwrap());
        // Rows are font height (13) + rowSpacing (2) tall, after the
        // internalHeight (2) top margin.
        let y = abs.y + 2 + row as i32 * 15 + 7;
        app.displays[0].inject_click(abs.x + 4, y, 1);
    }
    s.pump();
}

#[test]
fn all_three_codes_substitute() {
    let mut s = setup();
    s.eval("sV chooseLst callback {echo w=%w i=%i s=%s}")
        .unwrap();
    click_row(&mut s, 2);
    assert_eq!(s.take_output(), "w=chooseLst i=2 s=blue\n");
}

#[test]
fn paper_confirm_label_example() {
    // sV chooseLst callback "sV confirmLab label %s".
    let mut s = setup();
    s.eval("sV chooseLst callback {sV confirmLab label %s}")
        .unwrap();
    click_row(&mut s, 0);
    assert_eq!(s.eval("gV confirmLab label").unwrap(), "red");
    click_row(&mut s, 1);
    assert_eq!(s.eval("gV confirmLab label").unwrap(), "green");
}

#[test]
fn selection_survives_reading_back() {
    let mut s = setup();
    s.eval("sV chooseLst callback {echo %i}").unwrap();
    click_row(&mut s, 1);
    let _ = s.take_output();
    s.eval("listShowCurrent chooseLst item").unwrap();
    assert_eq!(s.interp.get_var("item").unwrap(), "green");
    s.eval("listUnhighlight chooseLst").unwrap();
    assert_eq!(s.eval("listShowCurrent chooseLst item").unwrap(), "-1");
}

#[test]
fn programmatic_highlight_then_notify_uses_same_codes() {
    let mut s = setup();
    s.eval("sV chooseLst callback {echo i=%i s=%s}").unwrap();
    s.eval("listHighlight chooseLst 2").unwrap();
    {
        let mut app = s.app.borrow_mut();
        let l = app.lookup("chooseLst").unwrap();
        let ev = wafe::xproto::Event::new(
            wafe::xproto::EventKind::ButtonRelease,
            wafe::xproto::WindowId(0),
        );
        app.run_action(l, "Notify", &[], &ev);
    }
    s.pump();
    assert_eq!(s.take_output(), "i=2 s=blue\n");
}
