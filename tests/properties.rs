//! Property-based tests across the stack: Tcl list quoting, glob
//! matching, expression arithmetic, Xrm precedence, widget-tree and
//! memory-accounting invariants.
//!
//! These run on the vendored `wafe-prop` generator (deterministic
//! xorshift cases) instead of an external property-testing framework,
//! so the suite builds and runs fully offline. Failure cases that the
//! old framework discovered are baked in below as fixed regression
//! tests.

use wafe_prop::cases;

use wafe::core::{Flavor, WafeSession};
use wafe::tcl::glob::glob_match;
use wafe::tcl::{list_join, parse_list, Interp};

fn chars(s: &str) -> Vec<char> {
    s.chars().collect()
}

/// Regression: discovered by the original property-test framework
/// (shrunk to `["{\u{b}"]`) — an unbalanced open brace followed by a
/// control character must survive the join/parse round-trip.
#[test]
fn list_roundtrip_regression_unbalanced_brace() {
    let elems = vec!["{\u{b}".to_string()];
    let joined = list_join(&elems);
    let parsed = parse_list(&joined).unwrap();
    assert_eq!(parsed, elems);
}

/// Any vector of arbitrary strings survives a list join/parse
/// round-trip (Tcl_Merge/Tcl_SplitList are inverses).
#[test]
fn list_roundtrip() {
    cases(64, |rng| {
        let elems = rng.vec(0, 8, |r| r.unicode_string(0, 17));
        let joined = list_join(&elems);
        let parsed = parse_list(&joined).unwrap();
        assert_eq!(parsed, elems);
    });
}

/// `lindex` after `list` recovers each element.
#[test]
fn lindex_recovers_elements() {
    let alphabet =
        chars("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 {}$[]\"\\");
    cases(64, |rng| {
        let elems = rng.vec(1, 6, |r| {
            let len = r.range(0, 11);
            r.string_from(&alphabet, len)
        });
        let mut i = Interp::new();
        let joined = list_join(&elems);
        for (k, e) in elems.iter().enumerate() {
            let got = i
                .invoke(&["lindex".into(), joined.clone().into(), k.to_string().into()])
                .unwrap();
            assert_eq!(&got, e);
        }
    });
}

/// A pattern equal to the string (with globs escaped) always matches.
#[test]
fn glob_identity() {
    let alphabet = chars("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_. -");
    cases(64, |rng| {
        let len = rng.range(0, 25);
        let s = rng.string_from(&alphabet, len);
        assert!(glob_match(&s, &s));
        assert!(glob_match("*", &s));
        let prefix_pattern = format!("{s}*");
        let suffix_pattern = format!("*{s}");
        assert!(glob_match(&prefix_pattern, &s));
        assert!(glob_match(&suffix_pattern, &s));
    });
}

/// Integer expression arithmetic agrees with Rust's.
#[test]
fn expr_arithmetic_agrees() {
    cases(64, |rng| {
        let a = rng.range_i64(-10000, 10000);
        let b = rng.range_i64(-10000, 10000);
        let mut i = Interp::new();
        let sum = i.eval(&format!("expr {{{a} + {b}}}")).unwrap();
        assert_eq!(sum, (a + b).to_string());
        let prod = i.eval(&format!("expr {{{a} * {b}}}")).unwrap();
        assert_eq!(prod, (a * b).to_string());
        if b != 0 {
            let q = i.eval(&format!("expr {{{a} / {b}}}")).unwrap();
            assert_eq!(q, (a.wrapping_div(b)).to_string());
        }
        let cmp = i.eval(&format!("expr {{{a} < {b}}}")).unwrap();
        assert_eq!(cmp, if a < b { "1" } else { "0" });
    });
}

/// set/get round-trips arbitrary variable content.
#[test]
fn variable_roundtrip() {
    cases(64, |rng| {
        let value = rng.unicode_string(0, 65);
        let mut i = Interp::new();
        i.set_var("v", &value).unwrap();
        assert_eq!(i.get_var("v").unwrap(), value);
    });
}

/// String resources round-trip through setValues/getValue
/// (brace-quoting arbitrary values through the Tcl layer).
#[test]
fn label_resource_roundtrip() {
    let alphabet = chars("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.,:!?-");
    cases(64, |rng| {
        let len = rng.range(0, 33);
        let text = rng.string_from(&alphabet, len);
        let mut s = WafeSession::new(Flavor::Athena);
        s.eval("label l topLevel").unwrap();
        s.eval(&format!("sV l label {{{text}}}")).unwrap();
        let got = s.eval("gV l label").unwrap();
        // The Tcl layer preserves the braced value verbatim.
        assert_eq!(got, text);
    });
}

/// Creating and destroying any number of widgets always returns the
/// memory accounting to its starting point.
#[test]
fn memory_balance() {
    cases(64, |rng| {
        let n = rng.range(1, 12);
        let with_resources = rng.chance();
        let mut s = WafeSession::new(Flavor::Athena);
        let before = s.app.borrow().memstats.current();
        s.eval("form f topLevel").unwrap();
        for k in 0..n {
            let extra = if with_resources {
                format!(" label {{widget number {k}}} background red")
            } else {
                String::new()
            };
            s.eval(&format!("label w{k} f{extra}")).unwrap();
        }
        s.eval("destroyWidget f").unwrap();
        assert_eq!(s.app.borrow().memstats.current(), before);
    });
}

/// Xrm: the most recently merged loose binding wins for any widget
/// name.
#[test]
fn xrm_latest_wins() {
    let first = chars("abcdefghijklmnopqrstuvwxyz");
    let rest = chars("abcdefghijklmnopqrstuvwxyz0123456789");
    cases(64, |rng| {
        let len = rng.range(0, 9);
        let name = format!("{}{}", rng.pick(&first), rng.string_from(&rest, len));
        let mut s = WafeSession::new(Flavor::Athena);
        s.eval("mergeResources *foreground red").unwrap();
        s.eval("mergeResources *foreground blue").unwrap();
        s.eval(&format!("label {name} topLevel")).unwrap();
        assert_eq!(s.eval(&format!("gV {name} foreground")).unwrap(), "#0000ff");
    });
}

/// Typing arbitrary printable text into an AsciiText widget stores
/// exactly that text.
#[test]
fn text_widget_types_exactly() {
    let alphabet =
        chars("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;:!?()-");
    cases(64, |rng| {
        let len = rng.range(0, 25);
        let text = rng.string_from(&alphabet, len);
        let mut s = WafeSession::new(Flavor::Athena);
        s.eval("asciiText t topLevel editType edit width 400")
            .unwrap();
        s.eval("realize").unwrap();
        wafe::type_into_widget(&mut s, "t", &text);
        assert_eq!(s.eval("gV t string").unwrap(), text);
    });
}

/// Percent-code substitution is length-sane and idempotent on
/// scripts without percent signs.
#[test]
fn percent_passthrough() {
    let alphabet = chars("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 {}$[]");
    cases(32, |rng| {
        let len = rng.range(0, 41);
        let script = rng.string_from(&alphabet, len);
        let e =
            wafe::xproto::Event::new(wafe::xproto::EventKind::KeyPress, wafe::xproto::WindowId(1));
        let out = wafe::core::percent::substitute_action(&script, "w", &e);
        assert_eq!(out, script);
    });
}

/// Any sequence of Wafe commands over a fixed vocabulary leaves the
/// session answering queries (no poisoned state).
#[test]
fn command_soup_keeps_session_alive() {
    cases(32, |rng| {
        let ops = rng.vec(1, 15, |r| r.below(6) as u8);
        let mut s = wafe::core::WafeSession::new(wafe::core::Flavor::Athena);
        let mut made = 0usize;
        for (k, op) in ops.iter().enumerate() {
            let _ = match op {
                0 => {
                    made += 1;
                    s.eval(&format!("label w{k} topLevel label x"))
                }
                1 => s.eval(&format!("sV w{} label changed", k.saturating_sub(1))),
                2 => s.eval("realize"),
                3 => s.eval(&format!("destroyWidget w{}", k.saturating_sub(1))),
                4 => s.eval("processEvents"),
                _ => s.eval(&format!("gV w{} label", k.saturating_sub(1))),
            };
        }
        let _ = made;
        // The session still answers basic queries.
        assert_eq!(s.eval("expr 1+1").unwrap(), "2");
        assert!(s.app.borrow().lookup("topLevel").is_some());
    });
}
