//! Property-based tests across the stack: Tcl list quoting, glob
//! matching, expression arithmetic, Xrm precedence, widget-tree and
//! memory-accounting invariants.

use proptest::prelude::*;

use wafe::core::{Flavor, WafeSession};
use wafe::tcl::glob::glob_match;
use wafe::tcl::{list_join, parse_list, Interp};

proptest! {
    // Cases involving a full session (realize + framebuffer flush per
    // event) are expensive in debug builds; 64 cases keep the invariants
    // well-exercised and the suite quick.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any vector of arbitrary strings survives a list join/parse
    /// round-trip (Tcl_Merge/Tcl_SplitList are inverses).
    #[test]
    fn list_roundtrip(elems in proptest::collection::vec(".{0,16}", 0..8)) {
        let joined = list_join(&elems);
        let parsed = parse_list(&joined).unwrap();
        prop_assert_eq!(parsed, elems);
    }

    /// `lindex` after `list` recovers each element.
    #[test]
    fn lindex_recovers_elements(elems in proptest::collection::vec("[a-zA-Z0-9 {}$\\[\\]\"\\\\]{0,10}", 1..6)) {
        let mut i = Interp::new();
        let joined = list_join(&elems);
        for (k, e) in elems.iter().enumerate() {
            let got = i.invoke(&["lindex".to_string(), joined.clone(), k.to_string()]).unwrap();
            prop_assert_eq!(&got, e);
        }
    }

    /// A pattern equal to the string (with globs escaped) always matches.
    #[test]
    fn glob_identity(s in "[a-zA-Z0-9_. -]{0,24}") {
        prop_assert!(glob_match(&s, &s));
        prop_assert!(glob_match("*", &s));
        let prefix_pattern = format!("{s}*");
        let suffix_pattern = format!("*{s}");
        prop_assert!(glob_match(&prefix_pattern, &s));
        prop_assert!(glob_match(&suffix_pattern, &s));
    }

    /// Integer expression arithmetic agrees with Rust's.
    #[test]
    fn expr_arithmetic_agrees(a in -10000i64..10000, b in -10000i64..10000) {
        let mut i = Interp::new();
        let sum = i.eval(&format!("expr {{{a} + {b}}}")).unwrap();
        prop_assert_eq!(sum, (a + b).to_string());
        let prod = i.eval(&format!("expr {{{a} * {b}}}")).unwrap();
        prop_assert_eq!(prod, (a * b).to_string());
        if b != 0 {
            let q = i.eval(&format!("expr {{{a} / {b}}}")).unwrap();
            prop_assert_eq!(q, (a.wrapping_div(b)).to_string());
        }
        let cmp = i.eval(&format!("expr {{{a} < {b}}}")).unwrap();
        prop_assert_eq!(cmp, if a < b { "1" } else { "0" });
    }

    /// set/get round-trips arbitrary variable content.
    #[test]
    fn variable_roundtrip(value in ".{0,64}") {
        let mut i = Interp::new();
        i.set_var("v", &value).unwrap();
        prop_assert_eq!(i.get_var("v").unwrap(), value);
    }

    /// String resources round-trip through setValues/getValue
    /// (brace-quoting arbitrary values through the Tcl layer).
    #[test]
    fn label_resource_roundtrip(text in "[a-zA-Z0-9 _.,:!?-]{0,32}") {
        let mut s = WafeSession::new(Flavor::Athena);
        s.eval("label l topLevel").unwrap();
        let trimmed = text.trim().to_string();
        s.eval(&format!("sV l label {{{text}}}")).unwrap();
        let got = s.eval("gV l label").unwrap();
        // The Tcl layer preserves the braced value verbatim.
        prop_assert_eq!(got, if trimmed.is_empty() { text.clone() } else { text.clone() });
    }

    /// Creating and destroying any number of widgets always returns the
    /// memory accounting to its starting point.
    #[test]
    fn memory_balance(n in 1usize..12, with_resources in proptest::bool::ANY) {
        let mut s = WafeSession::new(Flavor::Athena);
        let before = s.app.borrow().memstats.current();
        s.eval("form f topLevel").unwrap();
        for k in 0..n {
            let extra = if with_resources {
                format!(" label {{widget number {k}}} background red")
            } else {
                String::new()
            };
            s.eval(&format!("label w{k} f{extra}")).unwrap();
        }
        s.eval("destroyWidget f").unwrap();
        prop_assert_eq!(s.app.borrow().memstats.current(), before);
    }

    /// Xrm: the most recently merged loose binding wins for any widget
    /// name.
    #[test]
    fn xrm_latest_wins(name in "[a-z][a-z0-9]{0,8}") {
        let mut s = WafeSession::new(Flavor::Athena);
        s.eval("mergeResources *foreground red").unwrap();
        s.eval("mergeResources *foreground blue").unwrap();
        s.eval(&format!("label {name} topLevel")).unwrap();
        prop_assert_eq!(s.eval(&format!("gV {name} foreground")).unwrap(), "#0000ff");
    }

    /// Typing arbitrary printable text into an AsciiText widget stores
    /// exactly that text.
    #[test]
    fn text_widget_types_exactly(text in "[a-zA-Z0-9 .,;:!?()-]{0,24}") {
        let mut s = WafeSession::new(Flavor::Athena);
        s.eval("asciiText t topLevel editType edit width 400").unwrap();
        s.eval("realize").unwrap();
        wafe::type_into_widget(&mut s, "t", &text);
        prop_assert_eq!(s.eval("gV t string").unwrap(), text);
    }
}

proptest! {
    // Session construction dominates here; fewer cases keep the suite
    // fast without losing the invariant.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Percent-code substitution is length-sane and idempotent on
    /// scripts without percent signs.
    #[test]
    fn percent_passthrough(script in "[a-zA-Z0-9 {}$\\[\\]]{0,40}") {
        prop_assume!(!script.contains('%'));
        let e = wafe::xproto::Event::new(
            wafe::xproto::EventKind::KeyPress,
            wafe::xproto::WindowId(1),
        );
        let out = wafe::core::percent::substitute_action(&script, "w", &e);
        prop_assert_eq!(out, script);
    }

    /// Any sequence of Wafe commands over a fixed vocabulary leaves the
    /// session answering queries (no poisoned state).
    #[test]
    fn command_soup_keeps_session_alive(ops in proptest::collection::vec(0u8..6, 1..15)) {
        let mut s = wafe::core::WafeSession::new(wafe::core::Flavor::Athena);
        let mut made = 0usize;
        for (k, op) in ops.iter().enumerate() {
            let _ = match op {
                0 => { made += 1; s.eval(&format!("label w{k} topLevel label x")) }
                1 => s.eval(&format!("sV w{} label changed", k.saturating_sub(1))),
                2 => s.eval("realize"),
                3 => s.eval(&format!("destroyWidget w{}", k.saturating_sub(1))),
                4 => s.eval("processEvents"),
                _ => s.eval(&format!("gV w{} label", k.saturating_sub(1))),
            };
        }
        let _ = made;
        // The session still answers basic queries.
        prop_assert_eq!(s.eval("expr 1+1").unwrap(), "2");
        prop_assert!(s.app.borrow().lookup("topLevel").is_some());
    }
}
