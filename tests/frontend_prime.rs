//! E7 — Figure 5's three phases with the real prime-factors backend
//! process, plus E11 (click-ahead) and E10 (refresh while busy) in their
//! real-process form.

use std::time::{Duration, Instant};

use wafe::core::Flavor;
use wafe::ipc::{Frontend, FrontendConfig};

fn spawn_prime() -> Frontend {
    let mut config = FrontendConfig::new(env!("CARGO_BIN_EXE_wafe-backend-prime"));
    config.flavor = Flavor::Athena;
    config.mass_channel = false;
    Frontend::spawn(config).expect("spawn prime backend")
}

fn wait_for<F: Fn(&Frontend) -> bool>(fe: &mut Frontend, pred: F, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(10)).expect("step");
        if pred(fe) {
            return true;
        }
    }
    false
}

#[test]
fn three_phases_end_to_end() {
    // Phase 1: spawn. Phase 2: the backend builds the widget tree.
    let mut fe = spawn_prime();
    assert!(
        wait_for(
            &mut fe,
            |fe| {
                let app = fe.engine.session.app.borrow();
                ["top", "input", "result", "quit", "info"]
                    .iter()
                    .all(|w| app.lookup(w).map(|id| app.is_realized(id)).unwrap_or(false))
            },
            10
        ),
        "backend must build and realize the widget tree"
    );

    // Phase 3: the read loop — type a number, press Return.
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let input = app.lookup("input").unwrap();
        let win = app.widget(input).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_text("360\n");
    }
    assert!(
        wait_for(
            &mut fe,
            |fe| {
                fe.engine
                    .session
                    .app
                    .borrow()
                    .lookup("result")
                    .map(|_| ())
                    .is_some()
                    && {
                        let mut s = String::new();
                        let app = fe.engine.session.app.borrow();
                        if let Some(r) = app.lookup("result") {
                            s = app.str_resource(r, "label");
                        }
                        s == "5*3*3*2*2*2"
                    }
            },
            10
        ),
        "backend must answer with the factorisation"
    );
    // The info label went through "thinking..." to "N seconds".
    let info = {
        let app = fe.engine.session.app.borrow();
        let i = app.lookup("info").unwrap();
        app.str_resource(i, "label")
    };
    assert!(info.ends_with("seconds"), "info label was {info:?}");

    // Invalid input handled.
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let input = app.lookup("input").unwrap();
        app.set_resource(input, "string", "xyz").unwrap();
        let win = app.widget(input).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_named("Return", wafe::xproto::Modifiers::NONE);
    }
    assert!(
        wait_for(
            &mut fe,
            |fe| {
                let app = fe.engine.session.app.borrow();
                let i = app.lookup("info").unwrap();
                app.str_resource(i, "label") == "(invalid input)"
            },
            10
        ),
        "invalid input must be reported"
    );

    // The quit button ends the session ("callback quit").
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let q = app.lookup("quit").unwrap();
        let abs = app.displays[0].abs_rect(app.widget(q).window.unwrap());
        app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
    }
    let clean = fe.run_until_exit(Duration::from_secs(5)).unwrap();
    assert!(clean);
    assert!(fe.engine.session.quit_requested());
    fe.kill();
}

#[test]
fn click_ahead_with_real_backend() {
    // E11: submit several numbers while the backend is still chewing on
    // the previous ones; pipe buffering preserves all of them in order.
    let mut fe = spawn_prime();
    assert!(wait_for(
        &mut fe,
        |fe| {
            let app = fe.engine.session.app.borrow();
            app.lookup("input")
                .map(|w| app.is_realized(w))
                .unwrap_or(false)
        },
        10
    ));
    let inputs = ["12", "35", "1001"];
    for n in inputs {
        let mut app = fe.engine.session.app.borrow_mut();
        let input = app.lookup("input").unwrap();
        app.set_resource(input, "string", n).unwrap();
        let win = app.widget(input).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_named("Return", wafe::xproto::Modifiers::NONE);
    }
    // All three answers arrive; the last one sticks.
    assert!(
        wait_for(
            &mut fe,
            |fe| {
                let app = fe.engine.session.app.borrow();
                let r = app.lookup("result").unwrap();
                app.str_resource(r, "label") == "13*11*7"
            },
            10
        ),
        "queued inputs must all be processed, ending with 1001 = 13*11*7"
    );
    fe.kill();
}

#[test]
fn gui_stays_live_while_backend_busy() {
    // E10: while the backend is busy (we simply do not let it answer by
    // never sending input), the frontend keeps servicing expose events.
    let mut fe = spawn_prime();
    assert!(wait_for(
        &mut fe,
        |fe| {
            let app = fe.engine.session.app.borrow();
            app.lookup("input")
                .map(|w| app.is_realized(w))
                .unwrap_or(false)
        },
        10
    ));
    // Inject a burst of exposes and confirm each is serviced promptly.
    for _ in 0..5 {
        {
            let mut app = fe.engine.session.app.borrow_mut();
            let input = app.lookup("input").unwrap();
            let win = app.widget(input).window.unwrap();
            app.displays[0].expose(win);
            assert!(app.displays[0].pending() > 0);
        }
        fe.step(Duration::from_millis(5)).unwrap();
        assert_eq!(
            fe.engine.session.app.borrow().displays[0].pending(),
            0,
            "expose must be serviced even though the backend never spoke"
        );
    }
    fe.kill();
}
