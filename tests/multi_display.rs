//! E16 — multi-display support: "When a Wafe application wants to
//! display widgets on multiple X servers it can create several
//! application shells where the display is specified instead of the
//! father widget" (`applicationShell top2 dec4:0`).

use wafe::core::{Flavor, WafeSession};

#[test]
fn children_map_to_the_specified_display() {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("label home topLevel label {on default}").unwrap();
    s.eval("applicationShell top2 dec4:0").unwrap();
    s.eval("label away top2 label {on dec4}").unwrap();
    s.eval("realize").unwrap();

    let app = s.app.borrow();
    assert_eq!(app.displays.len(), 2);
    assert_eq!(app.displays[0].name, ":0");
    assert_eq!(app.displays[1].name, "dec4:0");
    let home = app.lookup("home").unwrap();
    let away = app.lookup("away").unwrap();
    assert_eq!(app.widget(home).display_idx, 0);
    assert_eq!(app.widget(away).display_idx, 1);
    assert!(app.displays[0].is_viewable(app.widget(home).window.unwrap()));
    assert!(app.displays[1].is_viewable(app.widget(away).window.unwrap()));
}

#[test]
fn snapshots_are_per_display() {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("label home topLevel label HOMETEXT").unwrap();
    s.eval("applicationShell top2 remote:0").unwrap();
    s.eval("label away top2 label AWAYTEXT").unwrap();
    s.eval("realize").unwrap();
    let snap0 = s.eval("snapshot 0 0 300 60 0").unwrap();
    let snap1 = s.eval("snapshot 0 0 300 60 1").unwrap();
    assert!(
        snap0.contains("HOMETEXT") && !snap0.contains("AWAYTEXT"),
        "{snap0}"
    );
    assert!(
        snap1.contains("AWAYTEXT") && !snap1.contains("HOMETEXT"),
        "{snap1}"
    );
}

#[test]
fn events_do_not_cross_displays() {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("command here topLevel label here callback {echo from-here}")
        .unwrap();
    s.eval("applicationShell top2 other:0").unwrap();
    s.eval("command there top2 label there callback {echo from-there}")
        .unwrap();
    s.eval("realize").unwrap();
    // Click at the `here` button's location — but on display 1.
    {
        let mut app = s.app.borrow_mut();
        let here = app.lookup("here").unwrap();
        let abs = app.displays[0].abs_rect(app.widget(here).window.unwrap());
        app.displays[1].inject_click(abs.x + 2, abs.y + 2, 1);
    }
    s.pump();
    let out = s.take_output();
    assert!(
        !out.contains("from-here"),
        "click on display 1 must not hit display 0: {out}"
    );
}

#[test]
fn same_display_name_is_reused() {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("applicationShell a dec4:0").unwrap();
    s.eval("applicationShell b dec4:0").unwrap();
    assert_eq!(s.app.borrow().displays.len(), 2, "dec4:0 opened once");
}
