//! Failure injection for frontend mode: crashing backends, garbage
//! protocol input, oversized lines — the frontend must degrade
//! gracefully, never panic, and keep the GUI consistent.

use std::time::{Duration, Instant};

use wafe::core::Flavor;
use wafe::ipc::{Frontend, FrontendConfig, ProtocolEngine};

fn spawn_sh(script: &str) -> Frontend {
    Frontend::spawn(FrontendConfig {
        program: "sh".into(),
        args: vec!["-c".into(), script.into()],
        flavor: Flavor::Athena,
        mass_channel: false,
        init_com: None,
    })
    .expect("spawn sh")
}

#[test]
fn backend_crashes_mid_tree() {
    // The backend dies after half the widget tree; the frontend keeps the
    // partial tree and reports a clean exit.
    let mut fe = spawn_sh(
        "echo '%form top topLevel'\n\
         echo '%label a top label first'\n\
         exit 3\n",
    );
    let clean = fe.run_until_exit(Duration::from_secs(5)).unwrap();
    assert!(clean, "loop must end when the backend dies");
    let app = fe.engine.session.app.borrow();
    assert!(app.lookup("a").is_some(), "partial tree preserved");
    drop(app);
    // The session is still usable locally.
    assert_eq!(fe.engine.session.eval("gV a label").unwrap(), "first");
    fe.kill();
}

#[test]
fn backend_emits_garbage_commands() {
    let mut fe = spawn_sh(
        "echo '%no_such_command at all'\n\
         echo '%label l topLevel label {survived}'\n\
         echo '%set done 1'\n\
         sleep 0.3\n",
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(20)).unwrap();
        if fe.engine.session.interp.var_exists("done") {
            break;
        }
    }
    // The bad command produced a protocol error, not a dead frontend.
    let errors = fe.engine.take_errors();
    assert!(
        errors.iter().any(|e| e.contains("no_such_command")),
        "{errors:?}"
    );
    assert_eq!(fe.engine.session.eval("gV l label").unwrap(), "survived");
    fe.kill();
}

#[test]
fn backend_emits_binary_garbage() {
    let mut fe = spawn_sh(
        "head -c 512 /dev/urandom\n\
         echo\n\
         echo '%set done 1'\n\
         sleep 0.3\n",
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(20)).unwrap();
        if fe.engine.session.interp.var_exists("done") {
            break;
        }
    }
    assert!(
        fe.engine.session.interp.var_exists("done"),
        "binary noise must not kill the loop"
    );
    fe.kill();
}

#[test]
fn oversized_line_rejected_but_session_lives() {
    let mut engine = ProtocolEngine::new(Flavor::Athena);
    engine.set_max_line(1000);
    let long = format!("%set big {{{}}}", "z".repeat(5000));
    assert!(engine.handle_line(&long).is_err());
    assert!(engine.handle_line("%set ok yes").is_ok());
    assert_eq!(engine.session.interp.get_var("ok").unwrap(), "yes");
    assert!(engine.session.interp.get_var("big").is_err());
}

#[test]
fn callback_script_errors_become_warnings() {
    // A callback whose script is broken must not poison the event loop.
    let mut engine = ProtocolEngine::new(Flavor::Athena);
    engine.handle_line("%form f topLevel").unwrap();
    engine
        .handle_line("%command b f label go callback {nosuchcmd}")
        .unwrap();
    engine
        .handle_line("%command c f label go2 fromHoriz b callback {echo fine}")
        .unwrap();
    engine.handle_line("%realize").unwrap();
    let _ = engine.take_app_lines();
    for name in ["b", "c"] {
        let mut app = engine.session.app.borrow_mut();
        let w = app.lookup(name).unwrap();
        let abs = app.displays[0].abs_rect(app.widget(w).window.unwrap());
        app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
    }
    engine.session.pump();
    // The good callback still ran.
    assert_eq!(engine.take_app_lines(), vec!["fine"]);
    let warnings = engine.session.app.borrow_mut().take_warnings();
    assert!(
        warnings.iter().any(|w| w.contains("nosuchcmd")),
        "{warnings:?}"
    );
}

#[test]
fn nonexistent_backend_program() {
    let result = Frontend::spawn(FrontendConfig::new("/no/such/program/anywhere"));
    assert!(
        result.is_err(),
        "spawning a missing backend must fail cleanly"
    );
}

#[test]
fn backend_ignores_stdin_then_exits() {
    // A backend that never reads what the frontend sends; writes to its
    // stdin must not wedge or kill the loop (EPIPE ignored).
    let mut fe = spawn_sh(
        "echo '%command b topLevel label go callback {echo msg}'\n\
         echo '%realize'\n\
         sleep 0.2\n",
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if !fe.step(Duration::from_millis(20)).unwrap() {
            break;
        }
        let has_b = fe.engine.session.app.borrow().lookup("b").is_some();
        if has_b {
            let mut app = fe.engine.session.app.borrow_mut();
            if let Some(b) = app.lookup("b") {
                if let Some(win) = app.widget(b).window {
                    let abs = app.displays[0].abs_rect(win);
                    app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
                }
            }
        }
    }
    // Reaching here without a panic or hang is the assertion.
    fe.kill();
}
