//! Failure injection for frontend mode: crashing backends, garbage
//! protocol input, oversized lines, wedged children — the frontend
//! must degrade gracefully, never panic, and keep the GUI consistent.
//! Everything here runs through the supervisor path (the default
//! policy reproduces the paper's trusting frontend).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use wafe::core::Flavor;
use wafe::ipc::{BackendState, Frontend, FrontendConfig, ProtocolEngine, SupervisorConfig};

fn spawn_sh(script: &str) -> Frontend {
    spawn_sh_with(script, SupervisorConfig::default())
}

fn spawn_sh_with(script: &str, supervisor: SupervisorConfig) -> Frontend {
    Frontend::spawn(FrontendConfig {
        args: vec!["-c".into(), script.into()],
        mass_channel: false,
        supervisor,
        ..FrontendConfig::new("sh")
    })
    .expect("spawn sh")
}

fn snapshot(session: &mut wafe::core::WafeSession) -> BTreeMap<String, u64> {
    let out = session.eval("telemetry snapshot").unwrap();
    wafe::tcl::parse_list(&out)
        .unwrap()
        .chunks(2)
        .map(|kv| (kv[0].clone(), kv[1].parse::<u64>().unwrap()))
        .collect()
}

#[test]
fn backend_crashes_mid_tree() {
    // The backend dies after half the widget tree; the frontend keeps the
    // partial tree and reports a clean exit.
    let mut fe = spawn_sh(
        "echo '%form top topLevel'\n\
         echo '%label a top label first'\n\
         exit 3\n",
    );
    let clean = fe.run_until_exit(Duration::from_secs(5)).unwrap();
    assert!(clean, "loop must end when the backend dies");
    let app = fe.engine.session.app.borrow();
    assert!(app.lookup("a").is_some(), "partial tree preserved");
    drop(app);
    // The session is still usable locally.
    assert_eq!(fe.engine.session.eval("gV a label").unwrap(), "first");
    fe.kill();
}

#[test]
fn backend_emits_garbage_commands() {
    let mut fe = spawn_sh(
        "echo '%no_such_command at all'\n\
         echo '%label l topLevel label {survived}'\n\
         echo '%set done 1'\n\
         sleep 0.3\n",
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(20)).unwrap();
        if fe.engine.session.interp.var_exists("done") {
            break;
        }
    }
    // The bad command produced a protocol error, not a dead frontend.
    let errors = fe.engine.take_errors();
    assert!(
        errors.iter().any(|e| e.contains("no_such_command")),
        "{errors:?}"
    );
    assert_eq!(fe.engine.session.eval("gV l label").unwrap(), "survived");
    fe.kill();
}

#[test]
fn backend_emits_binary_garbage() {
    let mut fe = spawn_sh(
        "head -c 512 /dev/urandom\n\
         echo\n\
         echo '%set done 1'\n\
         sleep 0.3\n",
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(20)).unwrap();
        if fe.engine.session.interp.var_exists("done") {
            break;
        }
    }
    assert!(
        fe.engine.session.interp.var_exists("done"),
        "binary noise must not kill the loop"
    );
    fe.kill();
}

#[test]
fn oversized_line_rejected_but_session_lives() {
    let mut engine = ProtocolEngine::new(Flavor::Athena);
    engine.set_max_line(1000);
    let long = format!("%set big {{{}}}", "z".repeat(5000));
    assert!(engine.handle_line(&long).is_err());
    assert!(engine.handle_line("%set ok yes").is_ok());
    assert_eq!(engine.session.interp.get_var("ok").unwrap(), "yes");
    assert!(engine.session.interp.get_var("big").is_err());
}

#[test]
fn callback_script_errors_become_warnings() {
    // A callback whose script is broken must not poison the event loop.
    let mut engine = ProtocolEngine::new(Flavor::Athena);
    engine.handle_line("%form f topLevel").unwrap();
    engine
        .handle_line("%command b f label go callback {nosuchcmd}")
        .unwrap();
    engine
        .handle_line("%command c f label go2 fromHoriz b callback {echo fine}")
        .unwrap();
    engine.handle_line("%realize").unwrap();
    let _ = engine.take_app_lines();
    for name in ["b", "c"] {
        let mut app = engine.session.app.borrow_mut();
        let w = app.lookup(name).unwrap();
        let abs = app.displays[0].abs_rect(app.widget(w).window.unwrap());
        app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
    }
    engine.session.pump();
    // The good callback still ran.
    assert_eq!(engine.take_app_lines(), vec!["fine"]);
    let warnings = engine.session.app.borrow_mut().take_warnings();
    assert!(
        warnings.iter().any(|w| w.contains("nosuchcmd")),
        "{warnings:?}"
    );
}

#[test]
fn nonexistent_backend_program() {
    let result = Frontend::spawn(FrontendConfig::new("/no/such/program/anywhere"));
    assert!(
        result.is_err(),
        "spawning a missing backend must fail cleanly"
    );
}

#[test]
fn backend_ignores_stdin_then_exits() {
    // A backend that never reads what the frontend sends; writes to its
    // stdin must not wedge or kill the loop (EPIPE ignored).
    let mut fe = spawn_sh(
        "echo '%command b topLevel label go callback {echo msg}'\n\
         echo '%realize'\n\
         sleep 0.2\n",
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if !fe.step(Duration::from_millis(20)).unwrap() {
            break;
        }
        let has_b = fe.engine.session.app.borrow().lookup("b").is_some();
        if has_b {
            let mut app = fe.engine.session.app.borrow_mut();
            if let Some(b) = app.lookup("b") {
                if let Some(win) = app.widget(b).window {
                    let abs = app.displays[0].abs_rect(win);
                    app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
                }
            }
        }
    }
    // Reaching here without a panic or hang is the assertion.
    fe.kill();
}

#[test]
fn wedged_backend_trips_read_timeout_instead_of_hanging() {
    // Regression: a backend that opens the pipe but never writes used to
    // block the session forever (the paper's frontend has no timeout).
    // With a read timeout and no restart budget the breaker opens and
    // the loop ends — deterministically, on the virtual tick clock.
    let supervisor = SupervisorConfig {
        read_timeout_ms: Some(100),
        ..SupervisorConfig::default()
    };
    let mut fe = spawn_sh_with("read never_comes", supervisor);
    let mut ended = false;
    for _ in 0..500 {
        if !fe.step(Duration::from_millis(20)).unwrap() {
            ended = true;
            break;
        }
    }
    assert!(ended, "the wedged backend must not hang the session");
    assert_eq!(fe.backend_state(), BackendState::Broken);
    let stats = fe.supervisor_stats();
    assert_eq!(stats.read_timeouts, 1, "{stats:?}");
    assert_eq!(stats.breaker_trips, 1);
    // The GUI session itself is still usable after the breaker opened.
    assert_eq!(fe.engine.session.eval("set x alive").unwrap(), "alive");
    fe.kill();
}

#[test]
fn supervisor_counters_surface_in_telemetry_snapshot() {
    // Kill the backend externally, send a line (queued), let the
    // supervisor restart and flush — then read the whole story out of
    // `telemetry snapshot` as ipc.supervisor.* counters.
    let script = r#"while read l; do echo "%set got_$l 1"; done"#;
    let supervisor = SupervisorConfig {
        max_restarts: 3,
        backoff_base_ms: 10,
        ..SupervisorConfig::default()
    };
    let mut fe = spawn_sh_with(script, supervisor);
    fe.engine.session.telemetry.set_enabled(true);
    fe.kill_backend();
    fe.send_to_app("resurrected").unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(10)).unwrap();
        if fe.engine.session.interp.var_exists("got_resurrected") {
            break;
        }
    }
    assert!(
        fe.engine.session.interp.var_exists("got_resurrected"),
        "queued line must be delivered after the restart"
    );
    let snap = snapshot(&mut fe.engine.session);
    assert!(snap["ipc.supervisor.restarts"] >= 1, "{snap:?}");
    assert!(snap["ipc.supervisor.queue.flushed"] >= 1);
    assert!(snap["ipc.supervisor.write.errors"] >= 1);
    // The journal recorded the fault/restart sequence.
    let journal = fe.engine.session.eval("telemetry journal").unwrap();
    assert!(journal.contains("supervisor.fault"), "{journal}");
    assert!(journal.contains("supervisor.restart"), "{journal}");
    fe.kill();
}

#[test]
fn prime_backend_restarts_end_to_end() {
    // The real prime-factor backend from the paper's example: kill it
    // mid-session, queue a request while it is down, and check the
    // restarted incarnation answers it.
    let supervisor = SupervisorConfig {
        max_restarts: 2,
        backoff_base_ms: 10,
        ..SupervisorConfig::default()
    };
    let mut fe = Frontend::spawn(FrontendConfig {
        mass_channel: false,
        supervisor,
        ..FrontendConfig::new(env!("CARGO_BIN_EXE_wafe-backend-prime"))
    })
    .expect("spawn prime backend");
    // Wait for the widget tree, then a first round trip.
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(10)).unwrap();
        let built = {
            let app = fe.engine.session.app.borrow();
            app.lookup("result").is_some() && app.lookup("input").is_some()
        };
        if built {
            break;
        }
    }
    fe.send_to_app("360").unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(10)).unwrap();
        if fe.engine.session.eval("gV result label").unwrap() == "5*3*3*2*2*2" {
            break;
        }
    }
    assert_eq!(
        fe.engine.session.eval("gV result label").unwrap(),
        "5*3*3*2*2*2"
    );
    // Crash it; the request sent while dead is queued and flushed.
    fe.kill_backend();
    fe.send_to_app("35").unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(10)).unwrap();
        if fe.engine.session.eval("gV result label").unwrap() == "7*5" {
            break;
        }
    }
    assert_eq!(fe.engine.session.eval("gV result label").unwrap(), "7*5");
    let stats = fe.supervisor_stats();
    assert_eq!(stats.restarts, 1, "{stats:?}");
    assert!(stats.queue_flushed >= 1);
    assert_eq!(fe.backend_state(), BackendState::Running);
    fe.kill();
}
