//! The distribution's `perlwafe` demo: "an example program calling Wafe
//! as a subprocess of the application program (normally, it is the other
//! way round)". Here the *test* plays the application: it spawns the real
//! `wafe` binary, drives it through stdin and reads results from stdout.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::time::Duration;

fn spawn_wafe() -> std::process::Child {
    Command::new(env!("CARGO_BIN_EXE_wafe"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn wafe")
}

#[test]
fn drive_wafe_interactively_from_an_application() {
    let mut child = spawn_wafe();
    let mut stdin = child.stdin.take().unwrap();
    let stdout = child.stdout.take().unwrap();

    // The application builds a UI and interrogates it.
    writeln!(stdin, "label l topLevel label {{driven from outside}}").unwrap();
    writeln!(stdin, "realize").unwrap();
    writeln!(stdin, "echo [getResourceList l rv]").unwrap();
    writeln!(stdin, "echo [gV l label]").unwrap();
    writeln!(stdin, "quit").unwrap();
    drop(stdin);

    let reader = BufReader::new(stdout);
    let lines: Vec<String> = reader.lines().map_while(Result::ok).collect();
    // Interactive mode echoes non-empty command results too; filter to
    // the `echo` outputs we asked for.
    assert!(lines.iter().any(|l| l == "42"), "lines: {lines:?}");
    assert!(
        lines.iter().any(|l| l == "driven from outside"),
        "lines: {lines:?}"
    );
    let status = child.wait().expect("wafe exits");
    assert!(status.success());
}

#[test]
fn file_mode_script_via_binary() {
    // The #! file-mode path of the real binary.
    let dir = std::env::temp_dir().join(format!("wafe-filemode-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("hello.wafe");
    std::fs::write(
        &script,
        "#!/usr/bin/X11/wafe --f\n\
         command hello topLevel label {Wafe new World}\n\
         realize\n\
         echo [gV hello label]\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_wafe"))
        .arg("--f")
        .arg(&script)
        .output()
        .expect("run wafe --f");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Wafe new World"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn frontend_mode_via_argv0_link() {
    // The paper: `ln -s wafe xwafeApp` makes `xwafeApp` spawn `wafeApp`.
    let dir = std::env::temp_dir().join(format!("wafe-linkmode-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // The backend: a shell script named `demoapp` on PATH.
    let backend = dir.join("demoapp");
    std::fs::write(
        &backend,
        "#!/bin/sh\necho '%label l topLevel label linked'\necho '%realize'\necho '%echo [gV l label]'\necho '%quit'\n",
    )
    .unwrap();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&backend, std::fs::Permissions::from_mode(0o755)).unwrap();
        std::os::unix::fs::symlink(env!("CARGO_BIN_EXE_wafe"), dir.join("xdemoapp")).unwrap();
    }
    let path = format!(
        "{}:{}",
        dir.display(),
        std::env::var("PATH").unwrap_or_default()
    );
    let mut child = Command::new(dir.join("xdemoapp"))
        .env("PATH", path)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn via link");
    // The frontend should terminate on the backend's %quit.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(Some(_)) = child.try_wait() {
            break;
        }
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            panic!("frontend did not exit after %quit");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn app_defaults_env_file_applies() {
    // WAFE_APP_DEFAULTS names the startup resource file.
    let dir = std::env::temp_dir().join(format!("wafe-ad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ad = dir.join("Wafe.ad");
    std::fs::write(&ad, "*label: FromAppDefaults\n").unwrap();
    let script = dir.join("s.wafe");
    std::fs::write(&script, "label l topLevel\nrealize\necho [gV l label]\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_wafe"))
        .arg("--f")
        .arg(&script)
        .env("WAFE_APP_DEFAULTS", &ad)
        .output()
        .expect("run wafe");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FromAppDefaults"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}
