//! E2 — the paper's "Event Types and Percent Codes of Actions" table:
//! the full matrix of `%t %w %b %x %y %X %Y %a %k %s` against
//! ButtonPress/ButtonRelease, KeyPress/KeyRelease, EnterNotify/
//! LeaveNotify — plus `%t → unknown` for unlisted event types.

use wafe::core::{Flavor, WafeSession};

/// Builds a session with one widget whose translations capture every
/// percent code for the given event binding.
fn session_with_binding(binding: &str) -> WafeSession {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("label probe topLevel width 120 height 60 label probe")
        .unwrap();
    s.eval(&format!(
        "action probe override {{{binding}: exec(set captured {{t=%t w=%w b=%b x=%x y=%y X=%X Y=%Y a=%a k=%k s=%s}})}}"
    ))
    .unwrap();
    s.eval("realize").unwrap();
    s
}

fn captured(s: &mut WafeSession) -> String {
    s.pump();
    s.interp.get_var("captured").unwrap_or_default().to_string()
}

fn probe_abs(s: &WafeSession) -> (i32, i32) {
    let app = s.app.borrow();
    let p = app.lookup("probe").unwrap();
    let abs = app.displays[0].abs_rect(app.widget(p).window.unwrap());
    (abs.x, abs.y)
}

#[test]
fn button_press_codes() {
    let mut s = session_with_binding("<BtnDown>");
    let (ax, ay) = probe_abs(&s);
    {
        let mut app = s.app.borrow_mut();
        app.displays[0].inject_pointer_move(ax + 10, ay + 20);
        app.displays[0].inject_button(3, true);
    }
    let c = captured(&mut s);
    assert!(c.contains("t=ButtonPress"), "{c}");
    assert!(c.contains("w=probe"), "{c}");
    assert!(c.contains("b=3"), "{c}");
    assert!(c.contains("x=10"), "{c}");
    assert!(c.contains("y=20"), "{c}");
    assert!(c.contains(&format!("X={}", ax + 10)), "{c}");
    assert!(c.contains(&format!("Y={}", ay + 20)), "{c}");
    // Key codes are invalid for button events: left untouched.
    assert!(c.contains("a=%a k=%k s=%s"), "{c}");
}

#[test]
fn button_release_codes() {
    let mut s = session_with_binding("<BtnUp>");
    let (ax, ay) = probe_abs(&s);
    {
        let mut app = s.app.borrow_mut();
        app.displays[0].inject_pointer_move(ax + 5, ay + 6);
        app.displays[0].inject_button(1, true);
        app.displays[0].inject_button(1, false);
    }
    let c = captured(&mut s);
    assert!(c.contains("t=ButtonRelease"), "{c}");
    assert!(c.contains("b=1"), "{c}");
    assert!(c.contains("x=5"), "{c}");
}

#[test]
fn key_press_codes() {
    let mut s = session_with_binding("<KeyPress>");
    {
        let mut app = s.app.borrow_mut();
        let p = app.lookup("probe").unwrap();
        let win = app.widget(p).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_text("q");
    }
    let c = captured(&mut s);
    assert!(c.contains("t=KeyPress"), "{c}");
    assert!(c.contains("w=probe"), "{c}");
    assert!(c.contains("a=q"), "{c}");
    assert!(c.contains("s=q"), "{c}");
    // The keycode is numeric and non-zero.
    let k: u32 = c
        .split("k=")
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .expect("numeric keycode");
    assert!(k >= 8);
    // Button code invalid for key events.
    assert!(c.contains("b=%b"), "{c}");
}

#[test]
fn key_release_codes() {
    let mut s = session_with_binding("<KeyRelease>");
    {
        let mut app = s.app.borrow_mut();
        let p = app.lookup("probe").unwrap();
        let win = app.widget(p).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_text("z");
    }
    let c = captured(&mut s);
    assert!(c.contains("t=KeyRelease"), "{c}");
    assert!(c.contains("a=z"), "{c}");
}

#[test]
fn enter_and_leave_codes() {
    let mut s = session_with_binding("<EnterWindow>");
    let (ax, ay) = probe_abs(&s);
    {
        let mut app = s.app.borrow_mut();
        app.displays[0].inject_pointer_move(ax + 7, ay + 8);
    }
    let c = captured(&mut s);
    assert!(c.contains("t=EnterNotify"), "{c}");
    assert!(c.contains("x=7"), "{c}");
    assert!(c.contains("b=%b"), "{c}");
    assert!(c.contains("a=%a"), "{c}");

    let mut s = session_with_binding("<LeaveWindow>");
    let (ax, ay) = probe_abs(&s);
    {
        let mut app = s.app.borrow_mut();
        app.displays[0].inject_pointer_move(ax + 7, ay + 8);
        app.displays[0].inject_pointer_move(1000, 740);
    }
    let c = captured(&mut s);
    assert!(c.contains("t=LeaveNotify"), "{c}");
    assert!(c.contains("w=probe"), "{c}");
}

#[test]
fn unlisted_event_type_expands_to_unknown() {
    // "%t will expand to unknown, if the event is not included in the
    // list above." Motion is bindable but not in the table.
    let mut s = session_with_binding("<Motion>");
    let (ax, ay) = probe_abs(&s);
    {
        let mut app = s.app.borrow_mut();
        app.displays[0].inject_pointer_move(ax + 2, ay + 2);
        app.displays[0].inject_pointer_move(ax + 3, ay + 2);
    }
    let c = captured(&mut s);
    assert!(c.contains("t=unknown"), "{c}");
}

#[test]
fn paper_exact_xev_output_shape() {
    // The printed example: typing "w!" under
    // {<KeyPress>: exec(echo %k %a %s)} gives three lines:
    // keycode w w / keycode Shift_L / keycode ! exclam.
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("label xev topLevel width 100 height 40").unwrap();
    s.eval("action xev override {<KeyPress>: exec(echo %k %a %s)}")
        .unwrap();
    s.eval("realize").unwrap();
    {
        let mut app = s.app.borrow_mut();
        let xev = app.lookup("xev").unwrap();
        let win = app.widget(xev).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_text("w!");
    }
    s.pump();
    let out = s.take_output();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "{out:?}");
    // Shape: "<code> w w", "<code> Shift_L" (empty ascii), "<code> ! exclam".
    let f0: Vec<&str> = lines[0].split_whitespace().collect();
    assert_eq!(&f0[1..], &["w", "w"]);
    let f1: Vec<&str> = lines[1].split_whitespace().collect();
    assert_eq!(f1[1], "Shift_L");
    let f2: Vec<&str> = lines[2].split_whitespace().collect();
    assert_eq!(&f2[1..], &["!", "exclam"]);
}
