//! E12 — the paper's resource-count example: the Label widget class has
//! exactly 42 resources under the X11R5/Xaw3d stack, and the printed
//! name list starts with the names the paper shows.

use wafe::core::{Flavor, WafeSession};

#[test]
fn label_resource_count_is_42() {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("label l topLevel").unwrap();
    assert_eq!(s.eval("getResourceList l retVal").unwrap(), "42");
}

#[test]
fn paper_printed_prefix_matches() {
    // "Resources: destroyCallback ancestorSensitive x y width height
    //  borderWidth sensitive screen depth colormap background (...)".
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("label l topLevel").unwrap();
    s.eval("getResourceList l retVal").unwrap();
    s.eval("echo Resources: $retVal").unwrap();
    let out = s.take_output();
    for name in [
        "destroyCallback",
        "ancestorSensitive",
        "x",
        "y",
        "width",
        "height",
        "borderWidth",
        "sensitive",
        "screen",
        "depth",
        "colormap",
        "background",
    ] {
        assert!(
            out.split_whitespace().any(|w| w == name),
            "missing {name} in {out}"
        );
    }
    assert!(out.starts_with("Resources: destroyCallback"));
}

#[test]
fn counts_differ_by_class_as_expected() {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("label l topLevel").unwrap();
    s.eval("command c topLevel").unwrap();
    s.eval("toggle t topLevel").unwrap();
    let label: usize = s.eval("getResourceList l v").unwrap().parse().unwrap();
    let command: usize = s.eval("getResourceList c v").unwrap().parse().unwrap();
    let toggle: usize = s.eval("getResourceList t v").unwrap().parse().unwrap();
    assert_eq!(label, 42);
    // Command = Label + callback + highlightThickness.
    assert_eq!(command, 44);
    // Toggle = Command + state + radioGroup + radioData.
    assert_eq!(toggle, 47);
}

#[test]
fn resource_list_is_class_wide_not_per_instance() {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("label a topLevel label short").unwrap();
    s.eval("label b topLevel label {a much longer label value}")
        .unwrap();
    let na = s.eval("getResourceList a v").unwrap();
    let nb = s.eval("getResourceList b v").unwrap();
    assert_eq!(na, nb);
}
