//! E1 — the paper's "Predefined Callbacks" table, row by row:
//!
//! | name            | behaviour                        |
//! |-----------------|----------------------------------|
//! | none            | realize shell, grab none         |
//! | exclusive       | realize shell, grab exclusive    |
//! | nonexclusive    | realize shell, grab nonexclusive |
//! | popdown         | unrealize shell                  |
//! | position        | position shell                   |
//! | positionCursor  | position shell under pointer     |

use wafe::core::{Flavor, WafeSession};

fn setup() -> WafeSession {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("command b topLevel label press").unwrap();
    // Positioned away from the button so popping it up never covers it.
    s.eval("transientShell popup topLevel x 500 y 500").unwrap();
    s.eval("label inner popup label {popup content}").unwrap();
    s.eval("realize").unwrap();
    s
}

fn fire(s: &mut WafeSession, kind: &str) {
    s.eval("sV b callback {}").unwrap();
    s.eval(&format!("callback b callback {kind} popup"))
        .unwrap();
    wafe::click_widget(s, "b");
}

fn popped(s: &WafeSession) -> bool {
    let app = s.app.borrow();
    app.is_popped_up(app.lookup("popup").unwrap())
}

fn grab_depth(s: &WafeSession) -> usize {
    s.app.borrow().displays[0].grab_depth()
}

#[test]
fn row_none_realizes_without_grab() {
    let mut s = setup();
    fire(&mut s, "none");
    assert!(popped(&s), "none must realize the shell");
    assert_eq!(grab_depth(&s), 0, "none must not grab");
}

#[test]
fn row_exclusive_realizes_with_exclusive_grab() {
    let mut s = setup();
    fire(&mut s, "exclusive");
    assert!(popped(&s));
    assert_eq!(grab_depth(&s), 1);
    // The grab is exclusive: clicks outside the popup are confined.
    let blocked_before = s.app.borrow().displays[0].blocked_event_count();
    {
        let mut app = s.app.borrow_mut();
        app.displays[0].inject_click(1000, 700, 1);
    }
    s.pump();
    assert!(
        s.app.borrow().displays[0].blocked_event_count() > blocked_before,
        "outside clicks must be confined by the exclusive grab"
    );
}

#[test]
fn row_nonexclusive_realizes_with_spring_loaded_grab() {
    let mut s = setup();
    fire(&mut s, "nonexclusive");
    assert!(popped(&s));
    assert_eq!(grab_depth(&s), 1);
    // Nonexclusive: events elsewhere still flow.
    let blocked_before = s.app.borrow().displays[0].blocked_event_count();
    {
        let mut app = s.app.borrow_mut();
        app.displays[0].inject_click(1000, 700, 1);
    }
    s.pump();
    assert_eq!(
        s.app.borrow().displays[0].blocked_event_count(),
        blocked_before
    );
}

#[test]
fn row_popdown_unrealizes() {
    let mut s = setup();
    fire(&mut s, "none");
    assert!(popped(&s));
    fire(&mut s, "popdown");
    assert!(!popped(&s), "popdown must unrealize the shell");
    assert_eq!(grab_depth(&s), 0);
}

#[test]
fn row_position_places_below_invoker() {
    let mut s = setup();
    fire(&mut s, "position");
    assert!(popped(&s));
    let app = s.app.borrow();
    let popup = app.lookup("popup").unwrap();
    let b = app.lookup("b").unwrap();
    let b_abs = app.displays[0].abs_rect(app.widget(b).window.unwrap());
    assert_eq!(app.pos_resource(popup, "x"), b_abs.x);
    assert_eq!(app.pos_resource(popup, "y"), b_abs.y + b_abs.h as i32);
}

#[test]
fn row_position_cursor_places_under_pointer() {
    let mut s = setup();
    {
        let mut app = s.app.borrow_mut();
        app.displays[0].inject_pointer_move(456, 321);
    }
    s.pump();
    // Fire via a direct action so the click does not move the pointer.
    s.eval("sV b callback {}").unwrap();
    s.eval("callback b callback positionCursor popup").unwrap();
    {
        let mut app = s.app.borrow_mut();
        let b = app.lookup("b").unwrap();
        app.call_callbacks(b, "callback", std::collections::HashMap::new());
    }
    s.pump();
    let app = s.app.borrow();
    let popup = app.lookup("popup").unwrap();
    assert_eq!(app.pos_resource(popup, "x"), 456);
    assert_eq!(app.pos_resource(popup, "y"), 321);
}

#[test]
fn predefined_callbacks_compose_with_scripts() {
    // A callback list may mix a script and a predefined function.
    let mut s = setup();
    s.eval("sV b callback {echo opening}").unwrap();
    s.eval("callback b callback none popup").unwrap();
    wafe::click_widget(&mut s, "b");
    assert_eq!(s.take_output(), "opening\n");
    assert!(popped(&s));
}
