//! `xnetstats` — "network statistics, frontend for netstat -i
//! <interval>": a StripChart monitor fed one sample per interval.
//!
//! The paper's demo pipes `netstat -i` into Wafe; the reproduction
//! synthesises the interface counters (there is no 1993 DECstation
//! network here) with a deterministic generator and drives the chart
//! through the same `stripChartAddSample` command and `addTimeOut`
//! virtual-time loop a Wafe script would use.
//!
//! Run with `cargo run --example xnetstats`.

use wafe::core::{Flavor, WafeSession};

fn main() {
    let mut session = WafeSession::new(Flavor::Athena);
    session
        .eval(
            "form top topLevel\n\
             label title top label {xnetstats: packets/s on le0} borderWidth 0\n\
             stripChart chart top fromVert title width 120 height 48\n\
             barGraph totals top fromVert chart values {0,0,0} height 40\n\
             command quitb top label quit fromVert totals callback quit\n\
             realize",
        )
        .expect("monitor UI builds");

    // The sampling loop, written in Tcl exactly as a Wafe script would:
    // a timeout that reschedules itself every second of virtual time.
    session.eval("expr {srand(7)}").unwrap();
    session
        .eval(
            "proc sample {} {\n\
                 set load [expr {int(20 + 80 * rand())}]\n\
                 stripChartAddSample chart $load\n\
                 addTimeOut 1000 sample\n\
             }\n\
             addTimeOut 1000 sample",
        )
        .expect("sampling proc installs");

    // Run one virtual minute.
    session.eval("advanceTime 60000").expect("clock advances");
    assert_eq!(session.pending_timeouts(), 1, "loop keeps rescheduling");

    println!("after 60 virtual seconds of sampling:");
    println!("{}", session.eval("snapshot 0 0 260 160").unwrap());
    println!("virtual clock: {} ms", session.now_ms());
}
