//! `xwafedesign` — the interactive design program for Wafe applications
//! (Figure 6), reproduced: it builds a sample UI *and* shows that UI's
//! widget tree as a graph, using the TreeGraph layout widget (the
//! XmGraph stand-in of Figure 2).
//!
//! Run with `cargo run --example xwafedesign`.

use wafe::core::{Flavor, WafeSession};

fn main() {
    let mut session = WafeSession::new(Flavor::Athena);

    // The UI under design: a small mail-reader-ish window.
    session
        .eval(
            "form design topLevel\n\
             label title design label {Design: xwafemail} borderWidth 0\n\
             list folders design fromVert title list {inbox,outbox,drafts}\n\
             asciiText body design fromVert title fromHoriz folders editType edit width 160\n\
             command send design label Send fromVert folders\n\
             command quitb design label Quit fromVert folders fromHoriz send callback quit\n\
             realize",
        )
        .expect("design UI builds");

    // The design tool inspects the live widget tree through the same
    // introspection commands any Wafe script could use…
    let widgets = ["design", "title", "folders", "body", "send", "quitb"];
    println!("widget tree (via parent/class commands):");
    for w in &widgets {
        let class = session.eval(&format!("class {w}")).unwrap();
        let parent = session.eval(&format!("parent {w}")).unwrap();
        println!("  {w:10} class={class:12} parent={parent}");
    }

    // …and renders it as a graph in a second application shell.
    session.eval("applicationShell viewer design:1").unwrap();
    session.eval("treeGraph graph viewer").unwrap();
    for w in &widgets {
        let parent = session.eval(&format!("parent {w}")).unwrap();
        let label = w.to_string();
        let mut cmd = format!("label node_{w} graph label {label}");
        if widgets.contains(&parent.as_str()) {
            cmd.push_str(&format!(" parentNode node_{parent}"));
        }
        session.eval(&cmd).unwrap();
    }
    session.eval("realize").unwrap();

    println!("\n--- the designed UI (display :0) ---");
    println!("{}", session.eval("snapshot 0 0 340 140 0").unwrap());
    println!("--- its widget tree as a graph (display design:1) ---");
    println!("{}", session.eval("snapshot 0 0 420 160 1").unwrap());
}
