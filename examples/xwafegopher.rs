//! `xwafegopher` — the distribution's gopher frontend, end to end over
//! real pipes: the backend (`wafe-backend-gopher`) serves a canned menu
//! hierarchy, this example plays the frontend and a user browsing it.
//!
//! Run with `cargo run --example xwafegopher` (builds the backend first:
//! `cargo build --bin wafe-backend-gopher`).

use std::time::{Duration, Instant};

use wafe::core::Flavor;
use wafe::ipc::{Frontend, FrontendConfig};

fn backend_path() -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    exe.parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("wafe-backend-gopher"))
        .expect("target layout")
}

fn wait_until<F: Fn(&Frontend) -> bool>(fe: &mut Frontend, pred: F) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(10)).unwrap();
        if pred(fe) {
            return true;
        }
    }
    false
}

fn title(fe: &Frontend) -> String {
    let app = fe.engine.session.app.borrow();
    match app.lookup("title") {
        Some(t) => app.str_resource(t, "label"),
        None => String::new(),
    }
}

fn select(fe: &mut Frontend, index: usize) {
    fe.engine
        .session
        .eval(&format!("listHighlight items {index}"))
        .unwrap();
    let mut app = fe.engine.session.app.borrow_mut();
    let l = app.lookup("items").unwrap();
    let ev = wafe::xproto::Event::new(
        wafe::xproto::EventKind::ButtonRelease,
        wafe::xproto::WindowId(0),
    );
    app.run_action(l, "Notify", &[], &ev);
}

fn main() {
    let backend = backend_path();
    if !backend.exists() {
        eprintln!(
            "backend not found at {}; run `cargo build --bin wafe-backend-gopher` first",
            backend.display()
        );
        std::process::exit(2);
    }
    let mut config = FrontendConfig::new(backend.to_str().unwrap());
    config.flavor = Flavor::Athena;
    config.mass_channel = false;
    let mut fe = Frontend::spawn(config).expect("spawn gopher backend");

    assert!(
        wait_until(&mut fe, |fe| title(fe) == "gopher.wu-wien.ac.at"),
        "root menu must arrive"
    );
    println!("root menu: {}", title(&fe));

    // Descend into "Software archive" (item 1).
    select(&mut fe, 1);
    assert!(wait_until(&mut fe, |fe| title(fe) == "Software archive"));
    println!("entered:   {}", title(&fe));

    // Open the wafe-0.93 document (item 0).
    select(&mut fe, 0);
    assert!(wait_until(&mut fe, |fe| {
        let app = fe.engine.session.app.borrow();
        app.lookup("doc")
            .map(|d| app.str_resource(d, "string").contains("Wafe 0.93"))
            .unwrap_or(false)
    }));
    println!("document:  {}", title(&fe));

    // Back to the root.
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let b = app.lookup("back").unwrap();
        let abs = app.displays[0].abs_rect(app.widget(b).window.unwrap());
        app.displays[0].inject_click(abs.x + 3, abs.y + 3, 1);
    }
    assert!(wait_until(&mut fe, |fe| title(fe) == "gopher.wu-wien.ac.at"));
    println!("back at:   {}", title(&fe));

    println!("\n--- browser window ---");
    println!(
        "{}",
        fe.engine.session.eval("snapshot 0 0 300 260").unwrap()
    );
    fe.kill();
}
