//! `xwafetel` — "a simple read-only Oracle front-end for looking up
//! telephone numbers", with the field completion the paper credits to
//! its bigger sibling `xwafeora` ("supports field completion and other
//! funky stuff").
//!
//! The Oracle database becomes an embedded table; Tab in the query field
//! asks the application for a completion, exactly the division of labour
//! the demos used.
//!
//! Run with `cargo run --example xwafetel`.

use wafe::core::{Flavor, WafeSession};

const DIRECTORY: &[(&str, &str)] = &[
    ("neumann", "+43 1 31336 4671"),
    ("nusser", "+43 1 31336 4672"),
    ("mueller", "+43 1 31336 4100"),
    ("maier", "+43 1 31336 4101"),
];

/// The application's completion logic: extend the prefix as far as it
/// stays unambiguous.
fn complete(prefix: &str) -> String {
    let hits: Vec<&str> = DIRECTORY
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| n.starts_with(prefix))
        .collect();
    match hits.as_slice() {
        [] => prefix.to_string(),
        [one] => one.to_string(),
        many => {
            // Longest common prefix of all hits.
            let mut lcp = many[0].to_string();
            for h in &many[1..] {
                while !h.starts_with(&lcp) {
                    lcp.pop();
                }
            }
            lcp
        }
    }
}

fn lookup(name: &str) -> Option<&'static str> {
    DIRECTORY.iter().find(|(n, _)| *n == name).map(|(_, t)| *t)
}

fn main() {
    let mut session = WafeSession::new(Flavor::Athena);
    session
        .eval(
            "form tel topLevel\n\
             label title tel label {xwafetel — phone directory} borderWidth 0\n\
             label prompt tel label {name:} fromVert title borderWidth 0\n\
             asciiText query tel fromVert title fromHoriz prompt editType edit width 160\n\
             label number tel fromVert prompt label {} width 220 borderWidth 0\n\
             command lookupb tel fromVert number label Lookup\n\
             action query override {<Key>Tab: exec(echo complete [gV query string])}\n\
             action query override {<Key>Return: exec(echo lookup [gV query string])}\n\
             sV lookupb callback {echo lookup [gV query string]}\n\
             realize",
        )
        .expect("tel UI builds");

    // The application's read loop, driven by a scripted user typing.
    let serve = |session: &mut WafeSession| {
        let out = session.take_output();
        for line in out.lines() {
            if let Some(prefix) = line.strip_prefix("complete ") {
                let full = complete(prefix.trim());
                session
                    .eval(&format!("sV query string {{{full}}}"))
                    .unwrap();
                // Put the cursor at the end, like a completing editor.
                session
                    .eval(&format!("sV query insertPosition {}", full.chars().count()))
                    .unwrap();
            } else if let Some(name) = line.strip_prefix("lookup ") {
                let answer = match lookup(name.trim()) {
                    Some(tel) => format!("{}: {tel}", name.trim()),
                    None => format!("{}: not found", name.trim()),
                };
                session
                    .eval(&format!("sV number label {{{answer}}}"))
                    .unwrap();
            }
        }
    };

    // Type "ne", press Tab: completes to "neumann" (unique).
    wafe::type_into_widget(&mut session, "query", "ne");
    {
        let mut app = session.app.borrow_mut();
        let q = app.lookup("query").unwrap();
        let win = app.widget(q).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_named("Tab", wafe::xproto::Modifiers::NONE);
    }
    session.pump();
    serve(&mut session);
    let q = session.eval("gV query string").unwrap();
    println!("after Tab on 'ne':  query = {q}");
    assert_eq!(q, "neumann");

    // Press Return: the number appears.
    {
        let mut app = session.app.borrow_mut();
        let q = app.lookup("query").unwrap();
        let win = app.widget(q).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_named("Return", wafe::xproto::Modifiers::NONE);
    }
    session.pump();
    serve(&mut session);
    let n = session.eval("gV number label").unwrap();
    println!("after Return:       {n}");
    assert!(n.contains("4671"));

    // Ambiguous prefix: "m" + Tab completes only to the common stem.
    session.eval("sV query string {m}").unwrap();
    {
        let mut app = session.app.borrow_mut();
        let q = app.lookup("query").unwrap();
        let win = app.widget(q).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_named("Tab", wafe::xproto::Modifiers::NONE);
    }
    session.pump();
    serve(&mut session);
    let q = session.eval("gV query string").unwrap();
    println!("after Tab on 'm':   query = {q} (ambiguous: mueller/maier share only 'm')");
    assert_eq!(q, "m");

    println!("\n{}", session.eval("snapshot 0 0 300 120").unwrap());
}
