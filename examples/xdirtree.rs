//! `xdirtree` — the tree directory browser of the Wafe distribution.
//!
//! A List widget shows the entries of a directory; selecting a directory
//! descends into it, and the `..` entry goes back up. The whole UI is
//! built with Wafe commands; the application logic (here: Rust reading
//! the real filesystem) feeds the list through `listChange` — the same
//! division of labour the paper's demo uses.
//!
//! Run with `cargo run --example xdirtree [startdir]`.

use wafe::core::{Flavor, WafeSession};

fn entries(dir: &std::path::Path) -> Vec<String> {
    let mut out = vec!["..".to_string()];
    if let Ok(rd) = std::fs::read_dir(dir) {
        let mut names: Vec<String> = rd
            .filter_map(|e| e.ok())
            .map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                if e.path().is_dir() {
                    format!("{name}/")
                } else {
                    name
                }
            })
            .collect();
        names.sort();
        out.extend(names.into_iter().take(20)); // Keep the window readable.
    }
    out
}

fn show_dir(session: &mut WafeSession, dir: &std::path::Path) {
    let list = entries(dir).join(",");
    session
        .eval(&format!("listChange dirlist {{{list}}}"))
        .expect("listChange");
    session
        .eval(&format!("sV pathlabel label {{{}}}", dir.display()))
        .expect("set path label");
}

fn main() {
    let start = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut dir = std::fs::canonicalize(start).expect("start directory");

    let mut session = WafeSession::new(Flavor::Athena);
    session
        .eval(
            "form top topLevel\n\
             label pathlabel top label {} width 300 borderWidth 0\n\
             viewport vp top fromVert pathlabel width 300 height 200\n\
             list dirlist vp list {..}\n\
             command up top label {up} fromVert vp\n\
             command quitb top label {quit} fromVert vp fromHoriz up callback quit\n\
             sV dirlist callback {echo select %s}\n\
             sV up callback {echo select ..}\n\
             realize",
        )
        .expect("ui builds");
    show_dir(&mut session, &dir);

    // A scripted user walks down into the first subdirectory it finds,
    // then back up, then quits — in a real session the select lines come
    // from clicks; here we drive the same callback pathway.
    for _ in 0..6 {
        let output = session.take_output();
        for line in output.lines() {
            if let Some(sel) = line.strip_prefix("select ") {
                if sel == ".." {
                    if let Some(parent) = dir.parent() {
                        dir = parent.to_path_buf();
                    }
                } else if let Some(d) = sel.strip_suffix('/') {
                    dir = dir.join(d);
                }
                show_dir(&mut session, &dir);
            }
        }
        // Click the first directory entry in the list, if any.
        let items = entries(&dir);
        let first_dir = items.iter().skip(1).position(|e| e.ends_with('/'));
        match first_dir {
            Some(pos) => {
                let idx = pos + 1;
                session
                    .eval(&format!("listHighlight dirlist {idx}"))
                    .unwrap();
                // Fire the List's Notify action directly (a click would
                // need pixel coordinates; Notify is the same code path).
                let mut app = session.app.borrow_mut();
                let l = app.lookup("dirlist").unwrap();
                let ev = wafe::xproto::Event::new(
                    wafe::xproto::EventKind::ButtonRelease,
                    wafe::xproto::WindowId(0),
                );
                app.run_action(l, "Notify", &[], &ev);
                drop(app);
                session.pump();
            }
            None => break,
        }
    }
    println!("--- final browser state at {} ---", dir.display());
    println!("{}", session.eval("snapshot 0 0 320 260").unwrap());
}
