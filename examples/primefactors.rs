//! The paper's prime-factors frontend application, end to end with a
//! real child process (Figure 5's three phases).
//!
//! The backend is `wafe-backend-prime`, a line-for-line port of the
//! paper's Perl program; this example plays the frontend and the user.
//!
//! Run with `cargo run --example primefactors` (builds the backend first:
//! `cargo build --bin wafe-backend-prime`).

use std::time::{Duration, Instant};

use wafe::core::Flavor;
use wafe::ipc::{Frontend, FrontendConfig};

fn backend_path() -> std::path::PathBuf {
    // examples live in target/<profile>/examples/, binaries one level up.
    let exe = std::env::current_exe().expect("current_exe");
    exe.parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("wafe-backend-prime"))
        .expect("target layout")
}

fn main() {
    let backend = backend_path();
    if !backend.exists() {
        eprintln!(
            "backend binary not found at {}; run `cargo build --bin wafe-backend-prime` first",
            backend.display()
        );
        std::process::exit(2);
    }

    // Phase 1: Wafe starts the application program as a subprocess.
    let mut config = FrontendConfig::new(backend.to_str().unwrap());
    config.flavor = Flavor::Athena;
    config.mass_channel = false;
    let mut fe = Frontend::spawn(config).expect("spawn backend");

    // Phase 2: the application creates and realizes the widget tree.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(10)).unwrap();
        let ready = {
            let app = fe.engine.session.app.borrow();
            app.lookup("input")
                .map(|w| app.is_realized(w))
                .unwrap_or(false)
        };
        if ready {
            break;
        }
    }
    println!("--- widget tree built by the backend: ---");
    println!(
        "{}",
        fe.engine.session.eval("snapshot 0 0 280 100").unwrap()
    );

    // Phase 3: the user types 360 and presses Return; the exec action
    // sends the string to the backend, which factorises and answers.
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let input = app.lookup("input").unwrap();
        let win = app.widget(input).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_text("360\n");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut result = String::new();
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(10)).unwrap();
        result = fe
            .engine
            .session
            .eval("gV result label")
            .unwrap_or_default()
            .to_string();
        if !result.is_empty() {
            break;
        }
    }
    println!("360 = {result}");
    // The Perl original `unshift`s each factor, so they come out largest
    // first: 5*3*3*2*2*2.
    assert_eq!(result, "5*3*3*2*2*2");
    println!("info: {}", fe.engine.session.eval("gV info label").unwrap());

    // Invalid input path.
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let input = app.lookup("input").unwrap();
        app.set_resource(input, "string", "not-a-number").unwrap();
        let win = app.widget(input).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_named("Return", wafe::xproto::Modifiers::NONE);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(10)).unwrap();
        if fe.engine.session.eval("gV info label").unwrap_or_default() == "(invalid input)" {
            break;
        }
    }
    println!(
        "info after bad input: {}",
        fe.engine.session.eval("gV info label").unwrap()
    );

    // Quit via the button.
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let quit = app.lookup("quit").unwrap();
        let win = app.widget(quit).window.unwrap();
        let abs = app.displays[0].abs_rect(win);
        app.displays[0].inject_click(abs.x + 3, abs.y + 3, 1);
    }
    fe.run_until_exit(Duration::from_secs(5)).unwrap();
    fe.kill();
    println!("frontend and backend terminated cleanly");
}
