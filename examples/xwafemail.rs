//! `xwafemail` — the "Mail user frontend with faces" of the Wafe
//! distribution: folder list, message list, body text, and a face
//! bitmap per sender (exercising the XPM pixmap converter).
//!
//! The mailbox is synthetic (there is no 1993 mail spool here); the
//! interaction paths — select a message, read it, see the sender's face,
//! reply box — are the demo's.
//!
//! Run with `cargo run --example xwafemail`.

use wafe::core::{Flavor, WafeSession};

struct Mail {
    from: &'static str,
    subject: &'static str,
    body: &'static str,
    face: &'static str,
}

const MAILS: &[Mail] = &[
    Mail {
        from: "neumann",
        subject: "Wafe 0.93 released",
        body: "The actual Wafe version and the sample\napplications can be obtained via\nanonymous FTP from ftp.wu-wien.ac.at.",
        face: "\"4 4 2 1\",\". c black\",\"x c yellow\",\"xx..\",\"x.x.\",\".xx.\",\"..xx\"",
    },
    Mail {
        from: "nusser",
        subject: "master's thesis",
        body: "Stefan is writing his master's thesis\nat the department mentioned above.",
        face: "\"4 4 2 1\",\". c black\",\"x c cyan\",\"..xx\",\".xx.\",\"xx..\",\"x...\"",
    },
    Mail {
        from: "ousterhout",
        subject: "Re: Tcl and Tk",
        body: "Tk offers three dimensional appearance\nof its widgets.",
        face: "\"4 4 2 1\",\". c black\",\"x c green\",\"x..x\",\".xx.\",\".xx.\",\"x..x\"",
    },
];

fn show_mail(session: &mut WafeSession, idx: usize) {
    let m = &MAILS[idx];
    session
        .eval(&format!(
            "sV fromlabel label {{From: {} — {}}}",
            m.from, m.subject
        ))
        .unwrap();
    session
        .eval(&format!("sV body string {{{}}}", m.body))
        .unwrap();
    // The face: an inline XPM fed through the extended pixmap converter.
    session
        .eval(&format!("sV face bitmap {{{}}}", m.face))
        .unwrap();
}

fn main() {
    let mut session = WafeSession::new(Flavor::Athena);
    let subjects: Vec<String> = MAILS
        .iter()
        .map(|m| format!("{}: {}", m.from, m.subject))
        .collect();
    session
        .eval(&format!(
            "form mail topLevel\n\
             label title mail label {{xwafemail — inbox}} borderWidth 0\n\
             label face mail fromVert title label {{}} width 20 height 20\n\
             list msgs mail fromVert title fromHoriz face list {{{}}}\n\
             label fromlabel mail fromVert msgs borderWidth 0 width 300\n\
             asciiText body mail fromVert fromlabel editType read width 300\n\
             command reply mail fromVert body label Reply\n\
             command quitb mail fromVert body fromHoriz reply label Quit callback quit\n\
             sV msgs callback {{echo open %i}}\n\
             sV reply callback {{echo reply}}\n\
             realize",
            subjects.join(",")
        ))
        .expect("mail UI builds");
    show_mail(&mut session, 0);

    // A scripted user opens each message in turn.
    for (i, mail) in MAILS.iter().enumerate() {
        session.eval(&format!("listHighlight msgs {i}")).unwrap();
        {
            let mut app = session.app.borrow_mut();
            let l = app.lookup("msgs").unwrap();
            let ev = wafe::xproto::Event::new(
                wafe::xproto::EventKind::ButtonRelease,
                wafe::xproto::WindowId(0),
            );
            app.run_action(l, "Notify", &[], &ev);
        }
        session.pump();
        let out = session.take_output();
        assert_eq!(out.trim(), format!("open {i}"));
        show_mail(&mut session, i);
        println!("opened message {i}: {}", mail.subject);
    }
    println!("\n--- final mail window ---");
    println!("{}", session.eval("snapshot 0 0 360 220").unwrap());
    let face = session.eval("gV face bitmap").unwrap();
    println!("face pixmap resource: {face}");
    assert_eq!(face, "pixmap-4x4");
}
