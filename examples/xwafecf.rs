//! `xwafecf` — the "simple read-only card filer" of the Wafe
//! distribution: a scrollable card list, a card display, and a lookup
//! dialog. Exercises Viewport + Scrollbar wiring and the Dialog widget.
//!
//! Run with `cargo run --example xwafecf`.

use wafe::core::{Flavor, WafeSession};

const CARDS: &[(&str, &str)] = &[
    (
        "neumann",
        "Gustaf Neumann\nVienna University of Economics\nneumann@wu-wien.ac.at",
    ),
    (
        "nusser",
        "Stefan Nusser\nVienna University of Economics\nnusser@wu-wien.ac.at",
    ),
    (
        "wafe",
        "Wafe 0.93\nftp.wu-wien.ac.at:pub/src/X11/wafe\n(137.208.3.4)",
    ),
    (
        "tcl",
        "Tcl - Tool command language\nJohn K. Ousterhout\nUC Berkeley",
    ),
];

fn main() {
    let mut session = WafeSession::new(Flavor::Athena);
    let names: Vec<&str> = CARDS.iter().map(|(n, _)| *n).collect();
    session
        .eval(&format!(
            "form cf topLevel\n\
             label title cf label {{xwafecf — card filer}} borderWidth 0\n\
             scrollbar sb cf fromVert title length 120\n\
             viewport vp cf fromVert title fromHoriz sb width 140 height 120\n\
             list cards vp list {{{}}}\n\
             asciiText card cf fromVert title fromHoriz vp editType read width 260 height 120\n\
             command lookup cf fromVert vp label {{Lookup...}}\n\
             command quitb cf fromVert vp fromHoriz lookup label Quit callback quit\n\
             sV sb jumpProc {{viewportSetCoordinates vp 0 [expr {{%t * 60 / 1000}}]}}\n\
             sV cards callback {{echo show %i}}\n\
             sV lookup callback {{echo lookup}}\n\
             realize",
            names.join(",")
        ))
        .expect("card filer UI builds");

    // A scripted user flips through every card.
    for (i, (name, body)) in CARDS.iter().enumerate() {
        session.eval(&format!("listHighlight cards {i}")).unwrap();
        {
            let mut app = session.app.borrow_mut();
            let l = app.lookup("cards").unwrap();
            let ev = wafe::xproto::Event::new(
                wafe::xproto::EventKind::ButtonRelease,
                wafe::xproto::WindowId(0),
            );
            app.run_action(l, "Notify", &[], &ev);
        }
        session.pump();
        let out = session.take_output();
        assert_eq!(out.trim(), format!("show {i}"));
        session.eval(&format!("sV card string {{{body}}}")).unwrap();
        println!("card {i}: {name}");
    }

    // The lookup dialog (a transient shell with a Dialog inside).
    session
        .eval("transientShell dlgshell topLevel x 400 y 200")
        .unwrap();
    // A non-empty `value` makes the Dialog grow its editable value field
    // (Xaw semantics: NULL means "no value area"); clear it afterwards.
    session
        .eval("dialog dlg dlgshell label {Lookup card:} value {x}")
        .unwrap();
    session.eval("sV dlg.value string {}").unwrap();
    session
        .eval("dialogAddButton dlg ok {echo lookup-ok}")
        .unwrap();
    session
        .eval("dialogAddButton dlg cancel {popdown dlgshell}")
        .unwrap();
    session
        .eval("callback lookup callback exclusive dlgshell")
        .unwrap();
    wafe::click_widget(&mut session, "lookup");
    let out = session.take_output();
    assert_eq!(out.trim(), "lookup");
    assert!(session
        .app
        .borrow()
        .is_popped_up(session.app.borrow().lookup("dlgshell").unwrap()));
    // Type a name into the dialog's value field and confirm.
    wafe::type_into_widget(&mut session, "dlg.value", "tcl");
    let typed = session.eval("dialogGetValueString dlg").unwrap();
    println!("dialog value typed: {typed}");
    assert_eq!(typed, "tcl");
    wafe::click_widget(&mut session, "dlg.cancel");
    assert!(!session
        .app
        .borrow()
        .is_popped_up(session.app.borrow().lookup("dlgshell").unwrap()));

    println!("\n--- final card filer ---");
    println!("{}", session.eval("snapshot 0 0 440 220").unwrap());
}
