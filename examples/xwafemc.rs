//! `xwafemc` — the "multiple choice test answering program" of the Wafe
//! distribution: radio-grouped Toggle widgets per question, a submit
//! button, and a score label.
//!
//! Run with `cargo run --example xwafemc`.

use wafe::core::{Flavor, WafeSession};

struct Question {
    text: &'static str,
    choices: [&'static str; 3],
    correct: usize,
}

const QUESTIONS: &[Question] = &[
    Question {
        text: "Wafe stands for…",
        choices: [
            "Widget[Athena]FrontEnd",
            "Window Frame Engine",
            "Wide Area FE",
        ],
        correct: 0,
    },
    Question {
        text: "Wafe embeds which language?",
        choices: ["Perl", "Tcl", "Prolog"],
        correct: 1,
    },
    Question {
        text: "The Label class has how many resources (Xaw3d)?",
        choices: ["13", "42", "64"],
        correct: 1,
    },
];

fn main() {
    let mut session = WafeSession::new(Flavor::Athena);
    session.eval("form quiz topLevel").unwrap();
    // Each question is two rows: the question label, then its toggle
    // row. `anchor` is always the widget the next row hangs below.
    let mut anchor = String::new();
    for (qi, q) in QUESTIONS.iter().enumerate() {
        let qlabel = format!("q{qi}");
        let mut cmd = format!("label {qlabel} quiz label {{{}}} borderWidth 0", q.text);
        if !anchor.is_empty() {
            cmd.push_str(&format!(" fromVert {anchor}"));
        }
        session.eval(&cmd).unwrap();
        let mut left: Option<String> = None;
        for (ci, c) in q.choices.iter().enumerate() {
            let t = format!("q{qi}c{ci}");
            let mut cmd =
                format!("toggle {t} quiz label {{{c}}} radioGroup grp{qi} fromVert {qlabel}");
            if let Some(prev) = &left {
                cmd.push_str(&format!(" fromHoriz {prev}"));
            }
            session.eval(&cmd).unwrap();
            left = Some(t);
        }
        anchor = format!("q{qi}c0");
    }
    session
        .eval(&format!(
            "command submit quiz label Submit fromVert {anchor} callback {{echo submit}}\n\
             label score quiz label {{---}} fromVert {anchor} fromHoriz submit borderWidth 0\n\
             realize"
        ))
        .unwrap();

    // A scripted student answers: right, right, wrong.
    let answers = [0usize, 1, 0];
    for (qi, &a) in answers.iter().enumerate() {
        wafe::click_widget(&mut session, &format!("q{qi}c{a}"));
    }
    wafe::click_widget(&mut session, "submit");
    let out = session.take_output();
    assert!(out.contains("submit"));

    // Grading runs in the application (here: Rust), reading the toggles
    // back through the public API — the Wafe way.
    let mut score = 0usize;
    for (qi, q) in QUESTIONS.iter().enumerate() {
        for ci in 0..q.choices.len() {
            let picked = session.eval(&format!("gV q{qi}c{ci} state")).unwrap() == "True";
            if picked && ci == q.correct {
                score += 1;
            }
        }
    }
    session
        .eval(&format!(
            "sV score label {{Score: {score}/{}}}",
            QUESTIONS.len()
        ))
        .unwrap();
    println!("{}", session.eval("snapshot 0 0 500 200").unwrap());
    println!("score: {score}/{}", QUESTIONS.len());
    assert_eq!(score, 2);
}
