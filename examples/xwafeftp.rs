//! `xwafeftp` — the distribution's FTP frontend, end to end: directory
//! listing over the command channel, file retrieval over the
//! mass-transfer data channel (a real pipe at the child's fd 5).
//!
//! Run with `cargo run --example xwafeftp` (builds the backend first:
//! `cargo build --bin wafe-backend-ftp`).

use std::time::{Duration, Instant};

use wafe::core::Flavor;
use wafe::ipc::{Frontend, FrontendConfig};

fn backend_path() -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    exe.parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("wafe-backend-ftp"))
        .expect("target layout")
}

fn wait_until<F: Fn(&Frontend) -> bool>(fe: &mut Frontend, pred: F) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        fe.step(Duration::from_millis(10)).unwrap();
        if pred(fe) {
            return true;
        }
    }
    false
}

fn status(fe: &Frontend) -> String {
    let app = fe.engine.session.app.borrow();
    match app.lookup("status") {
        Some(s) => app.str_resource(s, "label"),
        None => String::new(),
    }
}

fn main() {
    let backend = backend_path();
    if !backend.exists() {
        eprintln!(
            "backend not found at {}; run `cargo build --bin wafe-backend-ftp` first",
            backend.display()
        );
        std::process::exit(2);
    }
    // The mass channel is on: retrievals stream over fd 5.
    let mut config = FrontendConfig::new(backend.to_str().unwrap());
    config.flavor = Flavor::Athena;
    config.mass_channel = true;
    let mut fe = Frontend::spawn(config).expect("spawn ftp backend");

    assert!(wait_until(&mut fe, |fe| status(fe) == "connected"));
    println!("status: {}", status(&fe));

    // Retrieve the big tarball (item 1, 8500 bytes) over the data channel.
    fe.engine.session.eval("listHighlight remote 1").unwrap();
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let l = app.lookup("remote").unwrap();
        let ev = wafe::xproto::Event::new(
            wafe::xproto::EventKind::ButtonRelease,
            wafe::xproto::WindowId(0),
        );
        app.run_action(l, "Notify", &[], &ev);
    }
    assert!(
        wait_until(&mut fe, |fe| status(fe).ends_with("transfer complete")),
        "mass transfer must complete; status was {:?}",
        status(&fe)
    );
    let content = fe.engine.session.eval("gV content string").unwrap();
    println!("status: {}", status(&fe));
    println!("retrieved {} bytes over the data channel", content.len());
    assert_eq!(content.len(), "tar-archive-bytes ".len() * 500);

    // A small file next, same path.
    fe.engine.session.eval("listHighlight remote 0").unwrap();
    {
        let mut app = fe.engine.session.app.borrow_mut();
        let l = app.lookup("remote").unwrap();
        let ev = wafe::xproto::Event::new(
            wafe::xproto::EventKind::ButtonRelease,
            wafe::xproto::WindowId(0),
        );
        app.run_action(l, "Notify", &[], &ev);
    }
    assert!(wait_until(&mut fe, |fe| {
        let app = fe.engine.session.app.borrow();
        app.lookup("content")
            .map(|c| app.str_resource(c, "string").contains("USENIX 1993"))
            .unwrap_or(false)
    }));
    println!("README retrieved:\n---");
    println!("{}", fe.engine.session.eval("gV content string").unwrap());
    println!("---");
    println!(
        "\n{}",
        fe.engine.session.eval("snapshot 0 0 320 240").unwrap()
    );
    fe.kill();
}
