//! Quickstart: the paper's "Wafe new World" file-mode script, run
//! in-process, clicked by a synthetic user, and screenshotted.
//!
//! Run with `cargo run --example quickstart`.

use wafe::core::{Flavor, WafeSession};

fn main() {
    let mut session = WafeSession::new(Flavor::Athena);

    // The file-mode script of Figure 4, verbatim.
    let script = "#!/usr/bin/X11/wafe --f\n\
                  command hello topLevel \\\n\
                      label \"Wafe new World\" \\\n\
                      callback \"echo Goodbye; quit\"\n\
                  realize\n";
    session.run_file_text(script).expect("script runs");

    println!("--- widget tree realized; screen: ---");
    println!("{}", session.eval("snapshot 0 0 240 60").unwrap());

    // A synthetic user clicks the button.
    wafe::click_widget(&mut session, "hello");
    print!("{}", session.take_output());
    assert!(session.quit_requested());
    println!("(quit requested — exactly what the callback script asked for)");
}
