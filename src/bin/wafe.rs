//! The `wafe` binary: interactive mode, file mode and frontend mode.
//!
//! * **interactive**: `wafe` reads commands from stdin and interprets
//!   them one by one — "the user sees how the widget tree is built and
//!   modified step by step".
//! * **file**: `wafe --f script.wafe` (also the `#!` magic) evaluates a
//!   Tcl/Wafe script.
//! * **frontend**: `wafe --app <program> [args…]` — or invoking through a
//!   link named `x<program>` — spawns the application program as a child
//!   and speaks the `%`-line protocol with it.
//!
//! The Motif flavour is selected by `--motif` or by invoking the binary
//! through a link named `mofe`.
//!
//! `--telemetry` (or `WAFE_TELEMETRY=1`) switches on the telemetry layer
//! in any mode; a script can then inspect it with `telemetry snapshot`.
//!
//! In frontend mode the backend runs under a supervisor
//! (see `docs/supervisor.md`): `--backend-timeout=MS` and
//! `--backend-retries=N` set the read timeout and restart budget on top
//! of the `WAFE_BACKEND_*` environment overrides, and `WAFE_FAULTS`
//! installs a deterministic fault-injection plan for testing.

use std::io::{BufRead, Write};
use std::time::Duration;

use wafe_core::{split_args, Flavor, WafeSession};
use wafe_ipc::{backend_from_argv0, FaultPlan, Frontend, FrontendConfig, SupervisorConfig};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let argv0 = argv[0].clone();
    let split = split_args(&argv[1..]);

    let flavor = if split.has_frontend("motif") || argv0.ends_with("mofe") {
        Flavor::Motif
    } else if split.has_frontend("both") {
        Flavor::Both
    } else {
        Flavor::Athena
    };

    // --guide: print the generated short reference guide (the original's
    // code generator emitted TeX for the same purpose) and exit.
    if split.has_frontend("guide") {
        let session = WafeSession::new(flavor);
        println!("{}", session.reference_guide());
        return;
    }

    // Frontend mode: explicit --app or the argv[0] link-name scheme.
    let backend = if split.has_frontend("app") {
        split.application.first().cloned()
    } else {
        backend_from_argv0(&argv0)
    };
    if let Some(program) = backend {
        let args = if split.has_frontend("app") {
            split.application[1..].to_vec()
        } else {
            split.application.clone()
        };
        run_frontend(&program, args, flavor, &split);
        return;
    }

    // File mode: --f <file>, or a bare file argument (the #! magic passes
    // the script path as the first argument).
    if split.has_frontend("f") || !split.application.is_empty() {
        let path = match split.application.first() {
            Some(p) => p.clone(),
            None => {
                eprintln!("wafe: --f requires a script file");
                std::process::exit(2);
            }
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("wafe: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let mut session = WafeSession::new(flavor);
        if split.has_frontend("telemetry") {
            session.telemetry.set_enabled(true);
        }
        session.apply_toolkit_args(&split);
        load_app_defaults(&mut session);
        session.set_output_callback(|s| {
            print!("{s}");
            let _ = std::io::stdout().flush();
        });
        if let Err(e) = session.run_file_text(&text) {
            eprintln!("wafe: {}", e.message());
            std::process::exit(1);
        }
        report_warnings(&session);
        return;
    }

    // Interactive mode.
    let mut session = WafeSession::new(flavor);
    if split.has_frontend("telemetry") {
        session.telemetry.set_enabled(true);
    }
    session.apply_toolkit_args(&split);
    load_app_defaults(&mut session);
    session.set_output_callback(|s| {
        print!("{s}");
        let _ = std::io::stdout().flush();
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        match session.eval(&line) {
            Ok(result) => {
                if !result.is_empty() {
                    println!("{result}");
                }
            }
            Err(e) => eprintln!("wafe: {}", e.message()),
        }
        report_warnings(&session);
        if session.quit_requested() {
            break;
        }
    }
}

fn run_frontend(program: &str, args: Vec<String>, flavor: Flavor, split: &wafe_core::SplitArgs) {
    let mut config = FrontendConfig::new(program);
    config.args = args;
    config.flavor = flavor;
    // Supervisor policy: WAFE_BACKEND_* environment first, then the
    // dedicated flags on top.
    let (supervisor, env_warnings) = SupervisorConfig::from_env();
    config.supervisor = supervisor;
    for w in env_warnings {
        eprintln!("wafe: {w}");
    }
    if let Some(v) = split.frontend_value("backend-timeout") {
        match v.parse::<u64>() {
            Ok(ms) => config.supervisor.read_timeout_ms = (ms > 0).then_some(ms),
            Err(_) => {
                eprintln!("wafe: --backend-timeout expects milliseconds, got \"{v}\"");
                std::process::exit(2);
            }
        }
    }
    if let Some(v) = split.frontend_value("backend-retries") {
        match v.parse::<u32>() {
            Ok(n) => config.supervisor.max_restarts = n,
            Err(_) => {
                eprintln!("wafe: --backend-retries expects a count, got \"{v}\"");
                std::process::exit(2);
            }
        }
    }
    // Deterministic fault injection: WAFE_FAULTS="point:action[@trigger];…".
    match FaultPlan::from_env() {
        Some(Ok(plan)) => config.faults = Some(plan),
        Some(Err(e)) => {
            eprintln!("wafe: invalid {}: {e}", wafe_ipc::FAULTS_ENV_VAR);
            std::process::exit(2);
        }
        None => {}
    }
    let mut fe = match Frontend::spawn(config) {
        Ok(fe) => fe,
        Err(e) => {
            eprintln!("wafe: cannot start application program \"{program}\": {e}");
            std::process::exit(2);
        }
    };
    if split.has_frontend("telemetry") {
        fe.engine.session.telemetry.set_enabled(true);
    }
    fe.engine.session.apply_toolkit_args(split);
    load_app_defaults(&mut fe.engine.session);
    // InitCom: "the resource InitCom is provided, which can be specified
    // in a resource file or by using the -xrm command line option".
    let init_com = fe
        .engine
        .session
        .eval("gV topLevel initCom")
        .unwrap_or_default();
    if !init_com.is_empty() {
        let _ = fe.send_to_app(&init_com);
    }
    loop {
        match fe.step(Duration::from_millis(20)) {
            Ok(true) => {
                for line in std::mem::take(&mut fe.printed) {
                    println!("{line}");
                }
            }
            Ok(false) => break,
            Err(e) => {
                eprintln!("wafe: frontend loop error: {e}");
                break;
            }
        }
    }
    for line in std::mem::take(&mut fe.printed) {
        println!("{line}");
    }
}

/// Loads the application-defaults resource file named by
/// `WAFE_APP_DEFAULTS`, if set — the paper's "resource description file,
/// which is evaluated at startup time of the application".
fn load_app_defaults(session: &mut WafeSession) {
    if let Ok(path) = std::env::var("WAFE_APP_DEFAULTS") {
        if let Ok(text) = std::fs::read_to_string(&path) {
            session.app.borrow_mut().resource_db.merge_text(&text);
        } else {
            eprintln!("wafe: cannot read app-defaults file {path}");
        }
    }
}

fn report_warnings(session: &WafeSession) {
    for w in session.app.borrow_mut().take_warnings() {
        eprintln!("wafe: {w}");
    }
}
