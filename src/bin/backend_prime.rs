//! The prime-factors application program — a line-for-line port of the
//! Perl program printed in the paper, speaking the identical protocol.
//!
//! Phase 2 prints the widget tree as `%`-prefixed lines; phase 3 loops
//! reading numbers from stdin (sent by the frontend's `exec` action on
//! `<Key>Return`) and answers with `%sV` lines.

use std::io::{BufRead, Write};

fn main() {
    // $|=1; set output unbuffered — we flush after every write.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    // Build widget tree (phase 2) — the same lines the Perl program prints.
    let tree = "%form top topLevel\n\
                %asciiText input top editType edit width 200\n\
                %action input override {<Key>Return: exec(echo [gV input string])}\n\
                %label result top label {} width 200 fromVert input\n\
                %command quit top fromVert result callback quit\n\
                %label info top fromVert result fromHoriz quit label {} borderWidth 0 width 150\n\
                %realize\n";
    out.write_all(tree.as_bytes()).expect("write tree");
    out.flush().expect("flush");

    // Read loop (phase 3).
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if let Ok(mut n) = trimmed.parse::<u64>() {
            let _ = writeln!(out, "%sV info label thinking...");
            let _ = out.flush();
            let start = std::time::Instant::now();
            let mut result: Vec<u64> = Vec::new();
            let mut d = 2u64;
            while d <= n {
                while n % d == 0 {
                    result.insert(0, d);
                    n /= d;
                }
                d += 1;
            }
            let joined = result
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join("*");
            let secs = start.elapsed().as_secs();
            let _ = writeln!(out, "%sV result label {{{joined}}}");
            let _ = writeln!(out, "%sV info label {{{secs} seconds}}");
            let _ = out.flush();
        } else {
            let _ = writeln!(out, "%sV info label {{(invalid input)}}");
            let _ = out.flush();
        }
    }
}
