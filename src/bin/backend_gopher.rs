//! The application half of `xwafegopher` — "a simple gopher frontend".
//!
//! There is no 1993 gopher server to dial, so the menu hierarchy is
//! canned; everything else is the real thing: the program builds its UI
//! by printing `%` lines, then serves navigation requests from its read
//! loop, exactly like the distribution's demo talked to
//! gopher.wu-wien.ac.at.

use std::io::{BufRead, Write};

/// One gopher item: type tag, display string, and either a submenu index
/// or a document body.
enum Item {
    Menu(&'static str, usize),
    Doc(&'static str, &'static str),
}

struct Menu {
    title: &'static str,
    items: &'static [Item],
}

const MENUS: &[Menu] = &[
    Menu {
        title: "gopher.wu-wien.ac.at",
        items: &[
            Item::Menu("About this server", 1),
            Item::Menu("Software archive", 2),
            Item::Doc(
                "Welcome",
                "Welcome to the Vienna University of\\nEconomics gopher server.",
            ),
        ],
    },
    Menu {
        title: "About this server",
        items: &[Item::Doc(
            "README",
            "This gopher space is maintained by the\\nMIS department.",
        )],
    },
    Menu {
        title: "Software archive",
        items: &[
            Item::Doc(
                "wafe-0.93",
                "Wafe 0.93 - an X toolkit based frontend.\\nSee pub/src/X11/wafe.",
            ),
            Item::Doc("dvi2xx", "TeX dvi converter for HP LaserJets."),
        ],
    },
];

fn send_menu(out: &mut impl Write, menu_ix: usize) {
    let menu = &MENUS[menu_ix];
    let labels: Vec<String> = menu
        .items
        .iter()
        .map(|i| match i {
            Item::Menu(name, _) => format!("{name}/"),
            Item::Doc(name, _) => name.to_string(),
        })
        .collect();
    let _ = writeln!(out, "%sV title label {{{}}}", menu.title);
    let _ = writeln!(out, "%listChange items {{{}}}", labels.join(","));
    let _ = writeln!(out, "%sV doc string {{}}");
    let _ = out.flush();
}

fn main() {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // Phase 2: the UI.
    let tree = "%form top topLevel\n\
                %label title top label {} width 260 borderWidth 0\n\
                %viewport vp top fromVert title width 260 height 120\n\
                %list items vp list {loading}\n\
                %asciiText doc top fromVert vp editType read width 260 height 80\n\
                %command back top fromVert doc label Back\n\
                %command quitb top fromVert doc fromHoriz back label Quit callback quit\n\
                %sV items callback {echo select %i}\n\
                %sV back callback {echo back}\n\
                %realize\n";
    let _ = out.write_all(tree.as_bytes());
    let _ = out.flush();

    let mut stack: Vec<usize> = vec![0];
    send_menu(&mut out, 0);

    // Phase 3: the read loop.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let current = *stack.last().unwrap();
        if let Some(sel) = line.strip_prefix("select ") {
            let ix: usize = match sel.trim().parse() {
                Ok(i) => i,
                Err(_) => continue,
            };
            match MENUS[current].items.get(ix) {
                Some(Item::Menu(_, target)) => {
                    stack.push(*target);
                    send_menu(&mut out, *target);
                }
                Some(Item::Doc(name, body)) => {
                    let _ = writeln!(out, "%sV title label {{{name}}}");
                    let _ = writeln!(out, "%sV doc string \"{body}\"");
                    let _ = out.flush();
                }
                None => {}
            }
        } else if line.trim() == "back" {
            if stack.len() > 1 {
                stack.pop();
            }
            send_menu(&mut out, *stack.last().unwrap());
        }
    }
}
