//! waferd — the Wafe multi-session server daemon.
//!
//! Hosts many concurrent frontend-protocol sessions (one headless
//! `WafeSession` per connection) over TCP and/or Unix sockets. The wire
//! protocol is exactly frontend mode's: `%`-prefixed lines are Wafe
//! commands, other lines pass through (logged with a `[slot:gen]` tag),
//! and the session's application-bound messages (echo output, GUI
//! events) come back line by line. See `docs/serve.md`.
//!
//! ```text
//! waferd [--listen ADDR] [--unix PATH] [--max-sessions N]
//!        [--queue-depth N] [--workers N] [--idle-evict MS]
//!        [--drain-timeout MS] [--telemetry] [--metrics ADDR]
//!        [--park-dir DIR] [--io poll|threads] [--accept-backoff MS]
//!        [--motif] [--quiet]
//! ```
//!
//! `--metrics ADDR` opens a second TCP listener that answers every
//! connection with one Prometheus text-exposition page of the
//! server-wide counters and closes — scrape-friendly without an HTTP
//! stack. The server runs until a client issues `%serve drain`.
//!
//! `--park-dir DIR` persists parked session snapshots (idle eviction,
//! `%session park`) to DIR and makes the graceful drain park every
//! live session, so `%serve drain` + restart + `%session restore
//! <slot:gen>` is a rolling restart that loses no session state. See
//! `docs/checkpoint.md`.
//!
//! `--display-http ADDR` opens the browser display bridge: `GET /`
//! serves a static `<canvas>` client, `GET /stream` opens a loopback
//! session, sends `%display attach` and relays its `!display frame
//! <hex>` notices as a streamed text body, and `POST /event` /
//! `POST /resync` write `%display event <hex>` / `%display frame`
//! back into that session. Requires `--listen`. See `docs/display.md`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use wafe_core::Flavor;
use wafe_serve::{IoModel, Registry, Server, ServerConfig};

const USAGE: &str = "usage: waferd [--listen ADDR] [--unix PATH] [--max-sessions N] \
[--queue-depth N] [--workers N] [--idle-evict MS] [--drain-timeout MS] \
[--telemetry] [--metrics ADDR] [--display-http ADDR] [--park-dir DIR] \
[--io poll|threads] [--accept-backoff MS] [--motif] [--quiet]";

fn value(args: &mut dyn Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("waferd: {flag} needs a value\n{USAGE}");
        exit(2);
    })
}

fn numeric(args: &mut dyn Iterator<Item = String>, flag: &str) -> u64 {
    let v = value(args, flag);
    v.parse().unwrap_or_else(|_| {
        eprintln!("waferd: {flag} expects a non-negative integer, got \"{v}\"");
        exit(2);
    })
}

fn main() {
    let mut config = ServerConfig {
        log_passthrough: true,
        ..ServerConfig::default()
    };
    let mut metrics_addr: Option<String> = None;
    let mut display_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => config.tcp = Some(value(&mut args, "--listen")),
            "--unix" => config.unix = Some(PathBuf::from(value(&mut args, "--unix"))),
            "--max-sessions" => {
                config.limits.max_sessions = numeric(&mut args, "--max-sessions") as usize
            }
            "--queue-depth" => {
                config.limits.queue_depth = numeric(&mut args, "--queue-depth") as usize
            }
            "--workers" => config.workers = (numeric(&mut args, "--workers") as usize).max(1),
            "--idle-evict" => config.limits.idle_evict_ms = numeric(&mut args, "--idle-evict"),
            "--drain-timeout" => {
                config.limits.drain_timeout_ms = numeric(&mut args, "--drain-timeout")
            }
            "--telemetry" => config.telemetry = true,
            "--metrics" => metrics_addr = Some(value(&mut args, "--metrics")),
            "--display-http" => display_addr = Some(value(&mut args, "--display-http")),
            "--park-dir" => config.park_dir = Some(PathBuf::from(value(&mut args, "--park-dir"))),
            "--io" => {
                config.io = match value(&mut args, "--io").as_str() {
                    "poll" => IoModel::Poll,
                    "threads" => IoModel::Threads,
                    other => {
                        eprintln!("waferd: --io expects poll or threads, got \"{other}\"");
                        exit(2);
                    }
                }
            }
            "--accept-backoff" => {
                config.accept_backoff_ms = numeric(&mut args, "--accept-backoff").max(1)
            }
            "--motif" => config.flavor = Flavor::Both,
            "--quiet" => config.log_passthrough = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("waferd: unknown option \"{other}\"\n{USAGE}");
                exit(2);
            }
        }
    }
    // Deterministic fault injection (chaos drills): validated here so
    // a typo in the spec is a loud startup error; the schedulers then
    // re-read the validated variable.
    if let Some(Err(e)) = wafe_ipc::FaultPlan::from_env() {
        eprintln!("waferd: invalid {}: {e}", wafe_ipc::FAULTS_ENV_VAR);
        exit(2);
    }
    if display_addr.is_some() && config.tcp.is_none() {
        eprintln!("waferd: --display-http needs --listen (the bridge dials the session port)");
        exit(2);
    }
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("waferd: cannot start: {e}");
            exit(2);
        }
    };
    if let Some(addr) = server.local_addr() {
        // Scripts parse this line to learn the picked port.
        println!("waferd listening tcp {addr}");
    }
    if let Some(addr) = metrics_addr {
        match start_metrics_listener(&addr, server.registry().clone()) {
            Ok(local) => println!("waferd metrics tcp {local}"),
            Err(e) => {
                eprintln!("waferd: cannot open metrics listener on {addr}: {e}");
                exit(2);
            }
        }
    }
    if let Some(addr) = display_addr {
        let session_addr = server.local_addr().expect("checked above: --listen is set");
        match start_display_listener(&addr, session_addr) {
            Ok(local) => println!("waferd display http {local}"),
            Err(e) => {
                eprintln!("waferd: cannot open display listener on {addr}: {e}");
                exit(2);
            }
        }
    }
    server.wait();
    println!("waferd drained");
}

/// The ops scrape endpoint: a detached thread that answers every
/// connection with one `HTTP/1.0` page of Prometheus text exposition
/// (the registry's server-wide counters) and closes. Write-and-close is
/// deliberately request-agnostic: `curl`, `nc` and a real scraper all
/// get the same bytes, with no HTTP parser to maintain. The thread dies
/// with the process when the drain finishes.
fn start_metrics_listener(
    addr: &str,
    registry: std::sync::Arc<Registry>,
) -> std::io::Result<std::net::SocketAddr> {
    let listener = std::net::TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let body = wafe_trace::export::prometheus_text(&registry.metrics_pairs());
            let _ = stream.write_all(
                format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
        }
    });
    Ok(local)
}

/// The canvas client page, compiled into the binary so the bridge has
/// no runtime file dependency.
const DISPLAY_HTML: &str = include_str!("waferd_display.html");

/// The write halves of the bridge's open display sessions, keyed by
/// the token handed to each `/stream` client — `POST /event` looks its
/// session up here.
type DisplayPeers = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// The browser display bridge: a minimal HTTP/1.0 listener translating
/// between the web and the `%`-line protocol. Each `/stream` client
/// gets its own loopback session on the main listener — the bridge
/// adds no session semantics of its own, so a browser tab behaves
/// exactly like any other connected client.
fn start_display_listener(addr: &str, session_addr: SocketAddr) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let peers: DisplayPeers = Arc::new(Mutex::new(HashMap::new()));
    let next_token = Arc::new(AtomicU64::new(1));
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let peers = peers.clone();
            let next_token = next_token.clone();
            std::thread::spawn(move || {
                let _ = serve_display_request(stream, session_addr, &peers, &next_token);
            });
        }
    });
    Ok(local)
}

fn http_respond(
    stream: &mut TcpStream,
    status: &str,
    ctype: &str,
    body: &str,
) -> std::io::Result<()> {
    stream.write_all(
        format!(
            "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn serve_display_request(
    mut stream: TcpStream,
    session_addr: SocketAddr,
    peers: &DisplayPeers,
    next_token: &AtomicU64,
) -> std::io::Result<()> {
    // Read the request head (capped — anything bigger is not ours).
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
        if stream.read(&mut byte)? == 0 {
            return Ok(());
        }
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let request = lines.next().unwrap_or("");
    let mut parts = request.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    match (method, path) {
        ("GET", "/") => http_respond(&mut stream, "200 OK", "text/html", DISPLAY_HTML),
        ("GET", "/stream") => serve_display_stream(stream, session_addr, peers, next_token),
        ("POST", "/event") | ("POST", "/resync") => {
            let mut body = vec![0u8; content_length.min(1 << 20)];
            stream.read_exact(&mut body)?;
            let body = String::from_utf8_lossy(&body);
            // Body: "<token> <payload>"; the payload is the event hex
            // for /event and empty for /resync.
            let (token, payload) = body.trim().split_once(' ').unwrap_or((body.trim(), ""));
            let Some(token) = token.parse::<u64>().ok() else {
                return http_respond(&mut stream, "400 Bad Request", "text/plain", "bad token\n");
            };
            let line = if path == "/event" {
                if payload.is_empty() || !payload.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return http_respond(
                        &mut stream,
                        "400 Bad Request",
                        "text/plain",
                        "bad event hex\n",
                    );
                }
                format!("%display event {payload}\n")
            } else {
                "%display frame\n".to_string()
            };
            let sess = peers
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .get(&token)
                .and_then(|s| s.try_clone().ok());
            match sess {
                Some(mut sess) => {
                    sess.write_all(line.as_bytes())?;
                    http_respond(&mut stream, "200 OK", "text/plain", "ok\n")
                }
                None => http_respond(
                    &mut stream,
                    "404 Not Found",
                    "text/plain",
                    "no such stream\n",
                ),
            }
        }
        _ => http_respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// One browser tab's frame stream: dial the session port, attach the
/// display, then relay every `!`-notice line (frames included) as a
/// streamed response body. The first body line is `token <n>` — the
/// handle `POST /event` uses to reach this same session. When either
/// side hangs up the other is closed too, ending the session.
fn serve_display_stream(
    mut stream: TcpStream,
    session_addr: SocketAddr,
    peers: &DisplayPeers,
    next_token: &AtomicU64,
) -> std::io::Result<()> {
    let mut sess = TcpStream::connect(session_addr)?;
    sess.write_all(b"%display attach\n")?;
    let token = next_token.fetch_add(1, Ordering::Relaxed);
    peers
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(token, sess.try_clone()?);
    let result = (|| {
        stream.write_all(
            b"HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\nCache-Control: no-store\r\n\r\n",
        )?;
        stream.write_all(format!("token {token}\n").as_bytes())?;
        for line in BufReader::new(sess.try_clone()?).lines() {
            let line = line?;
            if line.starts_with('!') {
                stream.write_all(line.as_bytes())?;
                stream.write_all(b"\n")?;
            }
        }
        Ok(())
    })();
    peers
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&token);
    let _ = sess.shutdown(std::net::Shutdown::Both);
    result
}
