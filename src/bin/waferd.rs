//! waferd — the Wafe multi-session server daemon.
//!
//! Hosts many concurrent frontend-protocol sessions (one headless
//! `WafeSession` per connection) over TCP and/or Unix sockets. The wire
//! protocol is exactly frontend mode's: `%`-prefixed lines are Wafe
//! commands, other lines pass through (logged with a `[slot:gen]` tag),
//! and the session's application-bound messages (echo output, GUI
//! events) come back line by line. See `docs/serve.md`.
//!
//! ```text
//! waferd [--listen ADDR] [--unix PATH] [--max-sessions N]
//!        [--queue-depth N] [--workers N] [--idle-evict MS]
//!        [--drain-timeout MS] [--telemetry] [--metrics ADDR]
//!        [--park-dir DIR] [--io poll|threads] [--accept-backoff MS]
//!        [--motif] [--quiet]
//! ```
//!
//! `--metrics ADDR` opens a second TCP listener that answers every
//! connection with one Prometheus text-exposition page of the
//! server-wide counters and closes — scrape-friendly without an HTTP
//! stack. The server runs until a client issues `%serve drain`.
//!
//! `--park-dir DIR` persists parked session snapshots (idle eviction,
//! `%session park`) to DIR and makes the graceful drain park every
//! live session, so `%serve drain` + restart + `%session restore
//! <slot:gen>` is a rolling restart that loses no session state. See
//! `docs/checkpoint.md`.

use std::io::Write;
use std::path::PathBuf;
use std::process::exit;

use wafe_core::Flavor;
use wafe_serve::{IoModel, Registry, Server, ServerConfig};

const USAGE: &str = "usage: waferd [--listen ADDR] [--unix PATH] [--max-sessions N] \
[--queue-depth N] [--workers N] [--idle-evict MS] [--drain-timeout MS] \
[--telemetry] [--metrics ADDR] [--park-dir DIR] [--io poll|threads] \
[--accept-backoff MS] [--motif] [--quiet]";

fn value(args: &mut dyn Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("waferd: {flag} needs a value\n{USAGE}");
        exit(2);
    })
}

fn numeric(args: &mut dyn Iterator<Item = String>, flag: &str) -> u64 {
    let v = value(args, flag);
    v.parse().unwrap_or_else(|_| {
        eprintln!("waferd: {flag} expects a non-negative integer, got \"{v}\"");
        exit(2);
    })
}

fn main() {
    let mut config = ServerConfig {
        log_passthrough: true,
        ..ServerConfig::default()
    };
    let mut metrics_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => config.tcp = Some(value(&mut args, "--listen")),
            "--unix" => config.unix = Some(PathBuf::from(value(&mut args, "--unix"))),
            "--max-sessions" => {
                config.limits.max_sessions = numeric(&mut args, "--max-sessions") as usize
            }
            "--queue-depth" => {
                config.limits.queue_depth = numeric(&mut args, "--queue-depth") as usize
            }
            "--workers" => config.workers = (numeric(&mut args, "--workers") as usize).max(1),
            "--idle-evict" => config.limits.idle_evict_ms = numeric(&mut args, "--idle-evict"),
            "--drain-timeout" => {
                config.limits.drain_timeout_ms = numeric(&mut args, "--drain-timeout")
            }
            "--telemetry" => config.telemetry = true,
            "--metrics" => metrics_addr = Some(value(&mut args, "--metrics")),
            "--park-dir" => config.park_dir = Some(PathBuf::from(value(&mut args, "--park-dir"))),
            "--io" => {
                config.io = match value(&mut args, "--io").as_str() {
                    "poll" => IoModel::Poll,
                    "threads" => IoModel::Threads,
                    other => {
                        eprintln!("waferd: --io expects poll or threads, got \"{other}\"");
                        exit(2);
                    }
                }
            }
            "--accept-backoff" => {
                config.accept_backoff_ms = numeric(&mut args, "--accept-backoff").max(1)
            }
            "--motif" => config.flavor = Flavor::Both,
            "--quiet" => config.log_passthrough = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("waferd: unknown option \"{other}\"\n{USAGE}");
                exit(2);
            }
        }
    }
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("waferd: cannot start: {e}");
            exit(2);
        }
    };
    if let Some(addr) = server.local_addr() {
        // Scripts parse this line to learn the picked port.
        println!("waferd listening tcp {addr}");
    }
    if let Some(addr) = metrics_addr {
        match start_metrics_listener(&addr, server.registry().clone()) {
            Ok(local) => println!("waferd metrics tcp {local}"),
            Err(e) => {
                eprintln!("waferd: cannot open metrics listener on {addr}: {e}");
                exit(2);
            }
        }
    }
    server.wait();
    println!("waferd drained");
}

/// The ops scrape endpoint: a detached thread that answers every
/// connection with one `HTTP/1.0` page of Prometheus text exposition
/// (the registry's server-wide counters) and closes. Write-and-close is
/// deliberately request-agnostic: `curl`, `nc` and a real scraper all
/// get the same bytes, with no HTTP parser to maintain. The thread dies
/// with the process when the drain finishes.
fn start_metrics_listener(
    addr: &str,
    registry: std::sync::Arc<Registry>,
) -> std::io::Result<std::net::SocketAddr> {
    let listener = std::net::TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let body = wafe_trace::export::prometheus_text(&registry.metrics_pairs());
            let _ = stream.write_all(
                format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
        }
    });
    Ok(local)
}
