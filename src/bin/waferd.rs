//! waferd — the Wafe multi-session server daemon.
//!
//! Hosts many concurrent frontend-protocol sessions (one headless
//! `WafeSession` per connection) over TCP and/or Unix sockets. The wire
//! protocol is exactly frontend mode's: `%`-prefixed lines are Wafe
//! commands, other lines pass through (logged with a `[slot:gen]` tag),
//! and the session's application-bound messages (echo output, GUI
//! events) come back line by line. See `docs/serve.md`.
//!
//! ```text
//! waferd [--listen ADDR] [--unix PATH] [--max-sessions N]
//!        [--queue-depth N] [--workers N] [--idle-evict MS]
//!        [--drain-timeout MS] [--telemetry] [--motif] [--quiet]
//! ```
//!
//! The server runs until a client issues `%serve drain`.

use std::path::PathBuf;
use std::process::exit;

use wafe_core::Flavor;
use wafe_serve::{Server, ServerConfig};

const USAGE: &str = "usage: waferd [--listen ADDR] [--unix PATH] [--max-sessions N] \
[--queue-depth N] [--workers N] [--idle-evict MS] [--drain-timeout MS] \
[--telemetry] [--motif] [--quiet]";

fn value(args: &mut dyn Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("waferd: {flag} needs a value\n{USAGE}");
        exit(2);
    })
}

fn numeric(args: &mut dyn Iterator<Item = String>, flag: &str) -> u64 {
    let v = value(args, flag);
    v.parse().unwrap_or_else(|_| {
        eprintln!("waferd: {flag} expects a non-negative integer, got \"{v}\"");
        exit(2);
    })
}

fn main() {
    let mut config = ServerConfig {
        log_passthrough: true,
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => config.tcp = Some(value(&mut args, "--listen")),
            "--unix" => config.unix = Some(PathBuf::from(value(&mut args, "--unix"))),
            "--max-sessions" => {
                config.limits.max_sessions = numeric(&mut args, "--max-sessions") as usize
            }
            "--queue-depth" => {
                config.limits.queue_depth = numeric(&mut args, "--queue-depth") as usize
            }
            "--workers" => config.workers = (numeric(&mut args, "--workers") as usize).max(1),
            "--idle-evict" => config.limits.idle_evict_ms = numeric(&mut args, "--idle-evict"),
            "--drain-timeout" => {
                config.limits.drain_timeout_ms = numeric(&mut args, "--drain-timeout")
            }
            "--telemetry" => config.telemetry = true,
            "--motif" => config.flavor = Flavor::Both,
            "--quiet" => config.log_passthrough = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("waferd: unknown option \"{other}\"\n{USAGE}");
                exit(2);
            }
        }
    }
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("waferd: cannot start: {e}");
            exit(2);
        }
    };
    if let Some(addr) = server.local_addr() {
        // Scripts parse this line to learn the picked port.
        println!("waferd listening tcp {addr}");
    }
    server.wait();
    println!("waferd drained");
}
