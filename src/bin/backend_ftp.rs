//! The application half of `xwafeftp` — the distribution's FTP frontend.
//!
//! The "server" is canned (no 1993 FTP site answers anymore), but the
//! mechanism is the full Figure 4 architecture: the file listing flows
//! over the command channel, and file *retrieval* flows over the
//! mass-transfer data channel — the backend announces the byte count
//! with `setCommunicationVariable`, then streams the payload into the
//! inherited channel fd, exactly as the paper describes for bulk data.

use std::io::{BufRead, Write};
use std::os::unix::io::FromRawFd;

/// The fd at which the frontend's mass channel is inherited
/// (`wafe_ipc::frontend::MASS_CHANNEL_CHILD_FD`).
const MASS_FD: i32 = 5;

fn files() -> Vec<(&'static str, String)> {
    vec![
        (
            "README",
            "Wafe - a widget frontend.\nSee the USENIX 1993 paper.\n".into(),
        ),
        ("wafe-0.93.tar", "tar-archive-bytes ".repeat(500)),
        (
            "CHANGES",
            "0.93: Motif version under development.\n0.92: first announce.\n".into(),
        ),
    ]
}

fn main() {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let listing: Vec<String> = files()
        .iter()
        .map(|(name, body)| format!("{name} ({} bytes)", body.len()))
        .collect();
    let tree = format!(
        "%form top topLevel\n\
         %label site top label {{ftp.wu-wien.ac.at:pub/src/X11/wafe}} borderWidth 0\n\
         %list remote top fromVert site list {{{}}}\n\
         %label status top fromVert remote label {{connected}} borderWidth 0 width 280\n\
         %asciiText content top fromVert status editType read width 280 height 100\n\
         %command quitb top fromVert content label Quit callback quit\n\
         %sV remote callback {{echo get %i}}\n\
         %realize\n",
        listing.join(",")
    );
    let _ = out.write_all(tree.as_bytes());
    let _ = out.flush();

    // SAFETY: fd 5 is the mass-transfer pipe the frontend dup2()ed into
    // this process before exec; we take ownership exactly once.
    let mut mass = unsafe { std::fs::File::from_raw_fd(MASS_FD) };

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if let Some(ix) = line.strip_prefix("get ") {
            let ix: usize = match ix.trim().parse() {
                Ok(i) => i,
                Err(_) => continue,
            };
            let files = files();
            let (name, body) = match files.get(ix) {
                Some(f) => f,
                None => continue,
            };
            let _ = writeln!(out, "%sV status label {{RETR {name} ...}}");
            // Announce the transfer, then stream the payload over the
            // data channel — "no parsing or interpretation is performed".
            let _ = writeln!(
                out,
                "%setCommunicationVariable C {} {{sV content string $C; sV status label {{{name}: transfer complete}}}}",
                body.len()
            );
            let _ = out.flush();
            let _ = mass.write_all(body.as_bytes());
            let _ = mass.flush();
        }
    }
}
