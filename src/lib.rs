//! Wafe — an X Toolkit based frontend for application programs in
//! various programming languages — reproduced in Rust.
//!
//! This is the umbrella crate: it re-exports every layer of the
//! reproduction and hosts the `wafe` binary, the runnable examples and
//! the cross-crate integration tests.
//!
//! # Layers
//!
//! | crate | role |
//! |---|---|
//! | [`tcl`] (`wafe-tcl`) | the embeddable Tcl command language |
//! | [`xproto`] (`wafe-xproto`) | the simulated X display server |
//! | [`xt`] (`wafe-xt`) | the X Toolkit Intrinsics |
//! | [`xaw`] (`wafe-xaw`) | the Athena widget set (Xaw3d flavour) |
//! | [`motif`] (`wafe-motif`) | the OSF/Motif subset and XmString |
//! | [`core`] (`wafe-core`) | Wafe itself: the spec-generated command layer |
//! | [`ipc`] (`wafe-ipc`) | frontend-mode process communication |
//!
//! # Quickstart
//!
//! ```
//! use wafe::core::{Flavor, WafeSession};
//!
//! let mut session = WafeSession::new(Flavor::Athena);
//! session
//!     .eval("command hello topLevel label {Wafe new World} callback {echo Goodbye; quit}")
//!     .unwrap();
//! session.eval("realize").unwrap();
//! assert!(session.app.borrow().lookup("hello").is_some());
//! ```

pub use wafe_core as core;
pub use wafe_ipc as ipc;
pub use wafe_motif as motif;
pub use wafe_tcl as tcl;
pub use wafe_xaw as xaw;
pub use wafe_xproto as xproto;
pub use wafe_xt as xt;

/// Clicks the middle of a named widget's window — the synthetic-user
/// helper shared by examples, tests and benchmarks.
pub fn click_widget(session: &mut core::WafeSession, name: &str) -> bool {
    let ok = {
        let mut app = session.app.borrow_mut();
        match app.lookup(name) {
            Some(w) => match app.widget(w).window {
                Some(win) => {
                    let abs = app.displays[0].abs_rect(win);
                    app.displays[0].inject_click(
                        abs.x + (abs.w as i32 / 2).max(1),
                        abs.y + (abs.h as i32 / 2).max(1),
                        1,
                    );
                    true
                }
                None => false,
            },
            None => false,
        }
    };
    if ok {
        session.pump();
    }
    ok
}

/// Types text with the keyboard focused on a named widget.
pub fn type_into_widget(session: &mut core::WafeSession, name: &str, text: &str) -> bool {
    let ok = {
        let mut app = session.app.borrow_mut();
        match app.lookup(name) {
            Some(w) => match app.widget(w).window {
                Some(win) => {
                    app.displays[0].set_input_focus(Some(win));
                    app.displays[0].inject_key_text(text);
                    true
                }
                None => false,
            },
            None => false,
        }
    };
    if ok {
        session.pump();
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_handle_missing_widgets() {
        let mut s = core::WafeSession::new(core::Flavor::Athena);
        assert!(!click_widget(&mut s, "ghost"));
        assert!(!type_into_widget(&mut s, "ghost", "x"));
        // Created but unrealized widgets have no window yet.
        s.eval("label l topLevel").unwrap();
        assert!(!click_widget(&mut s, "l"));
        s.eval("realize").unwrap();
        assert!(click_widget(&mut s, "l"));
    }
}
