//! Input events posted back by a display client.
//!
//! Wire layout (big-endian, checksum trailer):
//!
//! ```text
//! "WEVT"  u32 version  u8 kind  fields…  u32 fnv1a-checksum
//! ```
//!
//! | kind | event  | fields                                   |
//! |------|--------|------------------------------------------|
//! | 1    | key    | `str name` `u8 modifier-mask`            |
//! | 2    | button | `u8 button` `u8 press` `i32 x` `i32 y`   |
//! | 3    | motion | `i32 x` `i32 y`                          |
//! | 4    | resize | `u32 width` `u32 height`                 |
//! | 5    | text   | `str text`                               |

use wafe_xproto::Modifiers;

use crate::frame::PROTOCOL_VERSION;
use crate::wire::{DecodeError, Reader, Writer};

/// Leading tag of an input-event message.
pub const EVENT_MAGIC: [u8; 4] = *b"WEVT";

/// Shift bit in the modifier mask.
pub const MOD_SHIFT: u8 = 1;
/// Control bit in the modifier mask.
pub const MOD_CONTROL: u8 = 2;
/// Meta bit in the modifier mask.
pub const MOD_META: u8 = 4;

/// Packs toolkit modifiers into the wire mask.
pub fn modifier_mask(m: Modifiers) -> u8 {
    ((m.shift as u8) * MOD_SHIFT) | ((m.control as u8) * MOD_CONTROL) | ((m.meta as u8) * MOD_META)
}

/// Unpacks the wire mask into toolkit modifiers.
pub fn modifiers_from_mask(mask: u8) -> Modifiers {
    Modifiers {
        shift: mask & MOD_SHIFT != 0,
        control: mask & MOD_CONTROL != 0,
        meta: mask & MOD_META != 0,
    }
}

/// One user input event from the remote client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputEvent {
    /// A named key press/release pair (e.g. `Return`).
    Key {
        /// Keysym name.
        name: String,
        /// Modifier mask (`MOD_*` bits).
        modifiers: u8,
    },
    /// A pointer button transition at root coordinates.
    Button {
        /// Button number (1–5).
        button: u8,
        /// True for press, false for release.
        press: bool,
        /// Root-relative x.
        x: i32,
        /// Root-relative y.
        y: i32,
    },
    /// Pointer motion to root coordinates.
    Motion {
        /// Root-relative x.
        x: i32,
        /// Root-relative y.
        y: i32,
    },
    /// The client's viewport changed size.
    Resize {
        /// New width.
        width: u32,
        /// New height.
        height: u32,
    },
    /// Literal text typed (each char becomes its key sequence).
    Text {
        /// The typed text.
        text: String,
    },
}

impl InputEvent {
    /// Serializes the event.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&EVENT_MAGIC);
        w.put_u32(PROTOCOL_VERSION);
        match self {
            InputEvent::Key { name, modifiers } => {
                w.put_u8(1);
                w.put_str(name);
                w.put_u8(*modifiers);
            }
            InputEvent::Button {
                button,
                press,
                x,
                y,
            } => {
                w.put_u8(2);
                w.put_u8(*button);
                w.put_u8(*press as u8);
                w.put_i32(*x);
                w.put_i32(*y);
            }
            InputEvent::Motion { x, y } => {
                w.put_u8(3);
                w.put_i32(*x);
                w.put_i32(*y);
            }
            InputEvent::Resize { width, height } => {
                w.put_u8(4);
                w.put_u32(*width);
                w.put_u32(*height);
            }
            InputEvent::Text { text } => {
                w.put_u8(5);
                w.put_str(text);
            }
        }
        w.finish()
    }

    /// Decodes and validates an event; all corruption fails loudly.
    pub fn decode(bytes: &[u8]) -> Result<InputEvent, DecodeError> {
        let mut r = Reader::checked(bytes)?;
        r.expect_magic(&EVENT_MAGIC)?;
        let version = r.u32()?;
        if version != PROTOCOL_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let ev = match r.u8()? {
            1 => {
                let name = r.str()?;
                let modifiers = r.u8()?;
                if modifiers & !(MOD_SHIFT | MOD_CONTROL | MOD_META) != 0 {
                    return Err(DecodeError::BadValue("modifier mask"));
                }
                InputEvent::Key { name, modifiers }
            }
            2 => {
                let button = r.u8()?;
                let press = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::BadValue("press flag")),
                };
                if !(1..=5).contains(&button) {
                    return Err(DecodeError::BadValue("button number"));
                }
                InputEvent::Button {
                    button,
                    press,
                    x: r.i32()?,
                    y: r.i32()?,
                }
            }
            3 => InputEvent::Motion {
                x: r.i32()?,
                y: r.i32()?,
            },
            4 => InputEvent::Resize {
                width: r.u32()?,
                height: r.u32()?,
            },
            5 => InputEvent::Text { text: r.str()? },
            _ => return Err(DecodeError::BadValue("event kind")),
        };
        r.done()?;
        Ok(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<InputEvent> {
        vec![
            InputEvent::Key {
                name: "Return".into(),
                modifiers: MOD_SHIFT | MOD_META,
            },
            InputEvent::Button {
                button: 1,
                press: true,
                x: 120,
                y: -3,
            },
            InputEvent::Motion { x: 0, y: 767 },
            InputEvent::Resize {
                width: 800,
                height: 600,
            },
            InputEvent::Text {
                text: "wafe!".into(),
            },
        ]
    }

    #[test]
    fn encode_decode_is_identity() {
        for ev in samples() {
            let bytes = ev.encode();
            let back = InputEvent::decode(&bytes).unwrap();
            assert_eq!(back, ev);
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn corrupt_events_fail_loudly() {
        for ev in samples() {
            let bytes = ev.encode();
            for n in 0..bytes.len() {
                assert!(
                    InputEvent::decode(&bytes[..n]).is_err(),
                    "truncation at {n} decoded"
                );
            }
        }
    }

    #[test]
    fn modifier_mask_round_trips() {
        for mask in 0..8u8 {
            assert_eq!(modifier_mask(modifiers_from_mask(mask)), mask);
        }
    }

    #[test]
    fn invalid_button_rejected() {
        let ev = InputEvent::Button {
            button: 9,
            press: true,
            x: 0,
            y: 0,
        };
        assert_eq!(
            InputEvent::decode(&ev.encode()).unwrap_err(),
            DecodeError::BadValue("button number")
        );
    }
}
