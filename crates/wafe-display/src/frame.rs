//! Display frames: damage rectangles plus their pixels.
//!
//! Wire layout (big-endian, checksum trailer — see [`crate::wire`]):
//!
//! ```text
//! "WFRM"  u32 version  u64 seq  u32 width  u32 height  u8 full
//! u32 nrects
//!   nrects × { i32 x  i32 y  u32 w  u32 h  u8 encoding  payload }
//! u32 fnv1a-checksum
//! ```
//!
//! `encoding` 0 carries `w*h` raw `u32` pixels; encoding 1 carries
//! `u32 nruns` then `nruns × {u32 count, u32 pixel}` run-length pairs
//! whose counts must sum to exactly `w*h`. The builder picks whichever
//! is strictly smaller (raw wins ties), so the same framebuffer and
//! damage always produce the same bytes — the canonical-codec property
//! the test suite pins: `encode ∘ decode` is the identity in both
//! directions.

use wafe_xproto::damage::Damage;
use wafe_xproto::framebuffer::Framebuffer;
use wafe_xproto::geometry::Rect;
use wafe_xproto::Pixel;

use crate::wire::{DecodeError, Reader, Writer};

/// Leading tag of a frame message.
pub const FRAME_MAGIC: [u8; 4] = *b"WFRM";
/// The protocol version this codec speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// How a rectangle's pixels are carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PixelData {
    /// Row-major pixels, one `u32` each.
    Raw(Vec<Pixel>),
    /// Run-length pairs `(count, pixel)`; counts sum to the rect area.
    Rle(Vec<(u32, Pixel)>),
}

impl PixelData {
    /// Number of pixels carried.
    pub fn pixel_count(&self) -> u64 {
        match self {
            PixelData::Raw(p) => p.len() as u64,
            PixelData::Rle(runs) => runs.iter().map(|(n, _)| *n as u64).sum(),
        }
    }

    /// Expands to the flat row-major pixel vector.
    pub fn expand(&self) -> Vec<Pixel> {
        match self {
            PixelData::Raw(p) => p.clone(),
            PixelData::Rle(runs) => {
                let mut out = Vec::with_capacity(self.pixel_count() as usize);
                for (n, p) in runs {
                    out.extend(std::iter::repeat_n(*p, *n as usize));
                }
                out
            }
        }
    }

    /// Encoded payload size in bytes (excluding the rect header).
    fn encoded_len(&self) -> usize {
        match self {
            PixelData::Raw(p) => 4 * p.len(),
            PixelData::Rle(runs) => 4 + 8 * runs.len(),
        }
    }
}

/// One damaged rectangle and its pixels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRect {
    /// Screen area this patch covers.
    pub rect: Rect,
    /// The pixels, raw or run-length encoded.
    pub data: PixelData,
}

/// One display frame: everything that changed since the previous one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Monotonic frame sequence number.
    pub seq: u64,
    /// Screen width.
    pub width: u32,
    /// Screen height.
    pub height: u32,
    /// True when this frame repaints the whole screen (resync).
    pub full: bool,
    /// Damage patches, in the tracker's canonical order.
    pub rects: Vec<FrameRect>,
}

/// Run-length encodes a pixel row sequence.
fn rle_runs(pixels: &[Pixel]) -> Vec<(u32, Pixel)> {
    let mut runs: Vec<(u32, Pixel)> = Vec::new();
    for &p in pixels {
        match runs.last_mut() {
            Some((n, q)) if *q == p => *n += 1,
            _ => runs.push((1, p)),
        }
    }
    runs
}

impl Frame {
    /// Builds the frame for `damage` from a composited framebuffer.
    /// Full damage becomes a single screen-sized rect; each rect's
    /// pixels are RLE-compressed iff that is strictly smaller than raw.
    pub fn build(fb: &Framebuffer, damage: &Damage, seq: u64) -> Frame {
        let screen = Rect::new(0, 0, fb.width, fb.height);
        let rects: Vec<Rect> = if damage.full {
            vec![screen]
        } else {
            damage
                .rects
                .iter()
                .filter_map(|r| r.intersect(&screen))
                .collect()
        };
        let rects = rects
            .into_iter()
            .map(|rect| {
                let raw = fb.rect_pixels(rect);
                let runs = rle_runs(&raw);
                let data = if 4 + 8 * runs.len() < 4 * raw.len() {
                    PixelData::Rle(runs)
                } else {
                    PixelData::Raw(raw)
                };
                FrameRect { rect, data }
            })
            .collect();
        Frame {
            seq,
            width: fb.width,
            height: fb.height,
            full: damage.full,
            rects,
        }
    }

    /// Serializes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&FRAME_MAGIC);
        w.put_u32(PROTOCOL_VERSION);
        w.put_u64(self.seq);
        w.put_u32(self.width);
        w.put_u32(self.height);
        w.put_u8(self.full as u8);
        w.put_u32(self.rects.len() as u32);
        for fr in &self.rects {
            w.put_i32(fr.rect.x);
            w.put_i32(fr.rect.y);
            w.put_u32(fr.rect.w);
            w.put_u32(fr.rect.h);
            match &fr.data {
                PixelData::Raw(pixels) => {
                    w.put_u8(0);
                    for p in pixels {
                        w.put_u32(*p);
                    }
                }
                PixelData::Rle(runs) => {
                    w.put_u8(1);
                    w.put_u32(runs.len() as u32);
                    for (n, p) in runs {
                        w.put_u32(*n);
                        w.put_u32(*p);
                    }
                }
            }
        }
        w.finish()
    }

    /// Encoded size in bytes, without serializing.
    pub fn encoded_len(&self) -> usize {
        // magic + version + seq + w + h + full + nrects + trailer.
        let mut n = 4 + 4 + 8 + 4 + 4 + 1 + 4 + 4;
        for fr in &self.rects {
            n += 16 + 1 + fr.data.encoded_len();
        }
        n
    }

    /// Decodes and validates a frame. Every corruption mode —
    /// truncation, bit flip, wrong magic or version, payload/area
    /// mismatch, trailing bytes — fails loudly.
    pub fn decode(bytes: &[u8]) -> Result<Frame, DecodeError> {
        let mut r = Reader::checked(bytes)?;
        r.expect_magic(&FRAME_MAGIC)?;
        let version = r.u32()?;
        if version != PROTOCOL_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let seq = r.u64()?;
        let width = r.u32()?;
        let height = r.u32()?;
        if width > 16_384 || height > 16_384 {
            return Err(DecodeError::BadValue("screen size"));
        }
        let full = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(DecodeError::BadValue("full flag")),
        };
        let nrects = r.u32()?;
        let mut rects = Vec::new();
        for _ in 0..nrects {
            let x = r.i32()?;
            let y = r.i32()?;
            let w = r.u32()?;
            let h = r.u32()?;
            let rect = Rect::new(x, y, w, h);
            let area = rect.area();
            if area == 0 || area > (16_384u64 * 16_384) {
                return Err(DecodeError::BadValue("rect area"));
            }
            let data = match r.u8()? {
                0 => {
                    let mut pixels = Vec::with_capacity(area as usize);
                    for _ in 0..area {
                        pixels.push(r.u32()?);
                    }
                    PixelData::Raw(pixels)
                }
                1 => {
                    let nruns = r.u32()?;
                    let mut runs = Vec::with_capacity(nruns as usize);
                    let mut covered: u64 = 0;
                    for _ in 0..nruns {
                        let n = r.u32()?;
                        let p = r.u32()?;
                        if n == 0 {
                            return Err(DecodeError::BadValue("zero-length run"));
                        }
                        covered += n as u64;
                        runs.push((n, p));
                    }
                    if covered != area {
                        return Err(DecodeError::BadValue("run coverage"));
                    }
                    PixelData::Rle(runs)
                }
                _ => return Err(DecodeError::BadValue("pixel encoding")),
            };
            rects.push(FrameRect { rect, data });
        }
        r.done()?;
        Ok(Frame {
            seq,
            width,
            height,
            full,
            rects,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Frame {
        Frame {
            seq: 9,
            width: 64,
            height: 48,
            full: false,
            rects: vec![
                FrameRect {
                    rect: Rect::new(2, 3, 2, 2),
                    data: PixelData::Raw(vec![1, 2, 3, 4]),
                },
                FrameRect {
                    rect: Rect::new(10, 10, 8, 4),
                    data: PixelData::Rle(vec![(30, 0xffffff), (2, 0)]),
                },
            ],
        }
    }

    #[test]
    fn encode_decode_is_identity() {
        let f = sample_frame();
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn build_picks_smaller_encoding() {
        let mut fb = Framebuffer::new(32, 32, 0xaaaaaa);
        // A flat region compresses; a noisy one stays raw.
        for i in 0..16 {
            fb.put(i, 1, (i as u32) * 7919);
        }
        let damage = Damage {
            full: false,
            rects: vec![Rect::new(0, 8, 16, 2), Rect::new(0, 0, 16, 2)],
        };
        let f = Frame::build(&fb, &damage, 1);
        assert!(matches!(f.rects[0].data, PixelData::Rle(_)), "flat → RLE");
        assert!(matches!(f.rects[1].data, PixelData::Raw(_)), "noisy → raw");
        for fr in &f.rects {
            assert_eq!(fr.data.pixel_count(), fr.rect.area());
            assert_eq!(fr.data.expand(), fb.rect_pixels(fr.rect));
        }
    }

    #[test]
    fn build_full_damage_is_one_screen_rect() {
        let fb = Framebuffer::new(16, 8, 0x123456);
        let f = Frame::build(&fb, &Damage::full(), 3);
        assert!(f.full);
        assert_eq!(f.rects.len(), 1);
        assert_eq!(f.rects[0].rect, Rect::new(0, 0, 16, 8));
        assert_eq!(f.rects[0].data.expand(), vec![0x123456; 16 * 8]);
    }

    #[test]
    fn corrupt_frames_fail_loudly() {
        let bytes = sample_frame().encode();
        assert_eq!(
            Frame::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            DecodeError::BadChecksum
        );
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(Frame::decode(&wrong_magic).is_err());
        // A frame claiming runs that do not cover its rect.
        let mut f = sample_frame();
        f.rects[1].data = PixelData::Rle(vec![(5, 0)]);
        assert_eq!(
            Frame::decode(&f.encode()).unwrap_err(),
            DecodeError::BadValue("run coverage")
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let mut f = sample_frame();
        f.rects.clear();
        let mut bytes = f.encode();
        // Patch the version field (offset 4) and re-checksum.
        bytes[7] = 2;
        let body_len = bytes.len() - 4;
        let sum = crate::wire::fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            DecodeError::BadVersion(2)
        );
    }
}
