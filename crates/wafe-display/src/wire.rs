//! Big-endian wire primitives with a checksum trailer.
//!
//! The display protocol is read by a JavaScript `DataView` whose
//! default is network byte order, so — unlike the snapshot codec, which
//! is little-endian and never leaves the process — everything here is
//! big-endian. Every message ends in an FNV-1a checksum over the
//! preceding bytes: a single flipped bit anywhere must fail loudly
//! rather than decode into a plausible frame.

use std::fmt;

/// Why a message failed to decode. Every failure is loud and terminal:
/// the receiver drops the message and asks for a full-frame resync.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The leading magic bytes are not the expected tag.
    BadMagic,
    /// A version this codec does not speak.
    BadVersion(u32),
    /// The checksum trailer does not match the payload.
    BadChecksum,
    /// Structurally valid but bytes remain after the end.
    TrailingBytes,
    /// A field holds a value that cannot be valid (named).
    BadValue(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated message"),
            DecodeError::BadMagic => write!(f, "bad magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::BadChecksum => write!(f, "checksum mismatch"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after message"),
            DecodeError::BadValue(what) => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// 32-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Append-only big-endian message writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends raw bytes (magic tags).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian i32.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends the FNV-1a checksum of everything written so far and
    /// returns the finished message.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_be_bytes());
        self.buf
    }
}

/// Checked big-endian message reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Verifies the checksum trailer and yields a reader over the
    /// payload (trailer excluded). This runs *first*: a corrupt message
    /// must never be partially interpreted.
    pub fn checked(buf: &'a [u8]) -> Result<Reader<'a>, DecodeError> {
        if buf.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        let (payload, trailer) = buf.split_at(buf.len() - 4);
        let want = u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        if fnv1a(payload) != want {
            return Err(DecodeError::BadChecksum);
        }
        Ok(Reader {
            buf: payload,
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consumes and checks a magic tag.
    pub fn expect_magic(&mut self, magic: &[u8; 4]) -> Result<(), DecodeError> {
        if self.take(4)? != magic {
            return Err(DecodeError::BadMagic);
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian i32.
    pub fn i32(&mut self) -> Result<i32, DecodeError> {
        let b = self.take(4)?;
        Ok(i32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::BadValue("utf-8 string"))
    }

    /// Asserts the payload was consumed exactly.
    pub fn done(&self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError::TrailingBytes);
        }
        Ok(())
    }
}

/// Lowercase hex encoding — how binary messages ride the `%`-line
/// channel without escaping concerns.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Inverse of [`to_hex`]; rejects odd lengths and non-hex digits.
pub fn from_hex(s: &str) -> Result<Vec<u8>, DecodeError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeError::BadValue("hex length"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let b = s.as_bytes();
    for pair in b.chunks(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or(DecodeError::BadValue("hex digit"))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or(DecodeError::BadValue("hex digit"))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = Writer::new();
        w.put_bytes(b"TEST");
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_i32(-42);
        w.put_u64(1 << 40);
        w.put_str("héllo");
        let bytes = w.finish();
        let mut r = Reader::checked(&bytes).unwrap();
        r.expect_magic(b"TEST").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.str().unwrap(), "héllo");
        r.done().unwrap();
    }

    #[test]
    fn any_flipped_bit_fails_checksum() {
        let mut w = Writer::new();
        w.put_bytes(b"TEST");
        w.put_u32(123);
        let bytes = w.finish();
        for i in 0..(bytes.len() - 4) * 8 {
            let mut bad = bytes.clone();
            bad[i / 8] ^= 1 << (i % 8);
            assert_eq!(
                Reader::checked(&bad).unwrap_err(),
                DecodeError::BadChecksum,
                "bit {i} flipped silently"
            );
        }
    }

    #[test]
    fn truncation_fails() {
        let mut w = Writer::new();
        w.put_u32(5);
        let bytes = w.finish();
        for n in 0..bytes.len() {
            assert!(
                Reader::checked(&bytes[..n]).is_err() || {
                    let mut r = Reader::checked(&bytes[..n]).unwrap();
                    r.u32().is_err() || r.done().is_err()
                }
            );
        }
    }

    #[test]
    fn hex_round_trip_and_rejection() {
        let data = vec![0u8, 1, 0x7f, 0x80, 0xff];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
        assert!(from_hex("abc").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "non-hex digit");
    }
}
