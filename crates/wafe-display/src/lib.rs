//! The wafe remote display protocol.
//!
//! The paper separates the GUI frontend from the application over a
//! textual channel; this crate extends that separation one hop further
//! and puts the *pixels* on the wire too, so a waferd session's
//! simulated X screen can be watched (and driven) by a remote client —
//! in practice the static HTML `<canvas>` page waferd serves.
//!
//! Three pieces:
//!
//! * [`Frame`] — damage rectangles plus raw/RLE pixel batches, built
//!   from the composited [`Framebuffer`](wafe_xproto::Framebuffer) and
//!   the [`Damage`](wafe_xproto::Damage) taken from the display's
//!   tracker. Canonical: the same screen and damage always encode to
//!   the same bytes, and `encode ∘ decode` is the identity.
//! * [`InputEvent`] — key/button/motion/resize/text events posted back
//!   by the client, decoded into the display's injection API.
//! * [`wire`] — the big-endian primitives both share: length-prefixed
//!   strings, an FNV-1a checksum trailer (any bit flip fails loudly),
//!   and the hex transport used to ride the `%`-line channel.
//!
//! Frames travel as `!display frame <hex>` notice lines; events arrive
//! as `%display event <hex>` commands. Versioning is strict: a reader
//! rejects any version it does not speak, and the sender answers a
//! rejected frame with a full-frame resync.

pub mod event;
pub mod frame;
pub mod wire;

pub use event::{
    modifier_mask, modifiers_from_mask, InputEvent, EVENT_MAGIC, MOD_CONTROL, MOD_META, MOD_SHIFT,
};
pub use frame::{Frame, FrameRect, PixelData, FRAME_MAGIC, PROTOCOL_VERSION};
pub use wire::{from_hex, to_hex, DecodeError};
