//! Property suite for the display protocol, pinning the three claims
//! the subsystem rests on:
//!
//! * the codec is canonical — `encode ∘ decode` is the identity in both
//!   directions, for arbitrary frames, built frames and input events;
//! * damage coalescing never loses a dirty pixel — every rect ever
//!   added to a [`DamageTracker`] is covered by what `take()` returns,
//!   however the tracker merged, capped or fell back to full;
//! * corruption fails loudly — every truncation and every single-bit
//!   flip of a valid message is rejected, never decoded best-effort.

use wafe_display::{Frame, FrameRect, InputEvent, PixelData};
use wafe_prop::{cases, Rng};
use wafe_xproto::framebuffer::Framebuffer;
use wafe_xproto::{DamageTracker, Rect};

fn arbitrary_rect(rng: &mut Rng, max_w: u32, max_h: u32) -> Rect {
    Rect::new(
        rng.range_i64(-20, 60) as i32,
        rng.range_i64(-20, 60) as i32,
        rng.range_u32(1, max_w),
        rng.range_u32(1, max_h),
    )
}

/// A structurally valid frame with arbitrary (not necessarily
/// canonical) encoding choices — decode must accept every valid
/// message, not just the ones the builder emits.
fn arbitrary_frame(rng: &mut Rng) -> Frame {
    let rects = rng.vec(0, 4, |rng| {
        let rect = arbitrary_rect(rng, 8, 8);
        let area = rect.area();
        let data = if rng.chance() {
            PixelData::Raw((0..area).map(|_| rng.next_u64() as u32).collect())
        } else {
            let mut runs = Vec::new();
            let mut left = area;
            while left > 0 {
                let n = rng.range(1, left as usize + 1) as u32;
                runs.push((n, rng.next_u64() as u32));
                left -= n as u64;
            }
            PixelData::Rle(runs)
        };
        FrameRect { rect, data }
    });
    Frame {
        seq: rng.next_u64(),
        width: rng.range_u32(1, 2048),
        height: rng.range_u32(1, 2048),
        full: rng.chance(),
        rects,
    }
}

fn arbitrary_event(rng: &mut Rng) -> InputEvent {
    match rng.below(5) {
        0 => InputEvent::Key {
            name: rng.ascii_string(12),
            modifiers: rng.below(8) as u8,
        },
        1 => InputEvent::Button {
            button: rng.range_u32(1, 5) as u8,
            press: rng.chance(),
            x: rng.range_i64(-100, 2000) as i32,
            y: rng.range_i64(-100, 2000) as i32,
        },
        2 => InputEvent::Motion {
            x: rng.range_i64(-100, 2000) as i32,
            y: rng.range_i64(-100, 2000) as i32,
        },
        3 => InputEvent::Resize {
            width: rng.range_u32(1, 4096),
            height: rng.range_u32(1, 4096),
        },
        _ => InputEvent::Text {
            text: rng.unicode_string(0, 8),
        },
    }
}

#[test]
fn frame_codec_round_trips_arbitrary_frames() {
    cases(300, |rng| {
        let f = arbitrary_frame(rng);
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.encode(), bytes, "re-encode reproduces the bytes");
    });
}

#[test]
fn built_frames_round_trip_and_carry_the_framebuffer_pixels() {
    cases(200, |rng| {
        let (w, h) = (rng.range_u32(4, 64), rng.range_u32(4, 64));
        let mut fb = Framebuffer::new(w, h, 0xbebebe);
        for _ in 0..rng.below(200) {
            fb.put(
                rng.below(w as u64) as i32,
                rng.below(h as u64) as i32,
                rng.next_u64() as u32,
            );
        }
        let mut tracker = DamageTracker::new(w, h);
        for _ in 0..rng.range(1, 6) {
            tracker.add(arbitrary_rect(rng, w, h));
        }
        let damage = tracker.take();
        let frame = Frame::build(&fb, &damage, rng.next_u64());
        let back = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(back, frame);
        for fr in &back.rects {
            assert_eq!(
                fr.data.expand(),
                fb.rect_pixels(fr.rect),
                "decoded pixels must match the framebuffer at {:?}",
                fr.rect
            );
        }
    });
}

#[test]
fn coalescing_never_loses_a_dirty_pixel() {
    cases(400, |rng| {
        let (w, h) = (rng.range_u32(16, 200), rng.range_u32(16, 200));
        let bounds = Rect::new(0, 0, w, h);
        let mut tracker = DamageTracker::new(w, h);
        let mut added = Vec::new();
        for _ in 0..rng.range(1, 40) {
            let r = arbitrary_rect(rng, w, h);
            tracker.add(r);
            if let Some(clipped) = r.intersect(&bounds) {
                added.push(clipped);
            }
        }
        let damage = tracker.take();
        for r in &added {
            assert!(
                damage.covers(r),
                "dirty rect {r:?} lost by coalescing into {damage:?}"
            );
        }
        assert!(tracker.take().is_empty(), "take drains the tracker");
    });
}

#[test]
fn event_codec_round_trips_arbitrary_events() {
    cases(400, |rng| {
        let ev = arbitrary_event(rng);
        let bytes = ev.encode();
        let back = InputEvent::decode(&bytes).unwrap();
        assert_eq!(back, ev);
        assert_eq!(back.encode(), bytes);
    });
}

#[test]
fn every_truncation_of_a_valid_message_fails_loudly() {
    cases(40, |rng| {
        let bytes = arbitrary_frame(rng).encode();
        for n in 0..bytes.len() {
            assert!(
                Frame::decode(&bytes[..n]).is_err(),
                "frame truncated to {n} of {} bytes decoded",
                bytes.len()
            );
        }
        let bytes = arbitrary_event(rng).encode();
        for n in 0..bytes.len() {
            assert!(
                InputEvent::decode(&bytes[..n]).is_err(),
                "event truncated to {n} of {} bytes decoded",
                bytes.len()
            );
        }
    });
}

#[test]
fn every_single_bit_flip_fails_loudly() {
    cases(15, |rng| {
        let bytes = arbitrary_frame(rng).encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                assert!(
                    Frame::decode(&flipped).is_err(),
                    "bit {bit} of byte {i} flipped and the frame still decoded"
                );
            }
        }
    });
}
