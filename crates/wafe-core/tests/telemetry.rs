//! The `telemetry` command: the unified observability surface across the
//! interpreter, the toolkit and (in wafe-ipc's tests) the pipe protocol.

use std::collections::BTreeMap;

use wafe_core::{Flavor, WafeSession};
use wafe_tcl::parse_list;

fn session() -> WafeSession {
    let s = WafeSession::new(Flavor::Athena);
    s.telemetry.set_enabled(true);
    s
}

/// Parses the flat key/value list `telemetry snapshot` returns.
fn snapshot(s: &mut WafeSession) -> BTreeMap<String, u64> {
    let out = s.eval("telemetry snapshot").unwrap();
    let words = parse_list(&out).unwrap();
    assert_eq!(words.len() % 2, 0, "snapshot must be key/value pairs");
    words
        .chunks(2)
        .map(|kv| (kv[0].clone(), kv[1].parse::<u64>().unwrap()))
        .collect()
}

fn click(s: &mut WafeSession, name: &str) {
    {
        let mut app = s.app.borrow_mut();
        let w = app.lookup(name).unwrap();
        let win = app.widget(w).window.unwrap();
        let abs = app.displays[0].abs_rect(win);
        app.displays[0].inject_click(abs.x + 3, abs.y + 3, 1);
    }
    s.pump();
}

#[test]
fn snapshot_reports_eval_counts_and_dispatch_histogram() {
    let mut s = session();
    s.eval("command go topLevel label Go callback {set hits 1}")
        .unwrap();
    s.eval("realize").unwrap();
    click(&mut s, "go");
    assert_eq!(s.interp.get_var("hits").unwrap(), "1");
    let snap = snapshot(&mut s);
    assert!(snap["tcl.evals"] > 0, "{snap:?}");
    assert!(snap["tcl.dispatches"] > 0);
    assert!(snap["xt.widget.creates"] >= 1);
    assert_eq!(snap["xt.callbacks.dispatched"], 1);
    // The dispatch latency histogram carries count and percentiles.
    assert_eq!(snap["xt.callback.dispatch.count"], 1);
    assert!(snap["xt.callback.dispatch.p50Ns"] > 0);
    assert!(snap["xt.callback.dispatch.p99Ns"] >= snap["xt.callback.dispatch.p50Ns"]);
    // The eval histogram rides along.
    assert!(snap["tcl.eval.count"] > 0);
    assert!(snap["tcl.eval.p90Ns"] >= snap["tcl.eval.p50Ns"]);
}

#[test]
fn snapshot_absorbs_cachestats_and_interp_subcommands_still_work() {
    // Satellite 1: both surfaces report the same cache counters.
    let mut s = session();
    s.eval("proc f {x} {expr {$x * 2}}").unwrap();
    for _ in 0..5 {
        s.eval("f 21").unwrap();
    }
    let snap = snapshot(&mut s);
    assert!(snap["tcl.cache.scriptHits"] > 0, "{snap:?}");
    assert!(snap["tcl.cache.limit"] > 0);
    // The PR-1 command keeps working unchanged, and agrees.
    let cs = parse_list(&s.eval("interp cachestats").unwrap()).unwrap();
    let cs: BTreeMap<String, String> = cs
        .chunks(2)
        .map(|kv| (kv[0].clone(), kv[1].clone()))
        .collect();
    // Snapshot ran evals of its own, so compare >= on hits.
    let snap2 = snapshot(&mut s);
    assert!(snap2["tcl.cache.scriptHits"] >= cs["hits"].parse::<u64>().unwrap());
    assert_eq!(snap2["tcl.cache.limit"].to_string(), cs["limit"]);
    // cachelimit / cacheclear stay functional. The `telemetry snapshot`
    // eval itself re-enters the cache, so at most one entry remains.
    s.eval("interp cachelimit 64").unwrap();
    s.eval("interp cacheclear").unwrap();
    let snap3 = snapshot(&mut s);
    assert!(snap3["tcl.cache.scriptEntries"] <= 1, "{snap3:?}");
    assert_eq!(snap3["tcl.cache.limit"], 64);
}

#[test]
fn snapshot_exposes_memstats() {
    // Satellite 2: MemStats surfaces through the same snapshot.
    let mut s = session();
    s.eval("label l topLevel label {some tracked text}")
        .unwrap();
    let snap = snapshot(&mut s);
    assert!(snap["xt.mem.current"] > 0, "{snap:?}");
    assert!(snap["xt.mem.peak"] >= snap["xt.mem.current"]);
    assert!(snap["xt.mem.allocs"] > 0);
    assert_eq!(snap["xt.mem.overfree"], 0);
    s.eval("destroyWidget l").unwrap();
    let after = snapshot(&mut s);
    assert!(after["xt.mem.frees"] > 0);
    assert!(after["xt.mem.current"] < snap["xt.mem.current"]);
}

#[test]
fn memstats_visible_even_while_disabled() {
    // Gauges describe current state, so the snapshot reports them even
    // when recording is off.
    let mut s = WafeSession::new(Flavor::Athena);
    assert!(!s.telemetry.enabled());
    s.eval("label l topLevel label hello").unwrap();
    let snap = snapshot(&mut s);
    assert!(snap["xt.mem.current"] > 0);
    // But counters recorded nothing.
    assert!(!snap.contains_key("tcl.evals"));
}

#[test]
fn journal_records_widget_lifecycle() {
    let mut s = session();
    s.eval("label l topLevel").unwrap();
    s.eval("destroyWidget l").unwrap();
    let out = s.eval("telemetry journal").unwrap();
    let entries = parse_list(&out).unwrap();
    let kinds: Vec<String> = entries
        .iter()
        .map(|e| parse_list(e).unwrap()[2].clone())
        .collect();
    assert!(kinds.contains(&"widget.create".to_string()), "{kinds:?}");
    assert!(kinds.contains(&"widget.destroy".to_string()));
    // Each record is {seq at_us kind detail}; seq strictly increases.
    let seqs: Vec<u64> = entries
        .iter()
        .map(|e| parse_list(e).unwrap()[0].parse().unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
}

#[test]
fn journal_n_returns_most_recent_in_order() {
    // Satellite 3: `telemetry journal n` — last n, oldest first.
    let mut s = session();
    for i in 0..10 {
        s.eval(&format!("label w{i} topLevel")).unwrap();
    }
    let out = s.eval("telemetry journal 3").unwrap();
    let entries = parse_list(&out).unwrap();
    assert_eq!(entries.len(), 3);
    let details: Vec<String> = entries
        .iter()
        .map(|e| parse_list(e).unwrap()[3].clone())
        .collect();
    assert!(details[0].starts_with("w7"), "{details:?}");
    assert!(details[1].starts_with("w8"));
    assert!(details[2].starts_with("w9"));
}

#[test]
fn journal_wraps_at_capacity() {
    // Satellite 3: the ring buffer overwrites the oldest entries; seq
    // numbers keep counting across the wrap.
    let mut s = session();
    s.telemetry.set_journal_capacity(8);
    for i in 0..20 {
        s.eval(&format!("label w{i} topLevel")).unwrap();
    }
    let snap = snapshot(&mut s);
    assert_eq!(snap["trace.journal.retained"], 8);
    assert_eq!(snap["trace.journal.capacity"], 8);
    assert_eq!(snap["trace.journal.total"], 20);
    let entries = parse_list(&s.eval("telemetry journal").unwrap()).unwrap();
    assert_eq!(entries.len(), 8);
    let first = parse_list(&entries[0]).unwrap();
    // Only the 8 newest survive: the first retained entry is create #13.
    assert_eq!(first[0], "13");
    assert!(first[3].starts_with("w12"), "{first:?}");
}

#[test]
fn reset_clears_data_but_not_enabled_flag() {
    // Satellite 3: reset wipes counters/histograms/journal, keeps the
    // enabled flag.
    let mut s = session();
    s.eval("label l topLevel").unwrap();
    for _ in 0..10 {
        s.eval("set x 1").unwrap();
    }
    let before = snapshot(&mut s);
    assert!(before["tcl.evals"] > 10);
    s.eval("telemetry reset").unwrap();
    assert_eq!(s.eval("telemetry enabled").unwrap(), "1");
    let after = snapshot(&mut s);
    // The reset itself and the snapshot eval are the only recordings.
    assert!(after["tcl.evals"] < before["tcl.evals"]);
    assert_eq!(after["trace.journal.retained"], 0);
    assert_eq!(after["trace.journal.total"], 0);
    assert!(!after.contains_key("xt.widget.creates"));
}

#[test]
fn enable_disable_via_command() {
    let mut s = WafeSession::new(Flavor::Athena);
    assert_eq!(s.eval("telemetry enabled").unwrap(), "0");
    s.eval("telemetry enable").unwrap();
    assert_eq!(s.eval("telemetry enabled").unwrap(), "1");
    s.eval("set x 1").unwrap();
    assert!(snapshot(&mut s)["tcl.evals"] > 0);
    s.eval("telemetry disable").unwrap();
    assert_eq!(s.eval("telemetry enabled").unwrap(), "0");
}

#[test]
fn histogram_subcommand_reports_percentiles() {
    let mut s = session();
    for i in 0..50 {
        s.eval(&format!("set x {i}")).unwrap();
    }
    let out = s.eval("telemetry histogram tcl.eval").unwrap();
    let kv: BTreeMap<String, u64> = parse_list(&out)
        .unwrap()
        .chunks(2)
        .map(|w| (w[0].clone(), w[1].parse().unwrap()))
        .collect();
    assert!(kv["count"] >= 50);
    assert!(kv["minNs"] <= kv["p50Ns"]);
    assert!(kv["p50Ns"] <= kv["p90Ns"]);
    assert!(kv["p90Ns"] <= kv["p99Ns"]);
    assert!(kv["p99Ns"] <= kv["maxNs"]);
    assert!(kv["sumNs"] >= kv["maxNs"]);
    // Unknown histograms are an error.
    assert!(s.eval("telemetry histogram no.such").is_err());
}

#[test]
fn action_dispatch_measured() {
    let mut s = session();
    s.eval("asciiText input topLevel editType edit").unwrap();
    s.eval("action input override {<Key>Return: exec(set seen 1)}")
        .unwrap();
    s.eval("realize").unwrap();
    {
        let mut app = s.app.borrow_mut();
        let input = app.lookup("input").unwrap();
        let win = app.widget(input).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_text("\n");
    }
    s.pump();
    assert_eq!(s.interp.get_var("seen").unwrap(), "1");
    let snap = snapshot(&mut s);
    assert_eq!(snap["xt.actions.dispatched"], 1, "{snap:?}");
    assert_eq!(snap["xt.action.dispatch.count"], 1);
    assert!(snap["xt.action.dispatch.p50Ns"] > 0);
}

#[test]
fn snapshot_is_key_sorted_and_prefix_filterable() {
    // Satellite 2 (PR 5): the snapshot is deterministically key-sorted,
    // and an optional prefix narrows it to the matching sub-slice.
    let mut s = session();
    s.eval("label l topLevel").unwrap();
    for _ in 0..3 {
        s.eval("set x 1").unwrap();
    }
    let words = parse_list(&s.eval("telemetry snapshot").unwrap()).unwrap();
    let keys: Vec<&String> = words.iter().step_by(2).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "snapshot keys must come out sorted");
    let filtered = parse_list(&s.eval("telemetry snapshot tcl.").unwrap()).unwrap();
    assert!(!filtered.is_empty());
    assert!(filtered.chunks(2).all(|kv| kv[0].starts_with("tcl.")));
    // A prefix nothing matches yields an empty list, not an error…
    assert_eq!(s.eval("telemetry snapshot no.such.prefix").unwrap(), "");
    // …but extra arguments are still rejected.
    assert!(s.eval("telemetry snapshot a b").is_err());
}

#[test]
fn snapshot_prefix_asserts_verbatim() {
    // Satellite 2 (PR 5): with deterministic ordering a test can pin
    // snapshot output byte-for-byte. The journal gauges are exact on a
    // fresh session, so the whole filtered snapshot is one literal.
    let mut s = WafeSession::new(Flavor::Athena);
    assert_eq!(
        s.eval("telemetry snapshot trace.journal").unwrap(),
        "trace.journal.capacity 256 trace.journal.dropped 0 trace.journal.retained 0 trace.journal.total 0"
    );
    s.telemetry.set_journal_capacity(8);
    assert_eq!(
        s.eval("telemetry snapshot trace.journal").unwrap(),
        "trace.journal.capacity 8 trace.journal.dropped 0 trace.journal.retained 0 trace.journal.total 0"
    );
}

#[test]
fn disabled_telemetry_records_no_counters() {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("label l topLevel").unwrap();
    s.eval("set x 1").unwrap();
    let snap = snapshot(&mut s);
    assert!(!snap.contains_key("tcl.evals"), "{snap:?}");
    assert!(!snap.contains_key("xt.widget.creates"));
    assert_eq!(snap["trace.journal.total"], 0);
}

#[test]
fn snapshot_reports_bytecode_counters() {
    let mut s = session();
    s.eval("set n 0; while {$n < 25} {incr n}").unwrap();
    let snap = snapshot(&mut s);
    assert!(snap["tcl.bc.compiles"] >= 1, "{snap:?}");
    assert!(
        snap["tcl.bc.instructions"] > 100,
        "a 25-iteration loop dispatches well over 100 instructions: {snap:?}"
    );
    // Re-running the same script hits the cached bytecode.
    s.eval("set n 0; while {$n < 25} {incr n}").unwrap();
    let snap2 = snapshot(&mut s);
    assert!(snap2["tcl.bc.hits"] >= 1, "{snap2:?}");
    assert_eq!(snap2["tcl.bc.compiles"], snap["tcl.bc.compiles"]);
}

#[test]
fn bcstats_prefix_asserts_verbatim() {
    // The key-sorted snapshot pins the whole tcl.bc prefix verbatim: a
    // fresh session reports exactly two compiles (`set x 1` plus the
    // snapshot script itself, which compiles before the snapshot is
    // taken), no hits and no fallbacks. Only `set x 1` has finished
    // executing, so the instruction count is its two instructions.
    let mut s = session();
    s.eval("set x 1").unwrap();
    let instructions = s.interp.bc_stats().instructions;
    assert_eq!(instructions, 2, "set x 1 is PushConst + StoreVar");
    assert_eq!(
        s.eval("telemetry snapshot tcl.bc").unwrap(),
        format!("tcl.bc.compiles 2 tcl.bc.instructions {instructions}")
    );
}

#[test]
fn interp_bcstats_reports_and_bcdisable_switches() {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("set n 0; while {$n < 5} {incr n}").unwrap();
    let st: BTreeMap<String, String> = parse_list(&s.eval("interp bcstats").unwrap())
        .unwrap()
        .chunks(2)
        .map(|kv| (kv[0].clone(), kv[1].clone()))
        .collect();
    assert_eq!(st["enabled"], "1");
    assert!(st["compiles"].parse::<u64>().unwrap() >= 1, "{st:?}");
    assert!(st["instructions"].parse::<u64>().unwrap() > 20);
    // bcdisable returns the previous state and stops the VM; the script
    // still evaluates identically through the tree-walker.
    assert_eq!(s.eval("interp bcdisable").unwrap(), "1");
    let before = s.interp.bc_stats();
    s.eval("set n 0; while {$n < 5} {incr n}").unwrap();
    assert_eq!(s.interp.get_var("n").unwrap(), "5");
    let after = s.interp.bc_stats();
    assert_eq!(after.compiles, before.compiles);
    assert_eq!(after.hits, before.hits);
    assert_eq!(s.eval("interp bcenable").unwrap(), "0");
}

/// The span surface end to end through Tcl: arm, trace a proc call,
/// disarm, read the stats words and the causal tree, export the Chrome
/// trace JSON, and clear the ring.
#[test]
fn spans_surface_and_chrome_export() {
    let mut s = session();
    assert_eq!(s.eval("telemetry spans enabled").unwrap(), "0");
    s.eval("telemetry spans on").unwrap();
    assert_eq!(s.eval("telemetry spans enabled").unwrap(), "1");
    s.eval("proc double {x} {expr {$x * 2}}").unwrap();
    assert_eq!(s.eval("double 21").unwrap(), "42");
    s.eval("telemetry spans off").unwrap();

    let stats: BTreeMap<String, u64> = parse_list(&s.eval("telemetry spans stats").unwrap())
        .unwrap()
        .chunks(2)
        .map(|kv| (kv[0].clone(), kv[1].parse().unwrap()))
        .collect();
    assert!(stats["retained"] > 0, "{stats:?}");
    assert_eq!(stats["open"], 0, "disarming closed every open span");
    assert_eq!(stats["dropped"], 0);

    let tree = s.eval("telemetry spans tree").unwrap();
    assert!(tree.contains("tcl.proc"), "{tree}");
    assert!(tree.contains("double"), "{tree}");

    let path = std::env::temp_dir().join(format!("wafe_chrome_{}.json", std::process::id()));
    let exported = s
        .eval(&format!("telemetry export chrome {}", path.display()))
        .unwrap();
    let n: u64 = exported.parse().unwrap();
    assert_eq!(n, stats["retained"], "one trace event per retained span");
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(body.starts_with("{\"traceEvents\":["), "{body}");
    assert!(body.contains("\"name\":\"tcl.proc\""), "{body}");
    assert!(body.contains("\"trace\":"), "{body}");

    s.eval("telemetry spans clear").unwrap();
    let after = s.eval("telemetry spans stats").unwrap();
    assert!(parse_list(&after)
        .unwrap()
        .contains(&"retained".to_string()));
    assert!(after.contains("retained 0"), "{after}");
}
