//! Session-level tests reproducing, command for command, the interactive
//! examples printed in the paper.

use wafe_core::{split_args, Flavor, WafeSession};

fn athena() -> WafeSession {
    WafeSession::new(Flavor::Athena)
}

fn motif() -> WafeSession {
    WafeSession::new(Flavor::Motif)
}

fn click(s: &mut WafeSession, name: &str) {
    {
        let mut app = s.app.borrow_mut();
        let w = app.lookup(name).unwrap();
        let win = app.widget(w).window.unwrap();
        let abs = app.displays[0].abs_rect(win);
        app.displays[0].inject_click(abs.x + 3, abs.y + 3, 1);
    }
    s.pump();
}

#[test]
fn top_level_exists_automatically() {
    let s = athena();
    assert!(s.app.borrow().lookup("topLevel").is_some());
}

#[test]
fn paper_get_resource_list_example() {
    // label l topLevel; echo [getResourceList l retVal] → 42.
    let mut s = athena();
    s.eval("label l topLevel").unwrap();
    let n = s.eval("getResourceList l retVal").unwrap();
    assert_eq!(n, "42");
    let list = s.interp.get_var("retVal").unwrap();
    assert!(list.starts_with("destroyCallback"));
    for name in ["ancestorSensitive", "borderWidth", "colormap", "background"] {
        assert!(list.contains(name), "missing {name} in {list}");
    }
    s.eval("echo [getResourceList l retVal]").unwrap();
    assert_eq!(s.take_output(), "42\n");
}

#[test]
fn paper_hello_world_file_mode() {
    // The file-mode script from Figure 4.
    let mut s = athena();
    let script = "#!/usr/bin/X11/wafe --f\n\
                  command hello topLevel \\\n\
                    label \"Wafe new World\" \\\n\
                    callback \"echo Goodbye; quit\"\n\
                  realize\n";
    s.run_file_text(script).unwrap();
    {
        let app = s.app.borrow();
        assert!(app.is_realized(app.lookup("hello").unwrap()));
    }
    click(&mut s, "hello");
    assert_eq!(s.take_output(), "Goodbye\n");
    assert!(s.quit_requested());
}

#[test]
fn paper_set_values_example() {
    let mut s = athena();
    s.eval("label label1 topLevel background red foreground blue")
        .unwrap();
    s.eval("setValues label1 background \"tomato\" label \"Hi Man\"")
        .unwrap();
    assert_eq!(s.eval("gV label1 label").unwrap(), "Hi Man");
    assert_eq!(s.eval("gV label1 background").unwrap(), "#ff6347");
    s.eval("sV label1 label Other").unwrap();
    assert_eq!(s.eval("getValue label1 label").unwrap(), "Other");
}

#[test]
fn paper_merge_resources_example() {
    let mut s = athena();
    s.eval("mergeResources *Font fixed *foreground blue *background red")
        .unwrap();
    s.eval("label hello topLevel").unwrap();
    assert_eq!(s.eval("gV hello foreground").unwrap(), "#0000ff");
    assert_eq!(s.eval("gV hello background").unwrap(), "#ff0000");
}

#[test]
fn paper_callback_readback_example() {
    // The c1/c2 Form example: gV reads a callback resource back.
    let mut s = athena();
    s.run_file_text(
        "#!/usr/bin/X11/wafe --f\n\
         form f topLevel\n\
         command c1 f \\\n\
             callback \"echo i am %w.\"\n\
         command c2 f \\\n\
             callback [gV c1 callback] \\\n\
             fromVert c1\n\
         realize\n",
    )
    .unwrap();
    click(&mut s, "c1");
    assert_eq!(s.take_output(), "i am c1.\n");
    click(&mut s, "c2");
    assert_eq!(s.take_output(), "i am c2.\n");
}

#[test]
fn paper_xev_example() {
    let mut s = athena();
    s.eval("label xev topLevel width 100 height 50").unwrap();
    s.eval("action xev override {<KeyPress>: exec(echo %k %a %s)}")
        .unwrap();
    s.eval("realize").unwrap();
    {
        let mut app = s.app.borrow_mut();
        let xev = app.lookup("xev").unwrap();
        let win = app.widget(xev).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_text("w!");
    }
    s.pump();
    let out = s.take_output();
    let lines: Vec<&str> = out.lines().collect();
    // Three key presses: w, Shift_L, exclam — the paper's sequence
    // (198 w w / 174 Shift_L / 197 ! exclam; keycodes are our map's).
    assert_eq!(lines.len(), 3, "output was {out:?}");
    assert!(lines[0].ends_with("w w"), "{:?}", lines[0]);
    assert!(lines[1].ends_with("Shift_L"), "{:?}", lines[1]);
    assert!(lines[2].ends_with("! exclam"), "{:?}", lines[2]);
}

#[test]
fn paper_predefined_callback_command() {
    // mPushButton b topLevel; callback b armCallback none popup.
    let mut s = motif();
    s.eval("transientShell popup topLevel").unwrap();
    s.eval("mLabel inner popup labelString hi").unwrap();
    s.eval("mPushButton b topLevel labelString press").unwrap();
    s.eval("callback b armCallback none popup").unwrap();
    s.eval("realize").unwrap();
    click(&mut s, "b");
    let app = s.app.borrow();
    let popup = app.lookup("popup").unwrap();
    assert!(
        app.is_popped_up(popup),
        "armCallback must realize the popup shell"
    );
    assert_eq!(app.displays[0].grab_depth(), 0, "grab none");
}

#[test]
fn paper_menu_button_translation() {
    let mut s = athena();
    s.eval("menuButton mb topLevel label Menu menuName themenu")
        .unwrap();
    s.eval("simpleMenu themenu topLevel").unwrap();
    s.eval("smeBSB entry themenu label First callback {echo picked %l}")
        .unwrap();
    s.eval("action mb override \"<EnterWindow>: PopupMenu()\"")
        .unwrap();
    s.eval("realize").unwrap();
    {
        let mut app = s.app.borrow_mut();
        let mb = app.lookup("mb").unwrap();
        let win = app.widget(mb).window.unwrap();
        let abs = app.displays[0].abs_rect(win);
        app.displays[0].inject_pointer_move(abs.x + 2, abs.y + 2);
    }
    s.pump();
    {
        let app = s.app.borrow();
        assert!(app.is_popped_up(app.lookup("themenu").unwrap()));
    }
    click(&mut s, "entry");
    assert_eq!(s.take_output(), "picked First\n");
    let app = s.app.borrow();
    assert!(!app.is_popped_up(app.lookup("themenu").unwrap()));
}

#[test]
fn paper_list_percent_codes() {
    let mut s = athena();
    s.eval("form f topLevel").unwrap();
    s.eval("label confirmLab f label empty").unwrap();
    s.eval("list chooseLst f fromVert confirmLab list {alpha,beta,gamma}")
        .unwrap();
    s.eval("sV chooseLst callback {sV confirmLab label %s}")
        .unwrap();
    s.eval("realize").unwrap();
    {
        let mut app = s.app.borrow_mut();
        let l = app.lookup("chooseLst").unwrap();
        let win = app.widget(l).window.unwrap();
        let abs = app.displays[0].abs_rect(win);
        app.displays[0].inject_click(abs.x + 5, abs.y + 20, 1);
    }
    s.pump();
    assert_eq!(s.eval("gV confirmLab label").unwrap(), "beta");
}

#[test]
fn application_shell_on_second_display() {
    // applicationShell top2 dec4:0.
    let mut s = athena();
    s.eval("applicationShell top2 dec4:0").unwrap();
    s.eval("label l2 top2 label remote").unwrap();
    s.eval("realize").unwrap();
    let app = s.app.borrow();
    assert_eq!(app.displays.len(), 2);
    assert_eq!(app.displays[1].name, "dec4:0");
    let l2 = app.lookup("l2").unwrap();
    assert_eq!(app.widget(l2).display_idx, 1);
    assert!(app.is_realized(l2));
}

#[test]
fn spec_generated_commands_present() {
    let mut s = athena();
    for cmd in [
        "label",
        "command",
        "toggle",
        "menuButton",
        "form",
        "box",
        "paned",
        "viewport",
        "list",
        "asciiText",
        "scrollbar",
        "dialog",
        "stripChart",
        "simpleMenu",
        "smeBSB",
        "destroyWidget",
        "manageChild",
        "unmanageChild",
        "popup",
        "popdown",
        "setSensitive",
        "getResourceList",
        "listHighlight",
        "dialogAddButton",
        "translateCoords",
    ] {
        assert!(s.interp.has_command(cmd), "missing generated command {cmd}");
    }
    assert!(!s.interp.has_command("mPushButton"));
    assert!(!s.interp.has_command("mCascadeButtonHighlight"));
    let (generated, handwritten) = s.command_stats();
    assert!(generated > 40, "generated={generated}");
    assert!(handwritten >= 15, "handwritten={handwritten}");
    // The paper: "about 60% of the code is generated automatically".
    let frac = generated as f64 / (generated + handwritten) as f64;
    assert!(frac > 0.5, "generated fraction {frac}");
    let stats = s.eval("wafeStats").unwrap();
    assert!(stats.contains("generated"));
}

#[test]
fn motif_flavor_commands() {
    let s = motif();
    for cmd in [
        "mLabel",
        "mPushButton",
        "mCascadeButton",
        "mCommand",
        "mCascadeButtonHighlight",
        "mCommandAppendValue",
    ] {
        assert!(s.interp.has_command(cmd), "missing {cmd}");
    }
    // The Motif flavour lacks the Athena widgets, like the real mofe:
    // "if you choose to install the OSF/Motif version, the command to
    // create the Athena text widget, asciiText, won't be available".
    assert!(!s.interp.has_command("asciiText"));
    assert!(!s.interp.has_command("label"));
}

#[test]
fn m_cascade_button_highlight_from_spec() {
    let mut s = motif();
    s.eval("mCascadeButton casc topLevel labelString File")
        .unwrap();
    s.eval("realize").unwrap();
    s.eval("mCascadeButtonHighlight casc True").unwrap();
    {
        let app = s.app.borrow();
        assert_eq!(app.state(app.lookup("casc").unwrap(), "highlighted"), "1");
    }
    s.eval("mCascadeButtonHighlight casc False").unwrap();
    {
        let app = s.app.borrow();
        assert_eq!(app.state(app.lookup("casc").unwrap(), "highlighted"), "0");
    }
    let e = s.eval("mCascadeButtonHighlight casc").unwrap_err();
    assert!(e.message().contains("wrong # args"));
    let e = s.eval("mCascadeButtonHighlight casc perhaps").unwrap_err();
    assert!(e.message().contains("expected boolean"));
}

#[test]
fn figure3_compound_string_label() {
    let mut s = motif();
    s.eval(
        "mLabel l topLevel \\\n\
         fontList \"*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft\" \\\n\
         labelString \"I'm&bft bold&ft and&rl strange\"",
    )
    .unwrap();
    s.eval("realize").unwrap();
    let snap = s.eval("snapshot 0 0 400 60").unwrap();
    assert!(snap.contains("I'm"), "snapshot:\n{snap}");
    assert!(
        snap.contains("egnarts"),
        "rtl segment must render reversed:\n{snap}"
    );
}

#[test]
fn unknown_widget_errors() {
    let mut s = athena();
    assert!(s.eval("sV ghost label x").is_err());
    assert!(s.eval("gV ghost label").is_err());
    assert!(s.eval("destroyWidget ghost").is_err());
    assert!(s.eval("label l nosuchfather").is_err());
}

#[test]
fn destroy_widget_cleans_up() {
    let mut s = athena();
    let before = s.app.borrow().memstats.current();
    s.eval("form f topLevel").unwrap();
    s.eval("label a f").unwrap();
    s.eval("label b f fromVert a").unwrap();
    s.eval("destroyWidget f").unwrap();
    assert!(s.app.borrow().lookup("f").is_none());
    assert!(s.app.borrow().lookup("a").is_none());
    assert_eq!(s.app.borrow().memstats.current(), before);
}

#[test]
fn timeouts_fire_in_order() {
    let mut s = athena();
    s.eval("set log {}").unwrap();
    s.eval("addTimeOut 100 {append log a}").unwrap();
    s.eval("addTimeOut 50 {append log b}").unwrap();
    s.eval("addTimeOut 150 {append log c}").unwrap();
    s.eval("advanceTime 120").unwrap();
    assert_eq!(s.interp.get_var("log").unwrap(), "ba");
    s.eval("advanceTime 100").unwrap();
    assert_eq!(s.interp.get_var("log").unwrap(), "bac");
}

#[test]
fn xrm_from_command_line() {
    let mut s = athena();
    let args = split_args(&[
        "-xrm".to_string(),
        "*background: tomato".to_string(),
        "-display".to_string(),
        "remote:0".to_string(),
    ]);
    s.apply_toolkit_args(&args);
    s.eval("label l topLevel").unwrap();
    assert_eq!(s.eval("gV l background").unwrap(), "#ff6347");
    assert_eq!(s.app.borrow().displays[0].name, "remote:0");
}

#[test]
fn translate_coords_fills_array() {
    let mut s = athena();
    s.eval("label l topLevel width 50 height 20").unwrap();
    s.eval("realize").unwrap();
    s.eval("translateCoords l pos").unwrap();
    let x: i32 = s.interp.get_elem("pos", "x").unwrap().parse().unwrap();
    assert!(x >= 0);
}

#[test]
fn selections_roundtrip() {
    let mut s = athena();
    s.eval("label l topLevel").unwrap();
    s.eval("realize").unwrap();
    s.eval("ownSelection l PRIMARY {hello selection}").unwrap();
    assert_eq!(
        s.eval("getSelectionValue l PRIMARY").unwrap(),
        "hello selection"
    );
    s.eval("disownSelection l PRIMARY").unwrap();
    assert_eq!(s.eval("getSelectionValue l PRIMARY").unwrap(), "");
}

#[test]
fn reference_guide_generated() {
    let s = athena();
    let guide = s.reference_guide();
    assert!(guide.contains("# Wafe short reference guide"));
    assert!(guide.contains("**label**"));
    assert!(guide.contains("`XtDestroyWidget`"));
}

#[test]
fn toggle_creation_paper_naming() {
    // "To create an instance of the Athena Toggle widget class, the
    // command 'toggle Name Father' is provided."
    let mut s = athena();
    s.eval("toggle Name topLevel").unwrap();
    assert!(s.app.borrow().lookup("Name").is_some());
    assert_eq!(s.eval("class Name").unwrap(), "Toggle");
}

#[test]
fn unmanaged_creation_argument() {
    let mut s = athena();
    s.eval("form f topLevel").unwrap();
    s.eval("label hidden f unmanaged label secret").unwrap();
    s.eval("realize").unwrap();
    {
        let app = s.app.borrow();
        let hidden = app.lookup("hidden").unwrap();
        assert!(!app.widget(hidden).managed);
        let win = app.widget(hidden).window.unwrap();
        assert!(!app.displays[0].is_viewable(win));
    }
    s.eval("manageChild hidden").unwrap();
    let app = s.app.borrow();
    let hidden = app.lookup("hidden").unwrap();
    assert!(app.displays[0].is_viewable(app.widget(hidden).window.unwrap()));
}

#[test]
fn snapshot_shows_figure_like_ui() {
    let mut s = athena();
    s.eval("form top topLevel").unwrap();
    s.eval("command hello top label {Wafe new World}").unwrap();
    s.eval("realize").unwrap();
    let snap = s.eval("snapshot 0 0 320 80").unwrap();
    assert!(snap.contains("Wafe new World"), "snapshot:\n{snap}");
}

#[test]
fn rdd_drag_and_drop_commands() {
    // The Rdd extension: `rddDragSource`/`rddDropTarget` (spec-generated
    // from ext.wspec with the standard naming rules).
    let mut s = athena();
    s.eval("form f topLevel").unwrap();
    s.eval("label file f label {file.txt} width 60 height 20")
        .unwrap();
    s.eval("label trash f fromHoriz file label Trash width 60 height 20")
        .unwrap();
    s.eval("realize").unwrap();
    s.eval("rddDragSource file {file.txt}").unwrap();
    s.eval("rddDropTarget trash {echo dropping %v into %w}")
        .unwrap();
    {
        let mut app = s.app.borrow_mut();
        let src = app.lookup("file").unwrap();
        let dst = app.lookup("trash").unwrap();
        let sa = app.displays[0].abs_rect(app.widget(src).window.unwrap());
        let da = app.displays[0].abs_rect(app.widget(dst).window.unwrap());
        app.displays[0].inject_pointer_move(sa.x + 5, sa.y + 5);
        app.displays[0].inject_button(2, true);
        app.displays[0].inject_pointer_move(da.x + 5, da.y + 5);
        app.displays[0].inject_button(2, false);
    }
    s.pump();
    assert_eq!(s.take_output(), "dropping file.txt into trash\n");
}

#[test]
fn load_resource_file_command() {
    let mut s = athena();
    let dir = std::env::temp_dir().join(format!("wafe-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("app-defaults");
    std::fs::write(
        &path,
        "*foreground: tomato\n! a comment\n*label: FromFile\n",
    )
    .unwrap();
    let n = s
        .eval(&format!("loadResourceFile {}", path.display()))
        .unwrap();
    assert_eq!(n, "2");
    s.eval("label l topLevel").unwrap();
    assert_eq!(s.eval("gV l foreground").unwrap(), "#ff6347");
    assert_eq!(s.eval("gV l label").unwrap(), "FromFile");
    assert!(s.eval("loadResourceFile /no/such/file").is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrollbar_drives_viewport() {
    // The xwafecf card-filer pattern: a Scrollbar's jumpProc scrolls a
    // Viewport via viewportSetCoordinates, entirely in Tcl.
    let mut s = athena();
    s.eval("form f topLevel").unwrap();
    s.eval("scrollbar sb f length 200").unwrap();
    s.eval("viewport vp f fromHoriz sb width 200 height 200")
        .unwrap();
    s.eval("label tall vp label tallcontent width 200 height 1000")
        .unwrap();
    s.eval("sV sb jumpProc {viewportSetCoordinates vp 0 [expr {%t * 800 / 1000}]}")
        .unwrap();
    s.eval("realize").unwrap();
    // Middle-click halfway down the scrollbar.
    {
        let mut app = s.app.borrow_mut();
        let sb = app.lookup("sb").unwrap();
        let abs = app.displays[0].abs_rect(app.widget(sb).window.unwrap());
        app.displays[0].inject_pointer_move(abs.x + 3, abs.y + 100);
        app.displays[0].inject_button(2, true);
        app.displays[0].inject_button(2, false);
    }
    s.pump();
    let app = s.app.borrow();
    let tall = app.lookup("tall").unwrap();
    let y = app.pos_resource(tall, "y");
    assert!((-450..=-350).contains(&y), "child scrolled to y={y}");
}

#[test]
fn accelerators_run_source_widget_actions() {
    // XtInstallAccelerators: Meta<Key>q at the shell triggers the quit
    // button's set+notify, as if clicked.
    let mut s = athena();
    s.eval("form f topLevel").unwrap();
    s.eval(
        "command quitb f label Quit callback {echo accelerated} \
         accelerators {Meta<Key>q: set() notify() unset()}",
    )
    .unwrap();
    s.eval("label other f fromHoriz quitb label {focus here} width 120 height 40")
        .unwrap();
    s.eval("installAccelerators other quitb").unwrap();
    s.eval("realize").unwrap();
    {
        let mut app = s.app.borrow_mut();
        let other = app.lookup("other").unwrap();
        let win = app.widget(other).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_named(
            "q",
            wafe_xproto::Modifiers {
                shift: false,
                control: false,
                meta: true,
            },
        );
    }
    s.pump();
    assert_eq!(s.take_output(), "accelerated\n");
    // Without the modifier nothing fires.
    {
        let mut app = s.app.borrow_mut();
        let other = app.lookup("other").unwrap();
        let win = app.widget(other).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_text("q");
    }
    s.pump();
    assert_eq!(s.take_output(), "");
}

#[test]
fn install_all_accelerators_covers_subtree() {
    let mut s = athena();
    s.eval("form f topLevel").unwrap();
    s.eval("command a f label A callback {echo A!} accelerators {<Key>F1: set() notify() unset()}")
        .unwrap();
    s.eval("command b f fromHoriz a label B callback {echo B!} accelerators {<Key>F2: set() notify() unset()}").unwrap();
    s.eval("label pad f fromVert a width 100 height 30")
        .unwrap();
    s.eval("installAllAccelerators pad f").unwrap();
    s.eval("realize").unwrap();
    for (key, expect) in [("F1", "A!\n"), ("F2", "B!\n")] {
        {
            let mut app = s.app.borrow_mut();
            let pad = app.lookup("pad").unwrap();
            let win = app.widget(pad).window.unwrap();
            app.displays[0].set_input_focus(Some(win));
            app.displays[0].inject_key_named(key, wafe_xproto::Modifiers::NONE);
        }
        s.pump();
        assert_eq!(s.take_output(), expect);
    }
}

#[test]
fn name_to_widget_resolves_paths() {
    let mut s = athena();
    s.eval("form f topLevel").unwrap();
    s.eval("form inner f").unwrap();
    s.eval("command deep inner label x").unwrap();
    assert_eq!(
        s.eval("nameToWidget topLevel f.inner.deep").unwrap(),
        "deep"
    );
    assert_eq!(s.eval("nameToWidget f inner").unwrap(), "inner");
    assert!(s.eval("nameToWidget topLevel f.nothere").is_err());
}

#[test]
fn snapshot_ppm_writes_image() {
    let mut s = athena();
    s.eval("label l topLevel label {for the figure} background tomato")
        .unwrap();
    s.eval("realize").unwrap();
    let dir = std::env::temp_dir().join(format!("wafe-ppm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig.ppm");
    s.eval(&format!("snapshotPpm {}", path.display())).unwrap();
    let data = std::fs::read(&path).unwrap();
    assert!(data.starts_with(b"P6\n1024 768\n255\n"));
    assert_eq!(data.len(), "P6\n1024 768\n255\n".len() + 1024 * 768 * 3);
    // The tomato background must appear somewhere in the image.
    let tomato = [0xffu8, 0x63, 0x47];
    assert!(
        data.windows(3).any(|w| w == tomato),
        "tomato pixels present"
    );
    assert!(s.eval("snapshotPpm /no/such/dir/x.ppm").is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn work_procs_run_when_idle() {
    let mut s = athena();
    s.eval("set n 0").unwrap();
    // A work proc that counts to 3 then removes itself (returns 1).
    s.eval("addWorkProc {incr n; expr {$n >= 3}}").unwrap();
    s.pump();
    s.pump();
    s.pump();
    s.pump();
    // Ran exactly until its own true return, then never again.
    assert_eq!(s.interp.get_var("n").unwrap(), "3");
}

#[test]
fn work_proc_remove_by_id() {
    let mut s = athena();
    s.eval("set n 0").unwrap();
    // eval() pumps once itself, so the proc has run once already.
    let id = s.eval("addWorkProc {incr n; expr 0}").unwrap();
    assert_eq!(s.interp.get_var("n").unwrap(), "1");
    s.pump();
    assert_eq!(s.interp.get_var("n").unwrap(), "2");
    assert_eq!(s.eval(&format!("removeWorkProc {id}")).unwrap(), "1");
    s.pump();
    assert_eq!(s.interp.get_var("n").unwrap(), "2");
    assert_eq!(s.eval(&format!("removeWorkProc {id}")).unwrap(), "0");
}

#[test]
fn failing_work_proc_is_dropped_with_warning() {
    let mut s = athena();
    s.eval("addWorkProc {nosuchcommand}").unwrap();
    s.pump();
    s.pump();
    let warnings = s.app.borrow_mut().take_warnings();
    assert_eq!(
        warnings.iter().filter(|w| w.contains("work proc")).count(),
        1
    );
}

#[test]
fn trace_driven_reactive_label() {
    // A Tcl variable trace keeps a label in sync with application state —
    // the reactive idiom traces enable on top of Wafe.
    let mut s = athena();
    s.eval("label status topLevel label idle width 200")
        .unwrap();
    s.eval("realize").unwrap();
    s.eval("proc sync {n e o} {global state; sV status label $state}")
        .unwrap();
    s.eval("trace variable state w sync").unwrap();
    s.eval("set state {downloading...}").unwrap();
    assert_eq!(s.eval("gV status label").unwrap(), "downloading...");
    s.eval("set state done").unwrap();
    assert_eq!(s.eval("gV status label").unwrap(), "done");
}

#[test]
fn widget_tree_introspection() {
    let mut s = athena();
    s.eval("form f topLevel").unwrap();
    s.eval("label a f").unwrap();
    s.eval("command b f fromHoriz a").unwrap();
    let tree = s.eval("widgetTree").unwrap();
    // {topLevel TopLevelShell {{f Form {{a Label {}} {b Command {}}}}}
    assert!(tree.starts_with("topLevel TopLevelShell"));
    assert!(tree.contains("f Form"));
    assert!(tree.contains("a Label"));
    assert!(tree.contains("b Command"));
    // Parsable as nested lists from Tcl itself.
    assert_eq!(s.eval("lindex [widgetTree] 1").unwrap(), "TopLevelShell");
    assert_eq!(
        s.eval("lindex [lindex [lindex [widgetTree] 2] 0] 0")
            .unwrap(),
        "f"
    );
    // Rooted at a subtree.
    let sub = s.eval("widgetTree f").unwrap();
    assert!(sub.starts_with("f Form"));
    assert!(s.eval("widgetTree ghost").is_err());
}

#[test]
fn reference_guide_consistent_with_registered_commands() {
    // The paper's code generator guarantees "consistency in
    // documentation and interface code" — every generated command must
    // appear in the guide and be registered, and vice versa.
    let s = WafeSession::new(Flavor::Both);
    let guide = s.reference_guide();
    for class in s.spec().classes.iter() {
        assert!(
            guide.contains(&format!("**{}**", class.command)),
            "guide missing class command {}",
            class.command
        );
        assert!(
            s.interp.has_command(&class.command),
            "unregistered {}",
            class.command
        );
    }
    for cmd in s.spec().commands.iter() {
        assert!(
            guide.contains(&format!("**{}**", cmd.command)),
            "guide missing {}",
            cmd.command
        );
        assert!(
            s.interp.has_command(&cmd.command),
            "unregistered {}",
            cmd.command
        );
        assert!(
            guide.contains(&cmd.c_name),
            "guide missing C name {}",
            cmd.c_name
        );
    }
    // No spec command lacks a native handler (load_specs would have
    // warned).
    assert!(s.app.borrow_mut().take_warnings().is_empty());
}
