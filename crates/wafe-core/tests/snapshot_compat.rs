//! Version-compatibility pinning for the session snapshot format.
//!
//! `tests/fixtures/snapshot-v2.wsnap` is a **checked-in** blob at the
//! current format version; `snapshot-v1.wsnap` is the previous format,
//! kept to pin the rejection path. These tests hold the format to its
//! documented policy (`docs/checkpoint.md`):
//!
//! * today's reader decodes the current checked-in blob and restores
//!   the exact session state it was captured from;
//! * a superseded blob (and a modelled future reader) is rejected with
//!   an error naming both versions — never a silent best-effort decode;
//! * today's encoder still produces the current blob byte-for-byte, so
//!   *any* layout change — however small — fails here and forces the
//!   author to bump [`FORMAT_VERSION`] and regenerate the fixture
//!   (`cargo test -p wafe-core regenerate_snapshot_fixture -- --ignored`).

use wafe_core::{Flavor, SessionSnapshot, WafeSession, FORMAT_VERSION};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/snapshot-v2.wsnap"
);

const OLD_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/snapshot-v1.wsnap"
);

/// The state frozen into the fixture. Deterministic by construction:
/// widget ids are virtual, captures are key-sorted, and no clock or
/// randomness is involved.
fn fixture_session() -> (WafeSession, Vec<String>) {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("set user maria").unwrap();
    s.eval("set visits 42").unwrap();
    s.eval("proc greet {who} {return \"hello $who\"}").unwrap();
    s.eval("label banner topLevel label {Frozen State}")
        .unwrap();
    s.eval("command go topLevel label Go callback {echo pressed}")
        .unwrap();
    s.eval("mergeResources *Font fixed *banner.label {Frozen State}")
        .unwrap();
    s.eval("realize").unwrap();
    let outbound = vec!["queued-one".to_string(), "queued-two".to_string()];
    (s, outbound)
}

#[test]
fn checked_in_blob_decodes_and_restores() {
    let bytes = std::fs::read(FIXTURE).expect("fixture present and checked in");
    let snap = SessionSnapshot::decode(&bytes).expect("current reader accepts the current format");
    assert_eq!(snap.outbound, ["queued-one", "queued-two"]);
    assert_eq!(snap.displays.len(), 1, "display damage section present");

    let mut fresh = WafeSession::new(Flavor::Athena);
    let report = snap.restore_into(&mut fresh);
    assert_eq!(report.widgets_skipped, 0, "{report:?}");
    assert_eq!(fresh.eval("greet $user").unwrap(), "hello maria");
    assert_eq!(fresh.eval("expr {$visits + 1}").unwrap(), "43");
    let app = fresh.app.borrow();
    let banner = app.lookup("banner").expect("banner restored");
    assert_eq!(
        app.get_resource_string(banner, "label").unwrap(),
        "Frozen State"
    );
    assert!(app.is_realized(banner), "realized flag survives");
}

#[test]
fn superseded_v1_blob_is_rejected_naming_both_versions() {
    let bytes = std::fs::read(OLD_FIXTURE).expect("v1 fixture present and checked in");
    let err = SessionSnapshot::decode(&bytes)
        .expect_err("a v1 blob must not decode against the v2 layout");
    assert!(
        err.contains("version 1"),
        "error must name the blob's version: {err}"
    );
    assert!(
        err.contains(&format!("expects {FORMAT_VERSION}")),
        "error must name the reader's version: {err}"
    );
}

#[test]
fn future_reader_rejects_the_current_blob_naming_both_versions() {
    let bytes = std::fs::read(FIXTURE).expect("fixture present and checked in");
    // Model the next format revision: a reader whose FORMAT_VERSION was
    // bumped. The policy is an explicit refusal — decoding garbage
    // against the wrong layout is the failure mode the version header
    // exists to prevent.
    let err = SessionSnapshot::decode_as(&bytes, FORMAT_VERSION + 1).unwrap_err();
    assert!(
        err.contains(&format!("version {FORMAT_VERSION}")),
        "error must name the blob's version: {err}"
    );
    assert!(
        err.contains(&format!("expects {}", FORMAT_VERSION + 1)),
        "error must name the reader's version: {err}"
    );
}

#[test]
fn todays_encoder_still_writes_the_fixture_bytes() {
    let bytes = std::fs::read(FIXTURE).expect("fixture present and checked in");
    let (s, outbound) = fixture_session();
    assert_eq!(
        SessionSnapshot::capture(&s, outbound).encode(),
        bytes,
        "snapshot layout changed: bump FORMAT_VERSION, regenerate the \
         fixture as snapshot-v{FORMAT_VERSION}.wsnap and extend these \
         tests per docs/checkpoint.md"
    );
}

/// Regenerates the fixture. Deliberately `#[ignore]`d: run it once
/// after a format change (with the version already bumped), commit the
/// new blob, and keep the old one for the rejection test.
#[test]
#[ignore = "writes tests/fixtures/snapshot-v2.wsnap; run after a format bump"]
fn regenerate_snapshot_fixture() {
    let (s, outbound) = fixture_session();
    let bytes = SessionSnapshot::capture(&s, outbound).encode();
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures")).unwrap();
    std::fs::write(FIXTURE, &bytes).unwrap();
    eprintln!("wrote {} bytes to {FIXTURE}", bytes.len());
}
