//! Hand-written Wafe commands (the 40% the code generator does not
//! produce): `setValues`/`sV`, `getValues`/`gV`, `mergeResources`,
//! `action`, `callback`, `realize`, `quit`, `snapshot`, timeouts,
//! `processEvents`, channel configuration and statistics.

use wafe_tcl::error::wrong_num_args;
use wafe_tcl::{TclError, Value};
use wafe_xproto::geometry::Rect;
use wafe_xt::callback::{CallbackItem, PredefinedCallback};
use wafe_xt::resource::ResourceValue;
use wafe_xt::translation::{MergeMode, TranslationTable};

use crate::session::{pump, Timer, WafeSession};

/// Registers every hand-written command into the session.
pub fn register_handwritten(session: &mut WafeSession) {
    register_set_values(session);
    register_get_values(session);
    register_merge_resources(session);
    register_load_resource_file(session);
    register_action(session);
    register_callback(session);
    register_realize(session);
    register_quit(session);
    register_snapshot(session);
    register_snapshot_ppm(session);
    register_timeouts(session);
    register_work_procs(session);
    register_process_events(session);
    register_channel(session);
    register_widget_tree(session);
    register_stats(session);
    register_telemetry(session);
    register_backend_controls(session);
}

/// `backend status|restart|kill|config|queue`, `faultpoint
/// set|clear|list`, `serve status|sessions|drain|limits` and `display
/// attach|detach|frame|event|status` — the embedder control surface. The behaviour is installed by the
/// embedding process (wafe-ipc's frontend, wafe-serve's scheduler)
/// through [`WafeSession::controls`]; in a plain session each command
/// reports which embedding it needs.
fn register_backend_controls(session: &mut WafeSession) {
    for (name, absent) in [
        ("backend", "requires frontend mode (no backend attached)"),
        ("faultpoint", "requires frontend mode (no backend attached)"),
        (
            "serve",
            "requires server mode (no waferd scheduler attached)",
        ),
        (
            "session",
            "requires server mode (no session registry attached)",
        ),
        (
            "display",
            "requires server mode (no display channel attached)",
        ),
    ] {
        let controls = session.controls.clone();
        session.register_handwritten_command(name, move |_interp, argv| {
            let mut controls = controls.borrow_mut();
            // Control handlers are an embedding-facing API and stay on
            // plain strings; convert at this boundary.
            let words: Vec<String> = argv.iter().map(|v| v.to_string()).collect();
            match controls.get_mut(argv[0].as_str()) {
                Some(handler) => handler(&words).map(Value::from).map_err(TclError::Error),
                None => Err(TclError::Error(format!("{} {absent}", argv[0]))),
            }
        });
    }
}

/// The key-sorted `(key, value)` pairs behind `telemetry snapshot`,
/// `telemetry json` and the `serve metrics` exposition: the store-level
/// pairs ([`wafe_trace::export::telemetry_pairs`]) plus the
/// interpreter-side cache/shimmer counters and the toolkit's memory
/// gauges the store cannot see.
pub fn session_snapshot_pairs(
    interp: &wafe_tcl::Interp,
    app_rc: &std::rc::Rc<std::cell::RefCell<wafe_xt::XtApp>>,
) -> Vec<(String, String)> {
    let tel = interp.telemetry();
    let mut pairs = wafe_trace::export::telemetry_pairs(tel);
    // The PR-1 parse-cache counters, absorbed into the same
    // snapshot (`interp cachestats` keeps working unchanged).
    let cs = interp.cache_stats();
    for (k, v) in [
        ("tcl.cache.scriptHits", cs.script_hits),
        ("tcl.cache.scriptMisses", cs.script_misses),
        ("tcl.cache.scriptEntries", cs.script_entries as u64),
        ("tcl.cache.scriptEvictions", cs.script_evictions),
        ("tcl.cache.exprHits", cs.expr_hits),
        ("tcl.cache.exprMisses", cs.expr_misses),
        ("tcl.cache.exprEntries", cs.expr_entries as u64),
        ("tcl.cache.exprEvictions", cs.expr_evictions),
        ("tcl.cache.limit", cs.limit as u64),
    ] {
        pairs.push((k.to_string(), v.to_string()));
    }
    // Memory accounting, read live (gauges, not counters —
    // they describe current state even while disabled).
    {
        let app = app_rc.borrow();
        let m = &app.memstats;
        for (k, v) in [
            ("xt.mem.current", m.current()),
            ("xt.mem.peak", m.peak()),
            ("xt.mem.allocs", m.alloc_count()),
            ("xt.mem.frees", m.free_count()),
            ("xt.mem.overfree", m.overfree_count()),
        ] {
            pairs.push((k.to_string(), v.to_string()));
        }
    }
    // Dual-representation value-layer counters (see
    // `docs/values.md`): conversions in/out of the cached
    // int/double/list/script reps and rep reuse.
    let sh = wafe_tcl::shimmer_stats();
    for (k, v) in [
        ("tcl.shimmer.intParses", sh.int_parses),
        ("tcl.shimmer.doubleParses", sh.double_parses),
        ("tcl.shimmer.listParses", sh.list_parses),
        ("tcl.shimmer.repHits", sh.rep_hits),
        ("tcl.shimmer.renders", sh.renders),
        ("tcl.shimmer.listCow", sh.list_cow),
        ("tcl.shimmer.cmdInternHits", sh.cmd_intern_hits),
    ] {
        pairs.push((k.to_string(), v.to_string()));
    }
    // Deterministic contract: the output is key-sorted, so
    // tests can assert on it verbatim.
    pairs.sort();
    pairs
}

/// `telemetry snapshot|json|journal ?n?|histogram name|spans …|export
/// chrome path|reset|enable|disable|enabled` — the unified introspection
/// surface across the interpreter, the toolkit and the pipe protocol
/// (see `docs/telemetry.md`).
fn register_telemetry(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    session.register_handwritten_command("telemetry", move |interp, argv| {
        if argv.len() < 2 {
            return Err(wrong_num_args("telemetry option ?arg?"));
        }
        let tel = interp.telemetry().clone();
        match argv[1].as_str() {
            "snapshot" => {
                if argv.len() > 3 {
                    return Err(wrong_num_args("telemetry snapshot ?prefix?"));
                }
                let prefix = argv.get(2).map(|v| v.to_string()).unwrap_or_default();
                let words: Vec<String> = session_snapshot_pairs(interp, &app_rc)
                    .into_iter()
                    .filter(|(k, _)| k.starts_with(&prefix))
                    .flat_map(|(k, v)| [k, v])
                    .collect();
                Ok(Value::from(wafe_tcl::list_join(&words)))
            }
            "json" => {
                // The same pairs as `snapshot`, as one JSON object.
                // Every value is an unsigned integer, so they are
                // emitted bare; keys keep their dotted form.
                if argv.len() > 3 {
                    return Err(wrong_num_args("telemetry json ?prefix?"));
                }
                let prefix = argv.get(2).map(|v| v.to_string()).unwrap_or_default();
                let mut out = String::from("{");
                let mut first = true;
                for (k, v) in session_snapshot_pairs(interp, &app_rc) {
                    if !k.starts_with(&prefix) {
                        continue;
                    }
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&wafe_trace::export::json_string(&k));
                    out.push(':');
                    out.push_str(&v);
                }
                out.push('}');
                Ok(Value::from(out))
            }
            "journal" => {
                let n = match argv.len() {
                    2 => usize::MAX,
                    3 => argv[2].parse().map_err(|_| {
                        TclError::Error(format!("expected integer but got \"{}\"", argv[2]))
                    })?,
                    _ => return Err(wrong_num_args("telemetry journal ?n?")),
                };
                let entries: Vec<String> = tel
                    .journal_recent(n)
                    .into_iter()
                    .map(|e| {
                        wafe_tcl::list_join(&[
                            e.seq.to_string(),
                            e.at_us.to_string(),
                            e.kind.to_string(),
                            e.detail,
                        ])
                    })
                    .collect();
                Ok(Value::from(wafe_tcl::list_join(&entries)))
            }
            "histogram" => {
                if argv.len() != 3 {
                    return Err(wrong_num_args("telemetry histogram name"));
                }
                let h = tel.histogram(&argv[2]).ok_or_else(|| {
                    TclError::Error(format!("no histogram \"{}\"", argv[2]))
                })?;
                let words: Vec<String> = [
                    ("count", h.count),
                    ("minNs", h.min_ns),
                    ("maxNs", h.max_ns),
                    ("p50Ns", h.p50_ns),
                    ("p90Ns", h.p90_ns),
                    ("p99Ns", h.p99_ns),
                    ("sumNs", h.sum_ns),
                ]
                .iter()
                .flat_map(|(k, v)| [k.to_string(), v.to_string()])
                .collect();
                Ok(Value::from(wafe_tcl::list_join(&words)))
            }
            "spans" => {
                if argv.len() != 3 {
                    return Err(wrong_num_args(
                        "telemetry spans on|off|enabled|tree|stats|clear",
                    ));
                }
                match argv[2].as_str() {
                    "on" => {
                        tel.set_spans_enabled(true);
                        Ok(Value::empty())
                    }
                    "off" => {
                        tel.set_spans_enabled(false);
                        Ok(Value::empty())
                    }
                    "enabled" => Ok(if tel.spans_enabled() { "1" } else { "0" }.into()),
                    "tree" => {
                        // The causal tree of every retained span. The
                        // spans of the command rendering the tree are
                        // still open, so they never show up in their
                        // own output — the render is deterministic.
                        let spans = tel.spans_recent(usize::MAX);
                        Ok(Value::from(
                            wafe_trace::span::render_tree(&spans)
                                .trim_end_matches('\n')
                                .to_string(),
                        ))
                    }
                    "stats" => {
                        let s = tel.span_stats();
                        let words: Vec<String> = [
                            ("retained", s.retained as u64),
                            ("total", s.total),
                            ("dropped", s.dropped),
                            ("capacity", s.capacity as u64),
                            ("open", s.open as u64),
                        ]
                        .iter()
                        .flat_map(|(k, v)| [k.to_string(), v.to_string()])
                        .collect();
                        Ok(Value::from(wafe_tcl::list_join(&words)))
                    }
                    "clear" => {
                        tel.spans_clear();
                        Ok(Value::empty())
                    }
                    bad => Err(TclError::Error(format!(
                        "bad spans option \"{bad}\": must be on, off, enabled, tree, stats, or clear"
                    ))),
                }
            }
            "export" => {
                // telemetry export chrome path — the retained span tree
                // as Chrome trace-event JSON, loadable in
                // chrome://tracing / Perfetto. Returns the span count.
                if argv.len() != 4 || argv[2].as_str() != "chrome" {
                    return Err(wrong_num_args("telemetry export chrome path"));
                }
                let spans = tel.spans_recent(usize::MAX);
                let json = wafe_trace::export::chrome_trace(&spans);
                std::fs::write(argv[3].as_str(), json).map_err(|e| {
                    TclError::Error(format!("cannot write \"{}\": {e}", argv[3]))
                })?;
                Ok(Value::from_int(spans.len() as i64))
            }
            "reset" => {
                if argv.len() != 2 {
                    return Err(wrong_num_args("telemetry reset"));
                }
                tel.reset();
                Ok(Value::empty())
            }
            "enable" => {
                if argv.len() != 2 {
                    return Err(wrong_num_args("telemetry enable"));
                }
                tel.set_enabled(true);
                Ok(Value::empty())
            }
            "disable" => {
                if argv.len() != 2 {
                    return Err(wrong_num_args("telemetry disable"));
                }
                tel.set_enabled(false);
                Ok(Value::empty())
            }
            "enabled" => {
                if argv.len() != 2 {
                    return Err(wrong_num_args("telemetry enabled"));
                }
                Ok(if tel.enabled() { "1" } else { "0" }.into())
            }
            other => Err(TclError::Error(format!(
                "bad option \"{other}\": must be snapshot, json, journal, histogram, spans, export, reset, enable, disable, or enabled"
            ))),
        }
    });
}

fn register_set_values(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    let handler = move |_: &mut wafe_tcl::Interp, argv: &[Value]| {
        if argv.len() < 4 || !(argv.len() - 2).is_multiple_of(2) {
            return Err(wrong_num_args(
                "setValues widget resource value ?resource value ...?",
            ));
        }
        let mut app = app_rc.borrow_mut();
        let w = app
            .lookup(&argv[1])
            .ok_or_else(|| TclError::Error(format!("unknown widget \"{}\"", argv[1])))?;
        for pair in argv[2..].chunks(2) {
            app.set_resource(w, &pair[0], &pair[1])
                .map_err(|e| TclError::Error(e.to_string()))?;
        }
        Ok(Value::empty())
    };
    // "For convenience the command setValues is registered as well under
    // the name sV."
    session.register_handwritten_command("setValues", handler.clone());
    session.register_handwritten_command("sV", handler);
}

fn register_get_values(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    let handler = move |_: &mut wafe_tcl::Interp, argv: &[Value]| {
        if argv.len() != 3 {
            return Err(wrong_num_args("getValue widget resource"));
        }
        let app = app_rc.borrow();
        let w = app
            .lookup(&argv[1])
            .ok_or_else(|| TclError::Error(format!("unknown widget \"{}\"", argv[1])))?;
        app.get_resource_string(w, &argv[2])
            .map(Value::from)
            .map_err(|e| TclError::Error(e.to_string()))
    };
    session.register_handwritten_command("getValue", handler.clone());
    session.register_handwritten_command("getValues", handler.clone());
    session.register_handwritten_command("gV", handler);
}

fn register_load_resource_file(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    session.register_handwritten_command("loadResourceFile", move |_, argv| {
        // The resource-file mechanism: "Using a resource description
        // file, which is evaluated at startup time of the application."
        if argv.len() != 2 {
            return Err(wrong_num_args("loadResourceFile fileName"));
        }
        let text = std::fs::read_to_string(argv[1].as_str()).map_err(|e| {
            TclError::Error(format!("couldn't read resource file \"{}\": {e}", argv[1]))
        })?;
        let n = app_rc.borrow_mut().resource_db.merge_text(&text);
        Ok(Value::from_int(n as i64))
    });
}

fn register_merge_resources(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    session.register_handwritten_command("mergeResources", move |_, argv| {
        if argv.len() < 3 || (argv.len() - 1) % 2 != 0 {
            return Err(wrong_num_args(
                "mergeResources resource value ?resource value ...?",
            ));
        }
        let mut app = app_rc.borrow_mut();
        for pair in argv[1..].chunks(2) {
            let line = format!("{}: {}", pair[0], pair[1]);
            if !app.resource_db.insert_line(&line) {
                return Err(TclError::Error(format!(
                    "malformed resource specification \"{}\"",
                    pair[0]
                )));
            }
        }
        Ok(Value::empty())
    });
}

fn register_action(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    session.register_handwritten_command("action", move |_, argv| {
        if argv.len() < 4 {
            return Err(wrong_num_args(
                "action widget override|augment|replace translation ?translation ...?",
            ));
        }
        let mode = MergeMode::parse(&argv[2]).ok_or_else(|| {
            TclError::Error(format!(
                "bad mode \"{}\": must be override, augment, or replace",
                argv[2]
            ))
        })?;
        let table = TranslationTable::parse(&argv[3..].join("\n")).map_err(TclError::Error)?;
        let mut app = app_rc.borrow_mut();
        let w = app
            .lookup(&argv[1])
            .ok_or_else(|| TclError::Error(format!("unknown widget \"{}\"", argv[1])))?;
        app.merge_translations(w, table, mode);
        Ok(Value::empty())
    });
}

fn register_callback(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    session.register_handwritten_command("callback", move |_, argv| {
        if argv.len() != 5 {
            return Err(wrong_num_args("callback widget resource function shell"));
        }
        let kind = PredefinedCallback::parse(&argv[3]).ok_or_else(|| {
            TclError::Error(format!(
                "bad predefined callback \"{}\": must be none, exclusive, nonexclusive, popdown, position, or positionCursor",
                argv[3]
            ))
        })?;
        let mut app = app_rc.borrow_mut();
        let w = app
            .lookup(&argv[1])
            .ok_or_else(|| TclError::Error(format!("unknown widget \"{}\"", argv[1])))?;
        let mut items = match app.widget(w).resource(&argv[2]) {
            Some(ResourceValue::Callback(items)) => items.clone(),
            Some(_) => {
                return Err(TclError::Error(format!(
                    "resource \"{}\" of \"{}\" is not a callback list",
                    argv[2], argv[1]
                )))
            }
            None => {
                return Err(TclError::Error(format!(
                    "widget \"{}\" has no resource \"{}\"",
                    argv[1], argv[2]
                )))
            }
        };
        items.push(CallbackItem::Predefined { kind, shell: argv[4].to_string() });
        // Resolve the static key through the class's resource spec.
        let key = app
            .widget(w)
            .class
            .resource(&argv[2])
            .map(|spec| spec.name)
            .expect("resource existence checked above");
        app.put_resource(w, key, ResourceValue::Callback(items));
        Ok(Value::empty())
    });
}

fn register_realize(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    let quit = session.quit.clone();
    session.register_handwritten_command("realize", move |interp, argv| {
        if argv.len() != 1 {
            return Err(wrong_num_args("realize"));
        }
        let shells: Vec<wafe_xt::WidgetId> = {
            let app = app_rc.borrow();
            app.widget_names()
                .iter()
                .filter_map(|n| app.lookup(n))
                .filter(|&w| {
                    let rec = app.widget(w);
                    rec.parent.is_none()
                        && matches!(
                            rec.class.name.as_str(),
                            "TopLevelShell" | "ApplicationShell"
                        )
                })
                .collect()
        };
        for s in shells {
            app_rc.borrow_mut().realize(s);
        }
        let ndisplays = app_rc.borrow().displays.len();
        for di in 0..ndisplays {
            app_rc.borrow_mut().displays[di].flush();
        }
        pump(interp, &app_rc, &quit);
        Ok(Value::empty())
    });
}

fn register_quit(session: &mut WafeSession) {
    let quit = session.quit.clone();
    session.register_handwritten_command("quit", move |_, argv| {
        if argv.len() != 1 {
            return Err(wrong_num_args("quit"));
        }
        quit.set(true);
        Ok(Value::empty())
    });
}

fn register_snapshot(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    session.register_handwritten_command("snapshot", move |_, argv| {
        // snapshot ?x y w h? ?displayIndex? — reproduction aid: the ASCII
        // figure of the current screen.
        let (rect, di) = match argv.len() {
            1 => (Rect::new(0, 0, 640, 400), 0usize),
            5 | 6 => {
                let p = |s: &Value| {
                    s.parse::<i64>()
                        .map_err(|_| TclError::Error(format!("expected integer but got \"{s}\"")))
                };
                let rect = Rect::new(
                    p(&argv[1])? as i32,
                    p(&argv[2])? as i32,
                    p(&argv[3])?.max(1) as u32,
                    p(&argv[4])?.max(1) as u32,
                );
                let di = argv.get(5).map(p).transpose()?.unwrap_or(0) as usize;
                (rect, di)
            }
            _ => return Err(wrong_num_args("snapshot ?x y width height? ?display?")),
        };
        let mut app = app_rc.borrow_mut();
        if di >= app.displays.len() {
            return Err(TclError::Error(format!("no display {di}")));
        }
        app.displays[di].flush();
        Ok(Value::from(app.displays[di].snapshot_ascii(rect)))
    });
}

fn register_snapshot_ppm(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    session.register_handwritten_command("snapshotPpm", move |_, argv| {
        // snapshotPpm fileName ?displayIndex? — writes a real PPM image
        // of the composited screen (the reproduction's figure files).
        if argv.len() != 2 && argv.len() != 3 {
            return Err(wrong_num_args("snapshotPpm fileName ?display?"));
        }
        let di: usize = argv
            .get(2)
            .map(|s| s.parse())
            .transpose()
            .map_err(|_| TclError::Error(format!("expected integer but got \"{}\"", argv[2])))?
            .unwrap_or(0);
        let mut app = app_rc.borrow_mut();
        if di >= app.displays.len() {
            return Err(TclError::Error(format!("no display {di}")));
        }
        app.displays[di].flush();
        let mut file = std::fs::File::create(argv[1].as_str())
            .map_err(|e| TclError::Error(format!("cannot create \"{}\": {e}", argv[1])))?;
        app.displays[di]
            .framebuffer()
            .write_ppm(&mut file)
            .map_err(|e| TclError::Error(format!("cannot write \"{}\": {e}", argv[1])))?;
        Ok(Value::empty())
    });
}

fn register_timeouts(session: &mut WafeSession) {
    let timers = session.timers.clone();
    let clock = session.clock_ms.clone();
    session.register_handwritten_command("addTimeOut", move |_, argv| {
        if argv.len() != 3 {
            return Err(wrong_num_args("addTimeOut milliseconds script"));
        }
        let ms: u64 = argv[1]
            .parse()
            .map_err(|_| TclError::Error(format!("expected integer but got \"{}\"", argv[1])))?;
        timers.borrow_mut().push(Timer {
            deadline_ms: clock.get() + ms,
            script: argv[2].to_string(),
        });
        Ok(Value::empty())
    });

    let timers = session.timers.clone();
    let clock = session.clock_ms.clone();
    let app_rc = session.app.clone();
    let quit = session.quit.clone();
    session.register_handwritten_command("advanceTime", move |interp, argv| {
        if argv.len() != 2 {
            return Err(wrong_num_args("advanceTime milliseconds"));
        }
        let ms: u64 = argv[1]
            .parse()
            .map_err(|_| TclError::Error(format!("expected integer but got \"{}\"", argv[1])))?;
        let target = clock.get() + ms;
        loop {
            let next = {
                let t = timers.borrow();
                t.iter()
                    .enumerate()
                    .filter(|(_, t)| t.deadline_ms <= target)
                    .min_by_key(|(_, t)| t.deadline_ms)
                    .map(|(i, t)| (i, t.deadline_ms))
            };
            match next {
                Some((i, deadline)) => {
                    let t = timers.borrow_mut().remove(i);
                    clock.set(deadline);
                    let _ = interp.eval(&t.script);
                    pump(interp, &app_rc, &quit);
                }
                None => break,
            }
        }
        clock.set(target);
        Ok(Value::empty())
    });
}

fn register_work_procs(session: &mut WafeSession) {
    let procs = session.work_procs.clone();
    let next = session.next_work_id.clone();
    session.register_handwritten_command("addWorkProc", move |_, argv| {
        // XtAppAddWorkProc: the script runs whenever the loop is idle; a
        // true result removes it (like returning True from C).
        if argv.len() != 2 {
            return Err(wrong_num_args("addWorkProc script"));
        }
        let id = next.get();
        next.set(id + 1);
        procs.borrow_mut().push((id, argv[1].to_string()));
        Ok(Value::from_int(id as i64))
    });

    let procs = session.work_procs.clone();
    session.register_handwritten_command("removeWorkProc", move |_, argv| {
        if argv.len() != 2 {
            return Err(wrong_num_args("removeWorkProc id"));
        }
        let id: u64 = argv[1]
            .parse()
            .map_err(|_| TclError::Error(format!("expected integer but got \"{}\"", argv[1])))?;
        let before = procs.borrow().len();
        procs.borrow_mut().retain(|(i, _)| *i != id);
        Ok(Value::from(if procs.borrow().len() < before {
            "1"
        } else {
            "0"
        }))
    });
}

fn register_process_events(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    let quit = session.quit.clone();
    session.register_handwritten_command("processEvents", move |interp, argv| {
        if argv.len() != 1 {
            return Err(wrong_num_args("processEvents"));
        }
        pump(interp, &app_rc, &quit);
        Ok(Value::empty())
    });
}

fn register_channel(session: &mut WafeSession) {
    let fd = session.channel_fd.clone();
    session.register_handwritten_command("getChannel", move |_, argv| {
        if argv.len() != 1 {
            return Err(wrong_num_args("getChannel"));
        }
        Ok(Value::from(fd.get().to_string()))
    });

    let comm = session.comm_var.clone();
    session.register_handwritten_command("setCommunicationVariable", move |_, argv| {
        if argv.len() != 4 {
            return Err(wrong_num_args(
                "setCommunicationVariable varName byteCount script",
            ));
        }
        let bytes: usize = argv[2]
            .parse()
            .map_err(|_| TclError::Error(format!("expected integer but got \"{}\"", argv[2])))?;
        *comm.borrow_mut() = Some((argv[1].to_string(), bytes, argv[3].to_string()));
        Ok(Value::empty())
    });
}

fn register_widget_tree(session: &mut WafeSession) {
    let app_rc = session.app.clone();
    session.register_handwritten_command("widgetTree", move |_, argv| {
        // widgetTree ?root? — the widget hierarchy as a nested Tcl list:
        // {name class {children...}}. Introspection for design tools.
        if argv.len() > 2 {
            return Err(wrong_num_args("widgetTree ?root?"));
        }
        let app = app_rc.borrow();
        let root = match argv.get(1) {
            Some(name) => app
                .lookup(name)
                .ok_or_else(|| TclError::Error(format!("unknown widget \"{name}\"")))?,
            None => app
                .lookup("topLevel")
                .ok_or_else(|| TclError::error("no topLevel widget"))?,
        };
        fn describe(app: &wafe_xt::XtApp, w: wafe_xt::WidgetId) -> String {
            let rec = app.widget(w);
            let kids: Vec<String> = rec
                .children
                .iter()
                .chain(rec.popups.iter())
                .map(|&c| describe(app, c))
                .collect();
            wafe_tcl::list_join(&[
                rec.name.clone(),
                rec.class.name.clone(),
                wafe_tcl::list_join(&kids),
            ])
        }
        Ok(Value::from(describe(&app, root)))
    });
}

fn register_stats(session: &mut WafeSession) {
    let generated = session.spec().generated_count();
    let handwritten = session.handwritten.clone();
    session.register_handwritten_command("wafeStats", move |_, argv| {
        if argv.len() != 1 {
            return Err(wrong_num_args("wafeStats"));
        }
        // +1: this command itself has not been counted yet at capture
        // time for the commands registered after it; the counter cell is
        // shared, so reading it now is accurate.
        Ok(Value::from(format!(
            "generated {generated} handwritten {}",
            handwritten.get()
        )))
    });

    let guide = session.reference_guide();
    session.register_handwritten_command("referenceGuide", move |_, argv| {
        if argv.len() != 1 {
            return Err(wrong_num_args("referenceGuide"));
        }
        Ok(Value::from(guide.clone()))
    });
}
