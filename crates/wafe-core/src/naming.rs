//! Wafe's naming conventions.
//!
//! "Wafe commands corresponding to X Toolkit functions (eg.
//! `XtDestroyWidget`) have the same name except that the prefix `Xt`,
//! `Xaw` or `X` is stripped and the first letter of the remaining string
//! is translated to lower case (… `destroyWidget`). … OSF/Motif commands
//! stripped by the rules above result in Wafe commands starting with the
//! letter m. The OSF/Motif command `XmCommandAppendValue` is therefore
//! called `mCommandAppendValue`."
//!
//! The same rules apply to widget-class creation commands: Athena
//! `Toggle` → `toggle`, Motif `XmCascadeButton` → `mCascadeButton`.

/// Derives the Wafe command name for a C function name.
///
/// # Examples
///
/// ```
/// use wafe_core::naming::command_name;
/// assert_eq!(command_name("XtDestroyWidget"), "destroyWidget");
/// assert_eq!(command_name("XawFormAllowResize"), "formAllowResize");
/// assert_eq!(command_name("XmCommandAppendValue"), "mCommandAppendValue");
/// ```
pub fn command_name(c_name: &str) -> String {
    if let Some(rest) = c_name.strip_prefix("Xm") {
        return format!("m{rest}");
    }
    let rest = c_name
        .strip_prefix("Xaw")
        .or_else(|| c_name.strip_prefix("Xt"))
        .or_else(|| c_name.strip_prefix('X'))
        .unwrap_or(c_name);
    lower_first(rest)
}

/// Derives the widget-creation command name for a widget class name.
///
/// # Examples
///
/// ```
/// use wafe_core::naming::class_command_name;
/// assert_eq!(class_command_name("Toggle"), "toggle");
/// assert_eq!(class_command_name("AsciiText"), "asciiText");
/// assert_eq!(class_command_name("XmCascadeButton"), "mCascadeButton");
/// ```
pub fn class_command_name(class: &str) -> String {
    if let Some(rest) = class.strip_prefix("Xm") {
        return format!("m{rest}");
    }
    lower_first(class)
}

fn lower_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        assert_eq!(command_name("XtDestroyWidget"), "destroyWidget");
        assert_eq!(command_name("XawFormAllowResize"), "formAllowResize");
        assert_eq!(command_name("XmCommandAppendValue"), "mCommandAppendValue");
        assert_eq!(
            command_name("XmCascadeButtonHighlight"),
            "mCascadeButtonHighlight"
        );
        assert_eq!(command_name("XtGetResourceList"), "getResourceList");
    }

    #[test]
    fn class_names() {
        assert_eq!(class_command_name("Label"), "label");
        assert_eq!(class_command_name("Command"), "command");
        assert_eq!(class_command_name("Toggle"), "toggle");
        assert_eq!(class_command_name("MenuButton"), "menuButton");
        assert_eq!(class_command_name("AsciiText"), "asciiText");
        assert_eq!(class_command_name("XmPushButton"), "mPushButton");
        assert_eq!(class_command_name("XmCascadeButton"), "mCascadeButton");
        assert_eq!(class_command_name("TopLevelShell"), "topLevelShell");
    }

    #[test]
    fn bare_x_prefix() {
        assert_eq!(command_name("XInternAtom"), "internAtom");
    }

    #[test]
    fn no_prefix_passthrough() {
        assert_eq!(command_name("Quit"), "quit");
        assert_eq!(command_name(""), "");
    }
}
