//! Percent-code substitution for callbacks and actions.
//!
//! Two tables in the paper define these:
//!
//! **Actions** (the `exec` action): `%t` event type, `%w` widget, `%b`
//! button number (button events), `%x %y` coordinates, `%X %Y` root
//! coordinates, `%a` ascii character / `%k` keycode / `%s` keysym (key
//! events). "The %t code will expand to `unknown`, if the event is not
//! included in the list" of the six supported types. Codes applied to an
//! event type that does not carry the information are left untouched —
//! "It is the programmer's responsibility to ensure … that a percent code
//! substitution occurs only with a valid event type."
//!
//! **Callbacks**: `%w` is always available ("can be used in any callback
//! function to obtain the widget's name"); other codes are class-specific
//! clientData (Athena List: `%i` index, `%s` active element).

use std::collections::HashMap;

use wafe_xproto::{Event, EventKind};

/// Substitutes action percent codes using the triggering event.
pub fn substitute_action(script: &str, widget_name: &str, event: &Event) -> String {
    let is_button = matches!(
        event.kind,
        EventKind::ButtonPress | EventKind::ButtonRelease
    );
    let is_key = matches!(event.kind, EventKind::KeyPress | EventKind::KeyRelease);
    let is_crossing = matches!(event.kind, EventKind::EnterNotify | EventKind::LeaveNotify);
    let has_coords = is_button || is_key || is_crossing;
    let mut out = String::with_capacity(script.len());
    let chars: Vec<char> = script.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] != '%' || i + 1 >= chars.len() {
            out.push(chars[i]);
            i += 1;
            continue;
        }
        let code = chars[i + 1];
        let replacement: Option<String> = match code {
            '%' => Some("%".into()),
            't' => Some(event.wafe_type_name().to_string()),
            'w' => Some(widget_name.to_string()),
            'b' if is_button => Some(event.button.to_string()),
            'x' if has_coords => Some(event.x.to_string()),
            'y' if has_coords => Some(event.y.to_string()),
            'X' if has_coords => Some(event.x_root.to_string()),
            'Y' if has_coords => Some(event.y_root.to_string()),
            'a' if is_key => Some(event.ascii.clone()),
            'k' if is_key => Some(event.keycode.to_string()),
            's' if is_key => Some(event.keysym.clone()),
            _ => None,
        };
        match replacement {
            Some(r) => {
                out.push_str(&r);
                i += 2;
            }
            None => {
                // Invalid combination: left untouched, per the paper.
                out.push('%');
                out.push(code);
                i += 2;
            }
        }
    }
    out
}

/// Substitutes callback percent codes: `%w` plus class clientData.
pub fn substitute_callback(
    script: &str,
    widget_name: &str,
    data: &HashMap<char, String>,
) -> String {
    let mut out = String::with_capacity(script.len());
    let chars: Vec<char> = script.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] != '%' || i + 1 >= chars.len() {
            out.push(chars[i]);
            i += 1;
            continue;
        }
        let code = chars[i + 1];
        if code == '%' {
            out.push('%');
        } else if code == 'w' {
            out.push_str(widget_name);
        } else if let Some(v) = data.get(&code) {
            out.push_str(v);
        } else {
            out.push('%');
            out.push(code);
        }
        i += 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafe_xproto::WindowId;

    fn key_event() -> Event {
        let mut e = Event::new(EventKind::KeyPress, WindowId(1));
        e.keycode = 198;
        e.keysym = "w".into();
        e.ascii = "w".into();
        e.x = 10;
        e.y = 20;
        e.x_root = 110;
        e.y_root = 220;
        e
    }

    fn button_event() -> Event {
        let mut e = Event::new(EventKind::ButtonPress, WindowId(1));
        e.button = 3;
        e.x = 5;
        e.y = 6;
        e.x_root = 105;
        e.y_root = 206;
        e
    }

    #[test]
    fn paper_xev_example() {
        // {<KeyPress>: exec(echo %k %a %s)} prints keycode, ascii, keysym.
        let out = substitute_action("echo %k %a %s", "xev", &key_event());
        assert_eq!(out, "echo 198 w w");
    }

    #[test]
    fn button_codes() {
        let out = substitute_action("%t %w %b %x %y %X %Y", "btn", &button_event());
        assert_eq!(out, "ButtonPress btn 3 5 6 105 206");
    }

    #[test]
    fn key_codes_have_no_button() {
        // %b is invalid for key events: left untouched.
        let out = substitute_action("%b", "w", &key_event());
        assert_eq!(out, "%b");
    }

    #[test]
    fn button_has_no_key_codes() {
        let out = substitute_action("%a %k %s", "w", &button_event());
        assert_eq!(out, "%a %k %s");
    }

    #[test]
    fn crossing_has_coords_but_no_detail() {
        let mut e = Event::new(EventKind::EnterNotify, WindowId(1));
        e.x = 1;
        e.y = 2;
        assert_eq!(
            substitute_action("%t %x %y %b %a", "w", &e),
            "EnterNotify 1 2 %b %a"
        );
    }

    #[test]
    fn unknown_event_type_is_unknown() {
        // The paper: "%t will expand to unknown" for unlisted events.
        let e = Event::new(EventKind::Expose, WindowId(1));
        assert_eq!(substitute_action("%t", "w", &e), "unknown");
    }

    #[test]
    fn percent_percent_literal() {
        assert_eq!(
            substitute_action("100%% done", "w", &key_event()),
            "100% done"
        );
        // Trailing single percent.
        assert_eq!(substitute_action("odd%", "w", &key_event()), "odd%");
    }

    #[test]
    fn callback_w_and_clientdata() {
        // The paper's List example: sV confirmLab label %s.
        let mut data = HashMap::new();
        data.insert('s', "active element".to_string());
        data.insert('i', "4".to_string());
        let out = substitute_callback("sV confirmLab label %s (#%i from %w)", "chooseLst", &data);
        assert_eq!(
            out,
            "sV confirmLab label active element (#4 from chooseLst)"
        );
    }

    #[test]
    fn callback_i_am_w_example() {
        // The paper's c1/c2 example: callback "echo i am %w.".
        let out = substitute_callback("echo i am %w.", "c1", &HashMap::new());
        assert_eq!(out, "echo i am c1.");
        let out = substitute_callback("echo i am %w.", "c2", &HashMap::new());
        assert_eq!(out, "echo i am c2.");
    }

    #[test]
    fn callback_unknown_code_untouched() {
        let out = substitute_callback("%z stays", "w", &HashMap::new());
        assert_eq!(out, "%z stays");
    }
}
