//! Command-line argument splitting.
//!
//! "Command line arguments starting with a double dash (like `--f`) are
//! always handled by the frontend. The remaining arguments are passed to
//! the X Toolkit (to interpret arguments like `-display hostname:0` or
//! `-xrm`), the rest is passed to the application program, if Wafe runs
//! in the frontend mode."

/// The three destinations of command-line arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SplitArgs {
    /// `--*` options for the frontend itself (dashes stripped).
    pub frontend: Vec<String>,
    /// X Toolkit options as `(option, value)` pairs (`-display`, `-xrm`…);
    /// flag-only options carry an empty value.
    pub toolkit: Vec<(String, String)>,
    /// Everything else: passed to the application program.
    pub application: Vec<String>,
}

/// X Toolkit options that consume a following value argument.
const XT_VALUE_OPTIONS: &[&str] = &[
    "-display",
    "-xrm",
    "-geometry",
    "-bg",
    "-background",
    "-fg",
    "-foreground",
    "-bd",
    "-bordercolor",
    "-bw",
    "-borderwidth",
    "-fn",
    "-font",
    "-name",
    "-title",
    "-selectionTimeout",
];

/// X Toolkit options that stand alone.
const XT_FLAG_OPTIONS: &[&str] = &["-iconic", "-rv", "-reverse", "+rv", "-synchronous"];

/// Splits an argument vector per the paper's rules.
pub fn split_args(args: &[String]) -> SplitArgs {
    let mut out = SplitArgs::default();
    let mut i = 0usize;
    while i < args.len() {
        let a = &args[i];
        if let Some(opt) = a.strip_prefix("--") {
            out.frontend.push(opt.to_string());
            i += 1;
        } else if XT_VALUE_OPTIONS.contains(&a.as_str()) {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            out.toolkit.push((a.clone(), value));
            i += 2;
        } else if XT_FLAG_OPTIONS.contains(&a.as_str()) {
            out.toolkit.push((a.clone(), String::new()));
            i += 1;
        } else {
            out.application.push(a.clone());
            i += 1;
        }
    }
    out
}

impl SplitArgs {
    /// The value of an X toolkit option, if present (last wins).
    pub fn toolkit_value(&self, option: &str) -> Option<&str> {
        self.toolkit
            .iter()
            .rev()
            .find(|(o, _)| o == option)
            .map(|(_, v)| v.as_str())
    }

    /// All `-xrm` specification lines, in order.
    pub fn xrm_lines(&self) -> Vec<&str> {
        self.toolkit
            .iter()
            .filter(|(o, _)| o == "-xrm")
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// True if the frontend option is present (`--f file` style options
    /// are returned with their dashes stripped).
    pub fn has_frontend(&self, opt: &str) -> bool {
        self.frontend.iter().any(|f| f == opt)
    }

    /// The value of a `--name=value` frontend option, if present (last
    /// wins). `--backend-timeout=500` yields `Some("500")` for
    /// `frontend_value("backend-timeout")`.
    pub fn frontend_value(&self, name: &str) -> Option<&str> {
        self.frontend
            .iter()
            .rev()
            .find_map(|f| f.strip_prefix(name)?.strip_prefix('='))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_split_rules() {
        let s = split_args(&sv(&[
            "--f",
            "-display",
            "hostname:0",
            "-xrm",
            "*InitCom: [myapp], widget_tree, read_loop.",
            "input.txt",
            "-v",
        ]));
        assert_eq!(s.frontend, vec!["f"]);
        assert_eq!(s.toolkit_value("-display"), Some("hostname:0"));
        assert_eq!(s.xrm_lines().len(), 1);
        assert_eq!(s.application, vec!["input.txt", "-v"]);
    }

    #[test]
    fn flag_options() {
        let s = split_args(&sv(&["-iconic", "-rv", "app-arg"]));
        assert_eq!(s.toolkit.len(), 2);
        assert_eq!(s.application, vec!["app-arg"]);
    }

    #[test]
    fn multiple_xrm() {
        let s = split_args(&sv(&["-xrm", "*a: 1", "-xrm", "*b: 2"]));
        assert_eq!(s.xrm_lines(), vec!["*a: 1", "*b: 2"]);
    }

    #[test]
    fn value_option_at_end_without_value() {
        let s = split_args(&sv(&["-display"]));
        assert_eq!(s.toolkit_value("-display"), Some(""));
    }

    #[test]
    fn frontend_value_options() {
        let s = split_args(&sv(&[
            "--backend-timeout=500",
            "--backend-retries=3",
            "--telemetry",
        ]));
        assert_eq!(s.frontend_value("backend-timeout"), Some("500"));
        assert_eq!(s.frontend_value("backend-retries"), Some("3"));
        // A flag without `=` is not a value option...
        assert_eq!(s.frontend_value("telemetry"), None);
        // ...and a prefix match without `=` does not leak.
        assert_eq!(s.frontend_value("backend"), None);
        // Last occurrence wins.
        let s2 = split_args(&sv(&["--backend-retries=1", "--backend-retries=9"]));
        assert_eq!(s2.frontend_value("backend-retries"), Some("9"));
    }

    #[test]
    fn empty() {
        let s = split_args(&[]);
        assert_eq!(s, SplitArgs::default());
        assert!(!s.has_frontend("f"));
    }
}
