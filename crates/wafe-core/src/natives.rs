//! Native handlers backing the spec-generated commands.
//!
//! The spec layer converts Tcl string arguments into typed
//! [`NativeValue`]s (the generated "conversion, argument passing, error
//! messages" of the paper's code generator) and dispatches to the handler
//! registered under the C function name.

use std::collections::HashMap;
use std::rc::Rc;

use wafe_tcl::{list_join, CmdResult, Interp, TclError, Value};
use wafe_xproto::GrabKind;
use wafe_xt::{WidgetId, XtApp};

/// A typed argument produced by spec-driven conversion.
#[derive(Debug, Clone)]
pub enum NativeValue {
    /// A resolved widget.
    Widget(WidgetId),
    /// A boolean.
    Bool(bool),
    /// An integer (Int/Cardinal/Position/Dimension).
    Int(i64),
    /// A string.
    Str(String),
    /// A grab kind.
    Grab(GrabKind),
    /// The name of a Tcl output variable.
    Var(String),
}

impl NativeValue {
    fn widget(&self) -> WidgetId {
        match self {
            NativeValue::Widget(w) => *w,
            _ => panic!("spec conversion produced wrong type (expected Widget)"),
        }
    }

    fn boolean(&self) -> bool {
        match self {
            NativeValue::Bool(b) => *b,
            _ => panic!("spec conversion produced wrong type (expected Boolean)"),
        }
    }

    fn int(&self) -> i64 {
        match self {
            NativeValue::Int(i) => *i,
            _ => panic!("spec conversion produced wrong type (expected Int)"),
        }
    }

    fn string(&self) -> &str {
        match self {
            NativeValue::Str(s) => s,
            _ => panic!("spec conversion produced wrong type (expected String)"),
        }
    }

    fn grab(&self) -> GrabKind {
        match self {
            NativeValue::Grab(g) => *g,
            _ => panic!("spec conversion produced wrong type (expected GrabKind)"),
        }
    }

    fn var(&self) -> &str {
        match self {
            NativeValue::Var(v) => v,
            _ => panic!("spec conversion produced wrong type (expected VarName)"),
        }
    }
}

/// Signature of a native handler.
pub type NativeFn = Rc<dyn Fn(&mut Interp, &mut XtApp, &[NativeValue]) -> CmdResult>;

/// Builds the full native registry, keyed by C function name.
pub fn native_registry() -> HashMap<&'static str, NativeFn> {
    let mut m: HashMap<&'static str, NativeFn> = HashMap::new();
    let mut add =
        |name: &'static str,
         f: &'static dyn Fn(&mut Interp, &mut XtApp, &[NativeValue]) -> CmdResult| {
            m.insert(name, Rc::new(f));
        };

    add("XtDestroyWidget", &|_, app, a| {
        app.destroy_widget(a[0].widget());
        Ok(Value::empty())
    });
    add("XtManageChild", &|_, app, a| {
        app.manage_child(a[0].widget());
        Ok(Value::empty())
    });
    add("XtUnmanageChild", &|_, app, a| {
        app.unmanage_child(a[0].widget());
        Ok(Value::empty())
    });
    add("XtPopup", &|_, app, a| {
        app.popup(a[0].widget(), a[1].grab());
        Ok(Value::empty())
    });
    add("XtPopdown", &|_, app, a| {
        app.popdown(a[0].widget());
        Ok(Value::empty())
    });
    add("XtSetSensitive", &|_, app, a| {
        let v = if a[1].boolean() { "true" } else { "false" };
        app.set_resource(a[0].widget(), "sensitive", v)
            .map_err(|e| TclError::Error(e.to_string()))?;
        Ok(Value::empty())
    });
    add("XtIsRealized", &|_, app, a| {
        Ok(bool_str(app.is_realized(a[0].widget())))
    });
    add("XtIsSensitive", &|_, app, a| {
        Ok(bool_str(app.is_sensitive(a[0].widget())))
    });
    add("XtIsManaged", &|_, app, a| {
        Ok(bool_str(app.widget(a[0].widget()).managed))
    });
    add("XtIsShell", &|_, app, a| {
        Ok(bool_str(app.widget(a[0].widget()).class.is_shell))
    });
    add("XtParent", &|_, app, a| {
        Ok(app
            .widget(a[0].widget())
            .parent
            .map(|p| app.widget(p).name.clone())
            .unwrap_or_default()
            .into())
    });
    add("XtName", &|_, app, a| {
        Ok(app.widget(a[0].widget()).name.clone().into())
    });
    add("XtClass", &|_, app, a| {
        Ok(app.widget(a[0].widget()).class.name.clone().into())
    });
    add("XtGetResourceList", &|interp, app, a| {
        // The paper's example: returns the count, puts the name list into
        // the variable named by the second argument.
        let names = app.get_resource_list(a[0].widget());
        let count = names.len();
        interp.set_var(a[1].var(), list_join(&names))?;
        Ok(Value::from_int(count as i64))
    });
    add("XtMoveWidget", &|_, app, a| {
        let w = a[0].widget();
        app.put_resource(w, "x", wafe_xt::ResourceValue::Pos(a[1].int() as i32));
        app.put_resource(w, "y", wafe_xt::ResourceValue::Pos(a[2].int() as i32));
        let root = app.root_of(w);
        if app.is_realized(root) {
            app.sync_geometry(root);
        }
        Ok(Value::empty())
    });
    add("XtResizeWidget", &|_, app, a| {
        let w = a[0].widget();
        app.put_resource(
            w,
            "width",
            wafe_xt::ResourceValue::Dim(a[1].int().max(1) as u32),
        );
        app.put_resource(
            w,
            "height",
            wafe_xt::ResourceValue::Dim(a[2].int().max(1) as u32),
        );
        app.put_resource(
            w,
            "borderWidth",
            wafe_xt::ResourceValue::Dim(a[3].int().max(0) as u32),
        );
        let root = app.root_of(w);
        if app.is_realized(root) {
            app.do_layout(root);
            app.sync_geometry(root);
            app.redisplay_tree(root);
        }
        Ok(Value::empty())
    });
    add("XtAddGrab", &|_, app, a| {
        let w = a[0].widget();
        let di = app.widget(w).display_idx;
        if let Some(win) = app.widget(w).window {
            app.displays[di].add_grab(win, a[1].grab());
        }
        Ok(Value::empty())
    });
    add("XtRemoveGrab", &|_, app, a| {
        let w = a[0].widget();
        let di = app.widget(w).display_idx;
        if let Some(win) = app.widget(w).window {
            app.displays[di].remove_grab(win);
        }
        Ok(Value::empty())
    });
    add("XtOwnSelection", &|_, app, a| {
        let w = a[0].widget();
        let di = app.widget(w).display_idx;
        let win = app.widget(w).window.unwrap_or(app.displays[di].root());
        let atom = app.displays[di].intern_atom(a[1].string());
        app.displays[di].own_selection(atom, win, a[2].string().to_string());
        Ok(Value::empty())
    });
    add("XtGetSelectionValue", &|_, app, a| {
        let w = a[0].widget();
        let di = app.widget(w).display_idx;
        let atom = app.displays[di].intern_atom(a[1].string());
        Ok(app.displays[di].get_selection(atom).unwrap_or("").into())
    });
    add("XtDisownSelection", &|_, app, a| {
        let w = a[0].widget();
        let di = app.widget(w).display_idx;
        let win = app.widget(w).window.unwrap_or(app.displays[di].root());
        let atom = app.displays[di].intern_atom(a[1].string());
        app.displays[di].clear_selection(atom, win);
        Ok(Value::empty())
    });
    add("XtInstallAccelerators", &|_, app, a| {
        app.install_accelerators(a[0].widget(), a[1].widget());
        Ok(Value::empty())
    });
    add("XtInstallAllAccelerators", &|_, app, a| {
        app.install_all_accelerators(a[0].widget(), a[1].widget());
        Ok(Value::empty())
    });
    add("XtNameToWidget", &|_, app, a| {
        // Resolves a dotted child path ("form.quit") relative to a root.
        let mut cur = a[0].widget();
        'outer: for seg in a[1].string().split('.').filter(|s| !s.is_empty()) {
            let children: Vec<WidgetId> = app
                .widget(cur)
                .children
                .iter()
                .chain(app.widget(cur).popups.iter())
                .copied()
                .collect();
            for c in children {
                if app.widget(c).name == seg {
                    cur = c;
                    continue 'outer;
                }
            }
            return Err(TclError::Error(format!(
                "no child \"{seg}\" under \"{}\"",
                app.widget(cur).name
            )));
        }
        Ok(app.widget(cur).name.clone().into())
    });
    add("XtTranslateCoords", &|interp, app, a| {
        let w = a[0].widget();
        let di = app.widget(w).display_idx;
        let pos = match app.widget(w).window {
            Some(win) => app.displays[di].abs_position(win),
            None => wafe_xproto::Point::new(0, 0),
        };
        interp.set_elem(a[1].var(), "x", pos.x.to_string())?;
        interp.set_elem(a[1].var(), "y", pos.y.to_string())?;
        Ok("2".into())
    });

    // ----- Athena programmatic interface -----
    add("XawListHighlight", &|_, app, a| {
        wafe_xaw::list::list_highlight(app, a[0].widget(), a[1].int().max(0) as usize);
        Ok(Value::empty())
    });
    add("XawListUnhighlight", &|_, app, a| {
        wafe_xaw::list::list_unhighlight(app, a[0].widget());
        Ok(Value::empty())
    });
    add("XawListChange", &|_, app, a| {
        let items: Vec<String> = a[1]
            .string()
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        wafe_xaw::list::list_change(app, a[0].widget(), items);
        Ok(Value::empty())
    });
    add("XawListShowCurrent", &|interp, app, a| {
        let (idx, item) = wafe_xaw::list::list_show_current(app, a[0].widget());
        interp.set_var(a[1].var(), &item)?;
        Ok(idx.to_string().into())
    });
    add("XawScrollbarSetThumb", &|_, app, a| {
        wafe_xaw::scrollbar::scrollbar_set_thumb(app, a[0].widget(), a[1].int(), a[2].int());
        Ok(Value::empty())
    });
    add("XawDialogGetValueString", &|_, app, a| {
        Ok(wafe_xaw::dialog::dialog_get_value(app, a[0].widget()).into())
    });
    add("XawDialogAddButton", &|_, app, a| {
        wafe_xaw::dialog::dialog_add_button(app, a[0].widget(), a[1].string(), a[2].string())
            .map_err(|e| TclError::Error(e.to_string()))?;
        Ok(Value::empty())
    });
    add("XawStripChartAddSample", &|_, app, a| {
        let v: f64 = a[1].string().trim().parse().map_err(|_| {
            TclError::Error(format!("expected number but got \"{}\"", a[1].string()))
        })?;
        wafe_xaw::chart::stripchart_add_sample(app, a[0].widget(), v);
        Ok(Value::empty())
    });
    add("XawTextGetString", &|_, app, a| {
        Ok(app.str_resource(a[0].widget(), "string").into())
    });
    add("XawViewportSetCoordinates", &|_, app, a| {
        wafe_xaw::paned::viewport_scroll(app, a[0].widget(), a[1].int() as i32, a[2].int() as i32);
        Ok(Value::empty())
    });
    add("XawFormDoLayout", &|_, app, a| {
        if a[1].boolean() {
            let root = app.root_of(a[0].widget());
            app.do_layout(root);
            if app.is_realized(root) {
                app.sync_geometry(root);
            }
        }
        Ok(Value::empty())
    });

    // ----- Rdd drag-and-drop extension -----
    add("RddDragSource", &|_, app, a| {
        wafe_xt::dnd::make_drag_source(app, a[0].widget(), a[1].string());
        Ok(Value::empty())
    });
    add("RddDropTarget", &|_, app, a| {
        wafe_xt::dnd::make_drop_target(app, a[0].widget(), a[1].string());
        Ok(Value::empty())
    });

    // ----- Motif programmatic interface -----
    add("XmCascadeButtonHighlight", &|_, app, a| {
        wafe_motif::widgets::cascade_button_highlight(app, a[0].widget(), a[1].boolean());
        Ok(Value::empty())
    });
    add("XmCommandAppendValue", &|_, app, a| {
        wafe_motif::widgets::command_append_value(app, a[0].widget(), a[1].string());
        Ok(Value::empty())
    });
    add("XmCommandError", &|_, app, a| {
        wafe_motif::widgets::command_error(app, a[0].widget(), a[1].string());
        Ok(Value::empty())
    });

    m
}

fn bool_str(b: bool) -> Value {
    Value::from_int(b as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated() {
        let r = native_registry();
        assert!(r.len() >= 30);
        assert!(r.contains_key("XtDestroyWidget"));
        assert!(r.contains_key("XtGetResourceList"));
        assert!(r.contains_key("XmCascadeButtonHighlight"));
    }
}
