//! Wafe — Widget\[Athena\]FrontEnd — the paper's primary contribution.
//!
//! ```text
//! Wafe = Tcl + (Intrinsics + Widgets + Converters + Ext)
//!            + (Memory Management + Communication)
//! ```
//!
//! This crate is the part the paper itself contributes on top of the
//! substrates: the Tcl command layer over Xt/Xaw/Motif. It provides:
//!
//! * the [`naming`] rules (`XtDestroyWidget` → `destroyWidget`,
//!   `XmCommandAppendValue` → `mCommandAppendValue`),
//! * the [`spec`] language and parser — the code generator that produces
//!   "about 60%" of the command layer from high-level descriptions,
//! * the [`percent`] substitution engine for callback clientData and the
//!   `exec` action's event codes,
//! * command-line [`args`] splitting (`--*` → frontend, X args →
//!   toolkit, rest → application), and
//! * the [`session::WafeSession`], the embeddable frontend with all
//!   commands registered, the automatic `topLevel` shell, virtual-time
//!   timeouts and the host-call pump.
//!
//! Interactive mode, file mode and frontend mode are thin wrappers over
//! the session; frontend-mode process plumbing lives in `wafe-ipc`.

pub mod args;
pub mod commands;
pub mod naming;
pub mod natives;
pub mod percent;
pub mod session;
pub mod snapshot;
pub mod spec;

pub use args::{split_args, SplitArgs};
pub use session::{ControlHandler, Flavor, WafeSession};
pub use snapshot::{RestoreReport, SessionSnapshot, WidgetSnap, FORMAT_VERSION};
