//! The Wafe session: Tcl interpreter + X Toolkit, wired together.
//!
//! A [`WafeSession`] is the embeddable form of the `wafe` program: it
//! owns the interpreter and the application context, registers the
//! spec-generated and hand-written commands, creates the automatic
//! `topLevel` shell, installs the global `exec` action and routes
//! callback/action scripts (with percent substitution) back into the
//! interpreter — the analogue of Xt dispatching into application C code.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use wafe_tcl::error::wrong_num_args;
use wafe_tcl::{CmdResult, Interp, OutputSink, TclError, Value};
use wafe_trace::Telemetry;
use wafe_xproto::GrabKind;
use wafe_xt::app::HostCallKind;
use wafe_xt::{XtApp, XtError};

use crate::args::SplitArgs;
use crate::natives::{native_registry, NativeFn, NativeValue};
use crate::percent;
use crate::spec::{parse_spec, ClassSpec, CommandSpec, SpecFile, SpecType};

/// Which widget set the binary was built for. The paper: "in the current
/// version it is not possible to mix Athena and OSF/Motif widgets and
/// converters freely" — `wafe` is Athena, `mofe` is Motif. `Both` is a
/// reproduction extension used by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Athena widgets (`wafe`).
    Athena,
    /// OSF/Motif widgets (`mofe`).
    Motif,
    /// Everything registered (reproduction extension).
    Both,
}

/// The embedded specification files.
pub const XT_SPEC: &str = include_str!("../specs/xt.wspec");
/// Shell classes, present in every flavour.
pub const SHELLS_SPEC: &str = include_str!("../specs/shells.wspec");
/// Extensions (Rdd drag-and-drop), present in every flavour.
pub const EXT_SPEC: &str = include_str!("../specs/ext.wspec");
/// Athena specification.
pub const XAW_SPEC: &str = include_str!("../specs/xaw.wspec");
/// Motif specification.
pub const MOTIF_SPEC: &str = include_str!("../specs/motif.wspec");

/// A handler an outer layer (the wafe-ipc backend supervisor) installs
/// into [`WafeSession::controls`]; receives the full argv of the
/// dispatching command.
pub type ControlHandler = Box<dyn FnMut(&[String]) -> Result<String, String>>;

/// A pending timeout (virtual-time based, deterministic).
pub(crate) struct Timer {
    pub(crate) deadline_ms: u64,
    pub(crate) script: String,
}

/// The Wafe session.
///
/// # Examples
///
/// ```
/// use wafe_core::{Flavor, WafeSession};
///
/// let mut session = WafeSession::new(Flavor::Athena);
/// session.eval("label l topLevel label {Hi Man}").unwrap();
/// session.eval("realize").unwrap();
/// assert_eq!(session.eval("gV l label").unwrap(), "Hi Man");
/// assert_eq!(session.eval("getResourceList l rv").unwrap(), "42");
/// ```
pub struct WafeSession {
    /// The Tcl interpreter with all Wafe commands registered.
    pub interp: Interp,
    /// The toolkit application context.
    pub app: Rc<RefCell<XtApp>>,
    pub(crate) quit: Rc<Cell<bool>>,
    pub(crate) timers: Rc<RefCell<Vec<Timer>>>,
    /// Idle work procs (`XtAppAddWorkProc`): `(id, script)`; a script
    /// evaluating to a true value removes itself, like returning `True`
    /// from a C work procedure.
    pub(crate) work_procs: Rc<RefCell<Vec<(u64, String)>>>,
    pub(crate) next_work_id: Rc<Cell<u64>>,
    pub(crate) clock_ms: Rc<Cell<u64>>,
    spec: SpecFile,
    pub(crate) handwritten: Rc<Cell<usize>>,
    /// Which widget set is active.
    pub flavor: Flavor,
    output: Rc<RefCell<String>>,
    /// Configured by `setCommunicationVariable`: (variable, byte count,
    /// completion script). Consumed by the frontend-mode channel reader.
    pub comm_var: Rc<RefCell<Option<(String, usize, String)>>>,
    /// The fd number `getChannel` reports (-1 without a frontend).
    pub channel_fd: Rc<Cell<i64>>,
    /// The telemetry store shared by every layer of this session
    /// (interpreter, toolkit, pipe protocol). Enabled at construction
    /// when `WAFE_TELEMETRY` is set; scripts toggle it with the
    /// `telemetry enable|disable` command.
    pub telemetry: Telemetry,
    /// Control handlers installed by outer layers, keyed by command name
    /// (`backend`, `faultpoint`). wafe-core registers the commands; an
    /// embedding frontend supplies the behaviour. Without a handler the
    /// commands report that no backend is attached.
    pub controls: Rc<RefCell<HashMap<String, ControlHandler>>>,
}

impl WafeSession {
    /// Creates a session for the given flavour, with the automatic
    /// `topLevel` application shell.
    pub fn new(flavor: Flavor) -> Self {
        let telemetry = Telemetry::from_env();
        let mut app = XtApp::new();
        app.telemetry = telemetry.clone();
        match flavor {
            Flavor::Athena => wafe_xaw::register_all(&mut app),
            Flavor::Motif => {
                wafe_xaw::shell::register(&mut app);
                wafe_motif::register_all(&mut app);
            }
            Flavor::Both => {
                wafe_xaw::register_all(&mut app);
                wafe_motif::register_all(&mut app);
            }
        }
        if flavor != Flavor::Athena {
            // The mofe flavour installs the XmString compound converter.
            app.converters.register(wafe_xt::ResType::Compound, |s, _| {
                Ok(wafe_xt::ResourceValue::Compound(
                    wafe_motif::parse_xmstring(s),
                ))
            });
        }
        // The global `exec` action: "Wafe registers a global action exec
        // which accepts any Wafe command as argument."
        app.global_actions.add("exec", |app, w, event, args| {
            let widget_name = app.widget(w).name.clone();
            app.queue_host_call(wafe_xt::HostCall {
                widget: w,
                widget_name,
                script: args.join(" "),
                event: Some(event.clone()),
                data: HashMap::new(),
                kind: HostCallKind::Action,
            });
        });
        let top = app
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .expect("topLevel creation cannot fail");
        let _ = top;

        let mut interp = Interp::new();
        interp.set_telemetry(telemetry.clone());
        let output = Rc::new(RefCell::new(String::new()));
        interp.set_output(OutputSink::Buffer(output.clone()));

        let mut session = WafeSession {
            interp,
            app: Rc::new(RefCell::new(app)),
            quit: Rc::new(Cell::new(false)),
            timers: Rc::new(RefCell::new(Vec::new())),
            work_procs: Rc::new(RefCell::new(Vec::new())),
            next_work_id: Rc::new(Cell::new(1)),
            clock_ms: Rc::new(Cell::new(0)),
            spec: SpecFile::default(),
            handwritten: Rc::new(Cell::new(0)),
            flavor,
            output,
            comm_var: Rc::new(RefCell::new(None)),
            channel_fd: Rc::new(Cell::new(-1)),
            telemetry,
            controls: Rc::new(RefCell::new(HashMap::new())),
        };
        session.load_specs();
        crate::commands::register_handwritten(&mut session);
        session
    }

    fn load_specs(&mut self) {
        let mut spec = parse_spec(XT_SPEC).expect("xt.wspec must parse");
        spec.extend(parse_spec(SHELLS_SPEC).expect("shells.wspec must parse"));
        spec.extend(parse_spec(EXT_SPEC).expect("ext.wspec must parse"));
        match self.flavor {
            Flavor::Athena => spec.extend(parse_spec(XAW_SPEC).expect("xaw.wspec must parse")),
            Flavor::Motif => spec.extend(parse_spec(MOTIF_SPEC).expect("motif.wspec must parse")),
            Flavor::Both => {
                spec.extend(parse_spec(XAW_SPEC).expect("xaw.wspec must parse"));
                spec.extend(parse_spec(MOTIF_SPEC).expect("motif.wspec must parse"));
            }
        }
        let natives = native_registry();
        for cs in spec.classes.clone() {
            self.register_class_command(&cs);
        }
        for cs in spec.commands.clone() {
            match natives.get(cs.c_name.as_str()) {
                Some(native) => self.register_spec_command(&cs, native.clone()),
                None => self
                    .app
                    .borrow_mut()
                    .warn(format!("spec command {} has no native handler", cs.c_name)),
            }
        }
        self.spec = spec;
    }

    /// Registers a widget-creation command from a `~widgetClass` block.
    fn register_class_command(&mut self, cs: &ClassSpec) {
        let app_rc = self.app.clone();
        let class_name = cs.class.clone();
        let usage = format!(
            "{} name father ?unmanaged? ?resource value ...?",
            cs.command
        );
        self.interp.register(&cs.command, move |_interp, argv| {
            if argv.len() < 3 {
                return Err(wrong_num_args(&usage));
            }
            let name = argv[1].clone();
            let father = &argv[2];
            let mut rest = &argv[3..];
            let mut managed = true;
            if rest.first().map(|s| s == "unmanaged").unwrap_or(false) {
                managed = false;
                rest = &rest[1..];
            }
            if rest.len() % 2 != 0 {
                return Err(TclError::error(
                    "resource arguments must come in attribute value pairs",
                ));
            }
            let init: Vec<(String, String)> = rest
                .chunks(2)
                .map(|c| (c[0].to_string(), c[1].to_string()))
                .collect();
            let mut app = app_rc.borrow_mut();
            let class = app.class(&class_name).ok_or_else(|| {
                TclError::Error(format!(
                    "widget class \"{class_name}\" not available in this Wafe binary"
                ))
            })?;
            let father_id = app.lookup(father);
            let created = match father_id {
                Some(f) if class.is_shell => {
                    // A shell with a widget father is a popup shell.
                    let di = app.widget(f).display_idx;
                    match app.create_widget(&name, &class_name, None, di, &init, managed) {
                        Ok(id) => {
                            app.add_popup(f, id);
                            Ok(id)
                        }
                        Err(e) => Err(e),
                    }
                }
                Some(f) => app.create_widget(&name, &class_name, Some(f), 0, &init, managed),
                None if class.is_shell => {
                    // "applicationShell top2 dec4:0": the father names a
                    // display instead of a widget.
                    let di = app
                        .displays
                        .iter()
                        .position(|d| d.name == *father)
                        .unwrap_or_else(|| app.open_display(father));
                    app.create_widget(&name, &class_name, None, di, &init, managed)
                }
                None => Err(XtError::UnknownWidget(father.to_string())),
            };
            created
                .map(|_| name)
                .map_err(|e| TclError::Error(e.to_string()))
        });
    }

    /// Registers a function command from a spec block, wrapping the
    /// native handler with generated argument conversion.
    fn register_spec_command(&mut self, cs: &CommandSpec, native: NativeFn) {
        let app_rc = self.app.clone();
        let inputs = cs.inputs.clone();
        let outputs = cs.outputs.clone();
        let usage = {
            let args: Vec<String> = inputs
                .iter()
                .map(|t| format!("{t:?}").to_lowercase())
                .chain(outputs.iter().map(|_| "varName".to_string()))
                .collect();
            format!("{} {}", cs.command, args.join(" "))
        };
        self.interp.register(&cs.command, move |interp, argv| {
            let expected = 1 + inputs.len() + outputs.len();
            if argv.len() != expected {
                return Err(wrong_num_args(&usage));
            }
            let mut vals: Vec<NativeValue> = Vec::with_capacity(inputs.len() + outputs.len());
            {
                let app = app_rc.borrow();
                for (i, ty) in inputs.iter().enumerate() {
                    vals.push(convert_arg(&app, *ty, &argv[1 + i])?);
                }
            }
            for (j, _) in outputs.iter().enumerate() {
                vals.push(NativeValue::Var(argv[1 + inputs.len() + j].to_string()));
            }
            let mut app = app_rc.borrow_mut();
            native(interp, &mut app, &vals)
        });
    }

    /// Registers a hand-written command, counting it for the generated /
    /// hand-written split the paper reports (E13).
    pub fn register_handwritten_command<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&mut Interp, &[Value]) -> CmdResult + 'static,
    {
        self.interp.register(name, f);
        self.handwritten.set(self.handwritten.get() + 1);
    }

    // ----- evaluation and pumping ------------------------------------------

    /// Evaluates a script, then pumps events/callbacks to quiescence.
    pub fn eval(&mut self, script: &str) -> CmdResult {
        let r = self.interp.eval(script);
        self.pump();
        r
    }

    /// Dispatches pending X events and drains host calls until the
    /// system is quiescent, then gives each idle work proc one turn
    /// (Xt runs work procedures only when no events are pending).
    pub fn pump(&mut self) {
        pump(&mut self.interp, &self.app, &self.quit);
        if self.quit.get() {
            return;
        }
        let procs: Vec<(u64, String)> = self.work_procs.borrow().clone();
        for (id, script) in procs {
            let done = match self.interp.eval(&script) {
                Ok(v) => matches!(v.trim(), "1" | "true" | "yes" | "on"),
                Err(e) => {
                    if e.is_error() {
                        self.app.borrow_mut().warn(format!("work proc failed: {e}"));
                    }
                    true // Failing work procs are removed, like Xt.
                }
            };
            if done {
                self.work_procs.borrow_mut().retain(|(i, _)| *i != id);
            }
        }
        pump(&mut self.interp, &self.app, &self.quit);
    }

    /// True once the `quit` command ran.
    pub fn quit_requested(&self) -> bool {
        self.quit.get()
    }

    /// Shared quit flag (for the binary and the frontend loop).
    pub fn quit_flag(&self) -> Rc<Cell<bool>> {
        self.quit.clone()
    }

    /// Takes everything `echo`/`puts` wrote since the last call.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut *self.output.borrow_mut())
    }

    /// Routes interpreter output to a callback instead of the internal
    /// buffer (frontend mode routes it to the application's stdin).
    pub fn set_output_callback<F>(&mut self, f: F)
    where
        F: FnMut(&str) + 'static,
    {
        self.interp
            .set_output(OutputSink::Func(Rc::new(RefCell::new(f))));
    }

    // ----- virtual time ------------------------------------------------------

    /// Schedules a script after `ms` virtual milliseconds.
    pub fn add_timeout(&mut self, ms: u64, script: &str) {
        let deadline_ms = self.clock_ms.get() + ms;
        self.timers.borrow_mut().push(Timer {
            deadline_ms,
            script: script.to_string(),
        });
    }

    /// Advances the virtual clock, firing due timeouts in order.
    pub fn advance_time(&mut self, ms: u64) {
        let target = self.clock_ms.get() + ms;
        loop {
            let next = {
                let timers = self.timers.borrow();
                timers
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.deadline_ms <= target)
                    .min_by_key(|(_, t)| t.deadline_ms)
                    .map(|(i, t)| (i, t.deadline_ms))
            };
            match next {
                Some((i, deadline)) => {
                    let t = self.timers.borrow_mut().remove(i);
                    self.clock_ms.set(deadline);
                    if let Err(e) = self.interp.eval(&t.script) {
                        if e.is_error() {
                            self.app
                                .borrow_mut()
                                .warn(format!("timeout script failed: {e}"));
                        }
                    }
                    self.pump();
                }
                None => break,
            }
        }
        self.clock_ms.set(target);
    }

    /// Number of pending timeouts.
    pub fn pending_timeouts(&self) -> usize {
        self.timers.borrow().len()
    }

    /// The virtual clock in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.clock_ms.get()
    }

    // ----- statistics ---------------------------------------------------------

    /// `(generated, handwritten)` command counts — the paper: "About 60%
    /// of the code is generated automatically".
    pub fn command_stats(&self) -> (usize, usize) {
        (self.spec.generated_count(), self.handwritten.get())
    }

    /// The Markdown short reference guide generated from the specs.
    pub fn reference_guide(&self) -> String {
        self.spec.reference_guide()
    }

    /// The parsed specification (for the architecture experiment).
    pub fn spec(&self) -> &SpecFile {
        &self.spec
    }

    // ----- argv -----------------------------------------------------------------

    /// Applies the X-toolkit portion of the command line: `-display`
    /// renames the default display, `-xrm` lines merge into the resource
    /// database.
    pub fn apply_toolkit_args(&mut self, args: &SplitArgs) {
        let mut app = self.app.borrow_mut();
        if let Some(d) = args.toolkit_value("-display") {
            if !d.is_empty() {
                app.displays[0].name = d.to_string();
            }
        }
        for line in args.xrm_lines() {
            app.resource_db.insert_line(line);
        }
    }

    /// Runs a file-mode script: strips the `#!` line if present, then
    /// evaluates the rest.
    pub fn run_file_text(&mut self, text: &str) -> CmdResult {
        let body = if text.starts_with("#!") {
            match text.find('\n') {
                Some(nl) => &text[nl + 1..],
                None => "",
            }
        } else {
            text
        };
        self.eval(body)
    }
}

/// Converts one Tcl argument per the spec type.
fn convert_arg(app: &XtApp, ty: SpecType, text: &str) -> Result<NativeValue, TclError> {
    match ty {
        SpecType::Widget => app
            .lookup(text)
            .map(NativeValue::Widget)
            .ok_or_else(|| TclError::Error(format!("unknown widget \"{text}\""))),
        SpecType::Boolean => match text.to_lowercase().as_str() {
            "true" | "yes" | "on" | "1" => Ok(NativeValue::Bool(true)),
            "false" | "no" | "off" | "0" => Ok(NativeValue::Bool(false)),
            _ => Err(TclError::Error(format!(
                "expected boolean but got \"{text}\""
            ))),
        },
        SpecType::Int | SpecType::Cardinal | SpecType::Position | SpecType::Dimension => text
            .trim()
            .parse::<i64>()
            .map(NativeValue::Int)
            .map_err(|_| TclError::Error(format!("expected integer but got \"{text}\""))),
        SpecType::String => Ok(NativeValue::Str(text.to_string())),
        SpecType::GrabKind => match text {
            "none" => Ok(NativeValue::Grab(GrabKind::None)),
            "exclusive" => Ok(NativeValue::Grab(GrabKind::Exclusive)),
            "nonexclusive" => Ok(NativeValue::Grab(GrabKind::Nonexclusive)),
            _ => Err(TclError::Error(format!(
                "expected none, exclusive, or nonexclusive but got \"{text}\""
            ))),
        },
        SpecType::VarName => Ok(NativeValue::Var(text.to_string())),
        SpecType::Void => Err(TclError::error("void is not an argument type")),
    }
}

/// Dispatches pending X events and drains queued host calls (callback
/// and action scripts) into the interpreter, with percent substitution,
/// until quiescent. Shared by session methods and command closures.
pub fn pump(interp: &mut Interp, app: &Rc<RefCell<XtApp>>, quit: &Rc<Cell<bool>>) {
    for _ in 0..1000 {
        let dispatched = app.borrow_mut().dispatch_pending();
        let calls = app.borrow_mut().take_host_calls();
        if dispatched == 0 && calls.is_empty() {
            break;
        }
        for call in calls {
            if quit.get() {
                return;
            }
            let script = match (&call.kind, &call.event) {
                (HostCallKind::Action, Some(e)) => {
                    percent::substitute_action(&call.script, &call.widget_name, e)
                }
                _ => percent::substitute_callback(&call.script, &call.widget_name, &call.data),
            };
            // Dispatch latency of the Xt→Tcl seam: percent substitution
            // is already done, so this times the script run itself.
            let timer = interp.telemetry().timer();
            let result = interp.eval(&script);
            if timer.is_some() {
                let tel = interp.telemetry().clone();
                match call.kind {
                    HostCallKind::Action => {
                        tel.count("xt.actions.dispatched");
                        tel.observe_since("xt.action.dispatch", timer);
                    }
                    HostCallKind::Callback(_) => {
                        tel.count("xt.callbacks.dispatched");
                        tel.observe_since("xt.callback.dispatch", timer);
                    }
                }
            }
            if let Err(e) = result {
                if e.is_error() {
                    app.borrow_mut().warn(format!(
                        "error in callback of \"{}\": {}",
                        call.widget_name,
                        e.message()
                    ));
                }
            }
        }
    }
}
