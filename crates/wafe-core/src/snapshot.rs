//! Session checkpointing: a versioned, length-prefixed binary snapshot
//! of a [`WafeSession`] — the rolling-restart foundation behind
//! waferd's park/restore (`docs/checkpoint.md`).
//!
//! A snapshot has five sections, each length-prefixed so a reader can
//! refuse a truncated blob loudly:
//!
//! 1. **Interp** — global variables and procs, rep-preserving
//!    ([`wafe_tcl::InterpSnapshot`]).
//! 2. **Widgets** — structural creation records (name, class, parent,
//!    managed, re-convertible resource values, class-private state),
//!    replayed through `create_widget`/`set_resource` on restore.
//! 3. **Resource DB** — the Xrm database's specification lines, in
//!    insertion order (precedence ties resolve identically on replay).
//! 4. **Outbound** — application-bound lines queued at capture time
//!    (the supervisor's bounded queue in frontend mode, the protocol
//!    engine's pending lines in serve mode); the embedding replays them
//!    in order after restore.
//! 5. **Displays** (format 2) — per-display damage state: frame
//!    sequence number, compositing flag, and the pending-frame damage
//!    rectangles, so a parked session that owes its remote client a
//!    frame still owes it after restore.
//!
//! ## Versioning policy
//!
//! The header is the magic `WAFESNAP` plus a `u32` format version.
//! A reader accepts exactly its own [`FORMAT_VERSION`] and rejects
//! anything else with an error naming both versions — **never** a
//! best-effort decode of an unknown layout. Any layout change, however
//! small, bumps the version; parked sessions do not survive a format
//! bump (they are re-creatable state, and a silent mis-decode is worse
//! than an explicit re-login).

use wafe_tcl::snapshot::{wire, InterpSnapshot};

use crate::session::WafeSession;

/// The 8-byte magic every snapshot starts with.
pub const MAGIC: &[u8; 8] = b"WAFESNAP";

/// The format version this build writes and the only one it reads.
/// Version 2 added the display damage section (PR 10).
pub const FORMAT_VERSION: u32 = 2;

/// One widget's structural creation record.
#[derive(Debug, Clone, PartialEq)]
pub struct WidgetSnap {
    /// Instance name.
    pub name: String,
    /// Class name.
    pub class: String,
    /// Parent instance name (None for shells created on the display).
    pub parent: Option<String>,
    /// Created managed?
    pub managed: bool,
    /// Had a window at capture time (re-realized on restore).
    pub realized: bool,
    /// Creation arguments rebuilding the non-default resource state.
    pub init: Vec<(String, String)>,
    /// Class-private instance state (text content, toggle state …),
    /// key-sorted.
    pub state: Vec<(String, String)>,
}

/// Damage/compositing state of one display at capture time, so a
/// remote display client's pending frame survives a park/restore.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DisplayDamageSnap {
    /// Sequence number of the last shipped frame.
    pub frame_seq: u64,
    /// A remote client was attached (compositing on).
    pub compositing: bool,
    /// The pending frame covers the whole screen.
    pub pending_full: bool,
    /// Pending damage rectangles `(x, y, w, h)`, canonical order.
    pub pending_rects: Vec<(i32, i32, u32, u32)>,
}

/// What a restore actually did — surfaced in telemetry and the
/// `session snapshots` listing rather than silently swallowed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Widgets created (or updated in place for pre-existing names).
    pub widgets: usize,
    /// Widget records that could not be replayed (e.g. class missing in
    /// this flavour).
    pub widgets_skipped: usize,
    /// Globals set.
    pub globals: usize,
    /// Procs defined.
    pub procs: usize,
}

/// A versioned snapshot of one session. Build with
/// [`capture`](Self::capture), move as bytes via
/// [`encode`](Self::encode)/[`decode`](Self::decode), and apply to a
/// fresh session with [`restore_into`](Self::restore_into).
#[derive(Debug, Clone, Default)]
pub struct SessionSnapshot {
    /// Interpreter globals and procs.
    pub interp: InterpSnapshot,
    /// Widget creation records, in creation order.
    pub widgets: Vec<WidgetSnap>,
    /// Xrm database lines, in insertion order.
    pub xrm_lines: Vec<String>,
    /// Application-bound lines queued at capture time.
    pub outbound: Vec<String>,
    /// Per-display damage state, in display order.
    pub displays: Vec<DisplayDamageSnap>,
}

impl SessionSnapshot {
    /// Captures a session's persistent state. `outbound` is whatever
    /// application-bound queue the embedding owns at park time (the
    /// session itself cannot see it).
    pub fn capture(session: &WafeSession, outbound: Vec<String>) -> SessionSnapshot {
        let interp = InterpSnapshot::capture(&session.interp);
        let mut app = session.app.borrow_mut();
        let displays = app
            .displays
            .iter_mut()
            .map(|d| {
                let (frame_seq, compositing, pending_full, rects) = d.damage_state();
                DisplayDamageSnap {
                    frame_seq,
                    compositing,
                    pending_full,
                    pending_rects: rects.iter().map(|r| (r.x, r.y, r.w, r.h)).collect(),
                }
            })
            .collect();
        let mut widgets = Vec::new();
        for id in app.widgets_in_creation_order() {
            let rec = app.widget(id);
            let mut state: Vec<(String, String)> = rec
                .state
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            state.sort();
            widgets.push(WidgetSnap {
                name: rec.name.clone(),
                class: rec.class.name.clone(),
                parent: rec.parent.map(|p| app.widget(p).name.clone()),
                managed: rec.managed,
                realized: rec.realized,
                init: app.snapshot_init_pairs(id),
                state,
            });
        }
        SessionSnapshot {
            interp,
            widgets,
            xrm_lines: app.resource_db.lines(),
            outbound,
            displays,
        }
    }

    /// Applies the snapshot to a freshly built session of the same
    /// flavour: merges the resource DB, replays widget creation,
    /// defines procs and sets globals. Returns what was restored; the
    /// caller replays [`outbound`](Self::outbound) through its own
    /// transport afterwards.
    pub fn restore_into(&self, session: &mut WafeSession) -> RestoreReport {
        let mut report = RestoreReport {
            globals: self.interp.globals.len(),
            procs: self.interp.procs.len(),
            ..RestoreReport::default()
        };
        {
            let mut app = session.app.borrow_mut();
            for line in &self.xrm_lines {
                app.resource_db.insert_line(line);
            }
            for snap in &self.widgets {
                let existing = app.lookup(&snap.name);
                let id = match existing {
                    Some(id) => {
                        // The fresh session already made this widget
                        // (the automatic topLevel shell): update its
                        // resources in place instead of re-creating.
                        for (name, text) in &snap.init {
                            let _ = app.set_resource(id, name, text);
                        }
                        id
                    }
                    None => {
                        let parent = snap.parent.as_ref().and_then(|p| app.lookup(p));
                        if snap.parent.is_some() && parent.is_none() {
                            report.widgets_skipped += 1;
                            continue;
                        }
                        match app.create_widget(
                            &snap.name,
                            &snap.class,
                            parent,
                            0,
                            &snap.init,
                            snap.managed,
                        ) {
                            Ok(id) => id,
                            Err(_) => {
                                report.widgets_skipped += 1;
                                continue;
                            }
                        }
                    }
                };
                for (k, v) in &snap.state {
                    app.set_state(id, k, v.clone());
                }
                report.widgets += 1;
            }
            for snap in &self.widgets {
                if !snap.realized {
                    continue;
                }
                if let Some(id) = app.lookup(&snap.name) {
                    if !app.is_realized(id) {
                        app.realize(id);
                    }
                }
            }
            for (i, snap) in self.displays.iter().enumerate() {
                if let Some(d) = app.displays.get_mut(i) {
                    let rects: Vec<wafe_xproto::Rect> = snap
                        .pending_rects
                        .iter()
                        .map(|&(x, y, w, h)| wafe_xproto::Rect::new(x, y, w, h))
                        .collect();
                    d.restore_damage_state(
                        snap.frame_seq,
                        snap.compositing,
                        snap.pending_full,
                        &rects,
                    );
                }
            }
        }
        self.interp.apply(&mut session.interp);
        report
    }

    /// Encodes the snapshot: `WAFESNAP`, version, then the five
    /// length-prefixed sections.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        wire::put_u32(&mut buf, FORMAT_VERSION);

        let mut section = Vec::new();
        self.interp.encode_into(&mut section);
        put_section(&mut buf, &section);

        section.clear();
        wire::put_u32(&mut section, self.widgets.len() as u32);
        for w in &self.widgets {
            wire::put_str(&mut section, &w.name);
            wire::put_str(&mut section, &w.class);
            wire::put_opt_str(&mut section, w.parent.as_deref());
            wire::put_u8(&mut section, w.managed as u8);
            wire::put_u8(&mut section, w.realized as u8);
            put_pairs(&mut section, &w.init);
            put_pairs(&mut section, &w.state);
        }
        put_section(&mut buf, &section);

        section.clear();
        put_lines(&mut section, &self.xrm_lines);
        put_section(&mut buf, &section);

        section.clear();
        put_lines(&mut section, &self.outbound);
        put_section(&mut buf, &section);

        section.clear();
        wire::put_u32(&mut section, self.displays.len() as u32);
        for d in &self.displays {
            wire::put_u64(&mut section, d.frame_seq);
            wire::put_u8(&mut section, d.compositing as u8);
            wire::put_u8(&mut section, d.pending_full as u8);
            wire::put_u32(&mut section, d.pending_rects.len() as u32);
            for &(x, y, w, h) in &d.pending_rects {
                wire::put_i64(&mut section, x as i64);
                wire::put_i64(&mut section, y as i64);
                wire::put_u32(&mut section, w);
                wire::put_u32(&mut section, h);
            }
        }
        put_section(&mut buf, &section);
        buf
    }

    /// Decodes a snapshot, accepting exactly [`FORMAT_VERSION`].
    pub fn decode(bytes: &[u8]) -> Result<SessionSnapshot, String> {
        Self::decode_as(bytes, FORMAT_VERSION)
    }

    /// Decodes a snapshot against an explicit reader version — the
    /// version-compatibility tests use this to model a future reader.
    /// The policy is exact match: any other version is rejected with an
    /// error naming both versions, never a best-effort decode.
    pub fn decode_as(bytes: &[u8], reader_version: u32) -> Result<SessionSnapshot, String> {
        let mut r = wire::Reader::new(bytes);
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err("not a Wafe snapshot (bad magic)".to_string());
        }
        let version = r.u32()?;
        if version != reader_version {
            return Err(format!(
                "snapshot format version {version} not supported (reader expects {reader_version})"
            ));
        }

        let interp_bytes = take_section(&mut r)?;
        let mut ir = wire::Reader::new(interp_bytes);
        let interp = InterpSnapshot::decode_from(&mut ir)?;
        ir.done()?;

        let widget_bytes = take_section(&mut r)?;
        let mut wr = wire::Reader::new(widget_bytes);
        let nwidgets = wr.u32()? as usize;
        let mut widgets = Vec::new();
        for _ in 0..nwidgets {
            widgets.push(WidgetSnap {
                name: wr.str()?,
                class: wr.str()?,
                parent: wr.opt_str()?,
                managed: wr.u8()? != 0,
                realized: wr.u8()? != 0,
                init: take_pairs(&mut wr)?,
                state: take_pairs(&mut wr)?,
            });
        }
        wr.done()?;

        let xrm_bytes = take_section(&mut r)?;
        let mut xr = wire::Reader::new(xrm_bytes);
        let xrm_lines = take_lines(&mut xr)?;
        xr.done()?;

        let out_bytes = take_section(&mut r)?;
        let mut or = wire::Reader::new(out_bytes);
        let outbound = take_lines(&mut or)?;
        or.done()?;

        let disp_bytes = take_section(&mut r)?;
        let mut dr = wire::Reader::new(disp_bytes);
        let ndisplays = dr.u32()? as usize;
        let mut displays = Vec::new();
        for _ in 0..ndisplays {
            let frame_seq = dr.u64()?;
            let compositing = dr.u8()? != 0;
            let pending_full = dr.u8()? != 0;
            let nrects = dr.u32()? as usize;
            let mut pending_rects = Vec::new();
            for _ in 0..nrects {
                let x = dr.i64()? as i32;
                let y = dr.i64()? as i32;
                pending_rects.push((x, y, dr.u32()?, dr.u32()?));
            }
            displays.push(DisplayDamageSnap {
                frame_seq,
                compositing,
                pending_full,
                pending_rects,
            });
        }
        dr.done()?;

        r.done()?;
        Ok(SessionSnapshot {
            interp,
            widgets,
            xrm_lines,
            outbound,
            displays,
        })
    }
}

fn put_section(buf: &mut Vec<u8>, section: &[u8]) {
    wire::put_u32(buf, section.len() as u32);
    buf.extend_from_slice(section);
}

fn take_section<'a>(r: &mut wire::Reader<'a>) -> Result<&'a [u8], String> {
    let n = r.u32()? as usize;
    r.take(n)
}

fn put_pairs(buf: &mut Vec<u8>, pairs: &[(String, String)]) {
    wire::put_u32(buf, pairs.len() as u32);
    for (k, v) in pairs {
        wire::put_str(buf, k);
        wire::put_str(buf, v);
    }
}

fn take_pairs(r: &mut wire::Reader) -> Result<Vec<(String, String)>, String> {
    let n = r.u32()? as usize;
    let mut pairs = Vec::new();
    for _ in 0..n {
        let k = r.str()?;
        pairs.push((k, r.str()?));
    }
    Ok(pairs)
}

fn put_lines(buf: &mut Vec<u8>, lines: &[String]) {
    wire::put_u32(buf, lines.len() as u32);
    for l in lines {
        wire::put_str(buf, l);
    }
}

fn take_lines(r: &mut wire::Reader) -> Result<Vec<String>, String> {
    let n = r.u32()? as usize;
    let mut lines = Vec::new();
    for _ in 0..n {
        lines.push(r.str()?);
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Flavor;

    fn park_restore(session: &WafeSession, outbound: Vec<String>) -> (WafeSession, Vec<String>) {
        let bytes = SessionSnapshot::capture(session, outbound).encode();
        let snap = SessionSnapshot::decode(&bytes).unwrap();
        // Canonical encoding: re-encoding the decoded snapshot is
        // byte-identical.
        assert_eq!(snap.encode(), bytes);
        let mut fresh = WafeSession::new(Flavor::Athena);
        snap.restore_into(&mut fresh);
        (fresh, snap.outbound.clone())
    }

    #[test]
    fn interp_state_and_widgets_survive() {
        let mut s = WafeSession::new(Flavor::Athena);
        s.eval("set user maria").unwrap();
        s.eval("proc greet {who} {return \"hello $who\"}").unwrap();
        s.eval("label hello topLevel label {Hello World}").unwrap();
        s.eval("mergeResources *Font fixed").unwrap();
        let (mut fresh, _) = park_restore(&s, vec![]);
        assert_eq!(fresh.eval("greet $user").unwrap(), "hello maria");
        assert!(fresh.app.borrow().lookup("hello").is_some());
        let app = fresh.app.borrow();
        let hello = app.lookup("hello").unwrap();
        assert_eq!(
            app.get_resource_string(hello, "label").unwrap(),
            "Hello World"
        );
        assert_eq!(app.resource_db.lines(), vec!["*Font: fixed".to_string()]);
    }

    #[test]
    fn realized_tree_is_rerealized() {
        let mut s = WafeSession::new(Flavor::Athena);
        s.eval("command go topLevel label Go callback {echo hi}")
            .unwrap();
        s.eval("realize").unwrap();
        let (fresh, _) = park_restore(&s, vec![]);
        let app = fresh.app.borrow();
        let go = app.lookup("go").unwrap();
        assert!(app.is_realized(go), "restored tree must be realized again");
    }

    #[test]
    fn outbound_lines_ride_along_in_order() {
        let s = WafeSession::new(Flavor::Athena);
        let queued = vec!["first".to_string(), "second".into(), "third".into()];
        let (_, out) = park_restore(&s, queued.clone());
        assert_eq!(out, queued);
    }

    #[test]
    fn display_damage_state_survives_park() {
        let mut s = WafeSession::new(Flavor::Athena);
        s.eval("label hello topLevel label {Hello World}").unwrap();
        s.eval("realize").unwrap();
        {
            let mut app = s.app.borrow_mut();
            let d = &mut app.displays[0];
            d.set_compositing(true);
            d.flush();
            d.take_frame_damage(); // Ship the attach frame.
            d.next_frame_seq();
        }
        s.eval("setValues hello label Changed").unwrap();
        {
            let mut app = s.app.borrow_mut();
            app.displays[0].flush();
            assert!(app.displays[0].has_pending_frame());
        }
        let (fresh, _) = park_restore(&s, vec![]);
        let mut app = fresh.app.borrow_mut();
        let d = &mut app.displays[0];
        assert_eq!(d.frame_seq(), 1);
        assert!(d.compositing(), "attach survives the park");
        assert!(
            d.has_pending_frame(),
            "the un-shipped frame is still owed after restore"
        );
    }

    #[test]
    fn version_mismatch_is_rejected_with_both_versions_named() {
        let s = WafeSession::new(Flavor::Athena);
        let bytes = SessionSnapshot::capture(&s, vec![]).encode();
        let err = SessionSnapshot::decode_as(&bytes, FORMAT_VERSION + 1).unwrap_err();
        assert!(err.contains(&format!("version {FORMAT_VERSION}")), "{err}");
        assert!(err.contains(&(FORMAT_VERSION + 1).to_string()), "{err}");
        assert!(SessionSnapshot::decode(b"NOTASNAP").is_err());
    }
}
