//! The high-level command specification language and its parser —
//! Wafe's code generator.
//!
//! "All Wafe commands are generated automatically from a high level
//! description. The code generation is performed by a Perl program, which
//! takes as argument the specification file and outputs the necessary C
//! code for conversion, argument passing, error messages, storage
//! management, interpretation of percent codes for callbacks and
//! registrations of commands. In addition the code generator outputs TeX
//! source for the short reference guide."
//!
//! The Rust reproduction parses the same specification syntax at startup
//! and generates command registrations at runtime (the observable
//! property of the original); the reference guide comes out as Markdown
//! instead of TeX. The paper's own examples parse verbatim:
//!
//! ```text
//! ~widgetClass
//! XmCascadeButton
//! #include <Xm/CascadeB.h>
//!
//! void
//! XmCascadeButtonHighlight
//! in: Widget
//! in: Boolean
//! ```

use crate::naming::{class_command_name, command_name};

/// An argument or return type in a specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecType {
    /// A widget reference (by name).
    Widget,
    /// `True`/`False`.
    Boolean,
    /// A signed integer.
    Int,
    /// An unsigned count.
    Cardinal,
    /// A coordinate.
    Position,
    /// A width/height.
    Dimension,
    /// An uninterpreted string.
    String,
    /// A grab kind: `none`/`exclusive`/`nonexclusive`.
    GrabKind,
    /// The name of a Tcl variable to receive output (the paper's
    /// "name of a Tcl associative array … instead of a pointer").
    VarName,
    /// No value (return type of `void` functions).
    Void,
}

impl SpecType {
    fn parse(s: &str) -> Option<SpecType> {
        Some(match s {
            "Widget" => SpecType::Widget,
            "Boolean" => SpecType::Boolean,
            "Int" => SpecType::Int,
            "Cardinal" => SpecType::Cardinal,
            "Position" => SpecType::Position,
            "Dimension" => SpecType::Dimension,
            "String" => SpecType::String,
            "GrabKind" => SpecType::GrabKind,
            "VarName" => SpecType::VarName,
            "void" => SpecType::Void,
            _ => return None,
        })
    }
}

/// A `~widgetClass` block: generates a widget-creation command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSpec {
    /// The widget class name (`Label`, `XmCascadeButton`, …).
    pub class: String,
    /// The generated Tcl command name (`label`, `mCascadeButton`).
    pub command: String,
    /// True if instances are popup shells (menus, transient dialogs).
    pub popup: bool,
}

/// A function block: generates a Tcl command bound to a native handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandSpec {
    /// The C function name the command corresponds to.
    pub c_name: String,
    /// The generated Tcl command name.
    pub command: String,
    /// The return type.
    pub ret: SpecType,
    /// Input argument types, in order.
    pub inputs: Vec<SpecType>,
    /// Output arguments (returned through named Tcl variables).
    pub outputs: Vec<SpecType>,
    /// One-line documentation for the reference guide.
    pub doc: String,
}

/// A parsed specification file.
#[derive(Debug, Clone, Default)]
pub struct SpecFile {
    /// Widget-class creation commands.
    pub classes: Vec<ClassSpec>,
    /// Function commands.
    pub commands: Vec<CommandSpec>,
}

/// Parses a specification text.
///
/// Blocks are separated by blank lines; `!`-lines are comments.
pub fn parse_spec(text: &str) -> Result<SpecFile, String> {
    let mut out = SpecFile::default();
    for raw_block in text.split("\n\n") {
        let lines: Vec<&str> = raw_block
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('!'))
            .collect();
        if lines.is_empty() {
            continue;
        }
        if lines[0] == "~widgetClass" {
            if lines.len() < 2 {
                return Err("~widgetClass block without class name".into());
            }
            let class = lines[1].to_string();
            let mut popup = false;
            for extra in &lines[2..] {
                if *extra == "popup" {
                    popup = true;
                } else if extra.starts_with("#include") {
                    // Kept for authenticity; nothing to do in Rust.
                } else {
                    return Err(format!(
                        "unknown attribute \"{extra}\" in class block {class}"
                    ));
                }
            }
            let command = class_command_name(&class);
            out.classes.push(ClassSpec {
                class,
                command,
                popup,
            });
            continue;
        }
        // Function block: ret type, C name, in:/out:/doc: lines.
        let ret = SpecType::parse(lines[0])
            .ok_or_else(|| format!("unknown return type \"{}\"", lines[0]))?;
        if lines.len() < 2 {
            return Err(format!("function block \"{}\" missing name", lines[0]));
        }
        let c_name = lines[1].to_string();
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut doc = String::new();
        for l in &lines[2..] {
            if let Some(rest) = l.strip_prefix("in:") {
                let ty_word = rest.split_whitespace().next().unwrap_or("");
                let ty = SpecType::parse(ty_word)
                    .ok_or_else(|| format!("unknown in-type \"{ty_word}\" in {c_name}"))?;
                inputs.push(ty);
            } else if let Some(rest) = l.strip_prefix("out:") {
                let ty_word = rest.split_whitespace().next().unwrap_or("");
                let ty = SpecType::parse(ty_word)
                    .ok_or_else(|| format!("unknown out-type \"{ty_word}\" in {c_name}"))?;
                outputs.push(ty);
            } else if let Some(rest) = l.strip_prefix("doc:") {
                doc = rest.trim().to_string();
            } else if l.starts_with("#include") {
                // Ignored.
            } else {
                return Err(format!("unparsable line \"{l}\" in block {c_name}"));
            }
        }
        let command = command_name(&c_name);
        out.commands.push(CommandSpec {
            c_name,
            command,
            ret,
            inputs,
            outputs,
            doc,
        });
    }
    Ok(out)
}

impl SpecFile {
    /// Merges another spec file into this one.
    pub fn extend(&mut self, other: SpecFile) {
        self.classes.extend(other.classes);
        self.commands.extend(other.commands);
    }

    /// Total number of generated commands (classes + functions).
    pub fn generated_count(&self) -> usize {
        self.classes.len() + self.commands.len()
    }

    /// Renders the short reference guide (the original emitted TeX; the
    /// reproduction emits Markdown).
    pub fn reference_guide(&self) -> String {
        let mut out =
            String::from("# Wafe short reference guide\n\n## Widget creation commands\n\n");
        let mut classes = self.classes.clone();
        classes.sort_by(|a, b| a.command.cmp(&b.command));
        for c in &classes {
            out.push_str(&format!(
                "- **{}** *name father ?unmanaged? ?resource value ...?* — creates a {} widget{}\n",
                c.command,
                c.class,
                if c.popup { " (popup shell)" } else { "" }
            ));
        }
        out.push_str("\n## Toolkit commands\n\n");
        let mut commands = self.commands.clone();
        commands.sort_by(|a, b| a.command.cmp(&b.command));
        for c in &commands {
            let args: Vec<String> = c
                .inputs
                .iter()
                .map(|t| format!("*{t:?}*").to_lowercase())
                .chain(c.outputs.iter().map(|_| "*varName*".to_string()))
                .collect();
            out.push_str(&format!(
                "- **{}** {} — `{}`{}{}\n",
                c.command,
                args.join(" "),
                c.c_name,
                if c.doc.is_empty() { "" } else { ": " },
                c.doc
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_class_block() {
        let spec = parse_spec("~widgetClass\nXmCascadeButton\n#include <Xm/CascadeB.h>").unwrap();
        assert_eq!(spec.classes.len(), 1);
        assert_eq!(spec.classes[0].class, "XmCascadeButton");
        assert_eq!(spec.classes[0].command, "mCascadeButton");
        assert!(!spec.classes[0].popup);
    }

    #[test]
    fn paper_function_block() {
        let spec = parse_spec("void\nXmCascadeButtonHighlight\nin: Widget\nin: Boolean").unwrap();
        assert_eq!(spec.commands.len(), 1);
        let c = &spec.commands[0];
        assert_eq!(c.command, "mCascadeButtonHighlight");
        assert_eq!(c.ret, SpecType::Void);
        assert_eq!(c.inputs, vec![SpecType::Widget, SpecType::Boolean]);
    }

    #[test]
    fn multiple_blocks_and_comments() {
        let text = "! a comment\n~widgetClass\nLabel\n\nvoid\nXtDestroyWidget\nin: Widget\n\nCardinal\nXtGetResourceList\nin: Widget\nout: VarName\ndoc: resource names of the class";
        let spec = parse_spec(text).unwrap();
        assert_eq!(spec.classes.len(), 1);
        assert_eq!(spec.commands.len(), 2);
        assert_eq!(spec.commands[1].command, "getResourceList");
        assert_eq!(spec.commands[1].outputs, vec![SpecType::VarName]);
        assert_eq!(spec.commands[1].doc, "resource names of the class");
    }

    #[test]
    fn popup_attribute() {
        let spec = parse_spec("~widgetClass\nSimpleMenu\npopup").unwrap();
        assert!(spec.classes[0].popup);
    }

    #[test]
    fn errors() {
        assert!(parse_spec("~widgetClass").is_err());
        assert!(parse_spec("bogus\nXtFoo").is_err());
        assert!(parse_spec("void\nXtFoo\nin: NoSuchType").is_err());
        assert!(parse_spec("void\nXtFoo\nwhatisthis").is_err());
    }

    #[test]
    fn reference_guide_lists_commands() {
        let spec = parse_spec("~widgetClass\nLabel\n\nvoid\nXtDestroyWidget\nin: Widget").unwrap();
        let guide = spec.reference_guide();
        assert!(guide.contains("**label**"));
        assert!(guide.contains("**destroyWidget**"));
        assert!(guide.contains("`XtDestroyWidget`"));
    }

    #[test]
    fn generated_count() {
        let spec = parse_spec("~widgetClass\nLabel\n\nvoid\nXtDestroyWidget\nin: Widget").unwrap();
        assert_eq!(spec.generated_count(), 2);
    }
}
