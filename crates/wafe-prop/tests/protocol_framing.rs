//! Property tests for the frontend protocol framing: however the pipe
//! chops a byte stream into chunks, the `LineAssembler` must never
//! panic, never emit a partial line, and produce exactly the same
//! lines, overflow count and `%`-prefix classification as any other
//! chunking of the same bytes.

use wafe_ipc::{is_command_line, LineAssembler, DEFAULT_PREFIX};
use wafe_prop::{cases, Rng};

/// A byte stream mixing protocol-ish lines, binary noise and pathologic
/// newline patterns.
fn arbitrary_stream(rng: &mut Rng) -> Vec<u8> {
    let mut out = Vec::new();
    for _ in 0..rng.range(0, 12) {
        match rng.below(5) {
            0 => {
                // A plausible command line.
                out.extend_from_slice(b"%set x ");
                out.extend_from_slice(rng.ascii_string(10).as_bytes());
                out.push(b'\n');
            }
            1 => {
                // Passthrough text.
                out.extend_from_slice(rng.ascii_string(20).as_bytes());
                out.push(b'\n');
            }
            2 => {
                // Raw bytes, any values, maybe containing newlines.
                let junk = rng.vec(0, 30, |r| r.below(256) as u8);
                out.extend_from_slice(&junk);
            }
            3 => {
                // Newline runs (empty lines).
                let n = rng.range(1, 4);
                out.extend(std::iter::repeat_n(b'\n', n));
            }
            _ => {
                // An over-long line relative to the small test cap.
                let n = rng.range(40, 120);
                out.extend(std::iter::repeat_n(b'z', n));
                if rng.chance() {
                    out.push(b'\n');
                }
            }
        }
    }
    out
}

/// Feeds `bytes` to a fresh assembler in random chunks; returns the
/// emitted lines and the overflow count.
fn feed_chunked(rng: &mut Rng, bytes: &[u8], max: usize) -> (Vec<String>, u64) {
    let mut asm = LineAssembler::new(max);
    let mut lines = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let step = rng.range(1, 17).min(bytes.len() - i);
        lines.extend(asm.push(&bytes[i..i + step]));
        i += step;
    }
    (lines, asm.take_overflows())
}

#[test]
fn arbitrary_chunking_never_panics_or_emits_partials() {
    cases(400, |rng| {
        let stream = arbitrary_stream(rng);
        let (lines, _) = feed_chunked(rng, &stream, 64);
        for line in &lines {
            assert!(
                !line.contains('\n'),
                "an emitted line is complete — no embedded newline: {line:?}"
            );
            // Lossy UTF-8 may widen invalid bytes to U+FFFD, so the cap
            // holds in characters (1 per raw byte), not String bytes.
            assert!(
                line.chars().count() <= 64,
                "no line beyond the cap: {}",
                line.chars().count()
            );
        }
    });
}

#[test]
fn reframing_is_chunking_invariant() {
    cases(300, |rng| {
        let stream = arbitrary_stream(rng);
        // Reference: the whole stream in one push.
        let mut whole = LineAssembler::new(64);
        let reference = whole.push(&stream);
        let ref_overflows = whole.take_overflows();
        // Three independent random chunkings must agree exactly.
        for _ in 0..3 {
            let (lines, overflows) = feed_chunked(rng, &stream, 64);
            assert_eq!(lines, reference, "lines differ under re-chunking");
            assert_eq!(overflows, ref_overflows, "overflow count differs");
        }
    });
}

#[test]
fn classification_is_stable_under_rechunking() {
    cases(300, |rng| {
        let stream = arbitrary_stream(rng);
        let mut whole = LineAssembler::unbounded();
        let reference: Vec<bool> = whole
            .push(&stream)
            .iter()
            .map(|l| is_command_line(l, DEFAULT_PREFIX))
            .collect();
        let (lines, _) = feed_chunked(rng, &stream, usize::MAX);
        let rechunked: Vec<bool> = lines
            .iter()
            .map(|l| is_command_line(l, DEFAULT_PREFIX))
            .collect();
        assert_eq!(rechunked, reference);
    });
}

#[test]
fn pending_bytes_never_exceed_cap() {
    cases(200, |rng| {
        let mut asm = LineAssembler::new(32);
        for _ in 0..rng.range(1, 20) {
            let chunk = rng.vec(0, 64, |r| r.below(256) as u8);
            let _ = asm.push(&chunk);
            assert!(
                asm.pending() <= 32,
                "buffered partial must respect the cap: {}",
                asm.pending()
            );
        }
    });
}
