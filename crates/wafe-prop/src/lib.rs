//! Minimal, dependency-free property-testing support.
//!
//! The workspace's property tests originally used `proptest`; on
//! network-less machines that dependency cannot even be resolved, so the
//! tests run on this small vendored kit instead: a seedable xorshift64*
//! generator ([`Rng`]) plus a [`cases`] runner that replays a fixed
//! number of deterministic cases and reports the failing case index
//! before propagating the panic. Failures are reproducible by
//! construction — the seed is derived from the case index, never from
//! time or global state.

/// A xorshift64* pseudo-random generator: tiny, fast, and plenty for
/// driving property tests (the same generator backs Tcl's `rand()` in
/// `wafe-tcl`).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Zero is mapped to a fixed
    /// non-zero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift: unbiased enough for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as i64
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range(lo as usize, hi as usize) as u32
    }

    /// A coin flip.
    pub fn chance(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// One element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len())]
    }

    /// A string of `len` characters drawn from `alphabet`.
    pub fn string_from(&mut self, alphabet: &[char], len: usize) -> String {
        (0..len).map(|_| *self.pick(alphabet)).collect()
    }

    /// A printable-ASCII string (space through `~`) of length in
    /// `[0, max_len)`.
    pub fn ascii_string(&mut self, max_len: usize) -> String {
        let len = self.range(0, max_len.max(1));
        (0..len)
            .map(|_| char::from(self.range_u32(0x20, 0x7F) as u8))
            .collect()
    }

    /// An arbitrary `char` (any Unicode scalar value), biased toward
    /// ASCII half the time — matches proptest's `any::<char>()` spirit.
    pub fn any_char(&mut self) -> char {
        if self.chance() {
            return char::from(self.range_u32(0, 0x80) as u8);
        }
        loop {
            let v = self.range_u32(0, 0x11_0000);
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }

    /// A string of arbitrary chars with length in `[min_len, max_len)`.
    pub fn unicode_string(&mut self, min_len: usize, max_len: usize) -> String {
        let len = self.range(min_len, max_len);
        (0..len).map(|_| self.any_char()).collect()
    }

    /// A vector built by calling `f` between `min` and `max - 1` times.
    pub fn vec<T>(&mut self, min: usize, max: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let n = self.range(min, max);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Runs `n` deterministic cases of a property. Each case gets a fresh
/// [`Rng`] seeded from the case index; on panic, the case number and
/// seed are printed so the failure can be replayed in isolation.
pub fn cases(n: u64, property: impl Fn(&mut Rng)) {
    for k in 0..n {
        let seed = 0xC0FFEE ^ k.wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = Rng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!("property failed at case {k}/{n} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(3, 8);
            assert!((3..8).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn ascii_string_is_printable() {
        let mut r = Rng::new(3);
        for _ in 0..100 {
            let s = r.ascii_string(20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn any_char_is_valid_scalar() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let _ = r.any_char(); // must not panic
        }
    }

    #[test]
    fn cases_reports_failing_index() {
        let result = std::panic::catch_unwind(|| {
            cases(10, |rng| {
                // Fails on some case eventually.
                assert!(rng.below(4) != 2, "hit the bad value");
            });
        });
        assert!(result.is_err());
    }
}
