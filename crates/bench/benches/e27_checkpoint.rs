//! E27 — park/restore latency: is hot handoff actually hot?
//!
//! PR 8 parks idle sessions instead of evicting them: the scheduler
//! serializes the whole session (interp variables and procs, widget
//! tree, resource DB, queued outbound lines) into a versioned snapshot
//! and a later reconnect restores it. The design claim is that a
//! restore is cheap enough to hide inside a connection handshake —
//! the reconnecting client must not notice that its session ceased to
//! exist in between.
//!
//! The workload is a deliberately non-trivial session: the E19
//! `factor` proc plus its computed results in variables, a dozen
//! widgets with resources, a merged resource DB and a queued outbound
//! tail. We measure, over many iterations each:
//!
//! * **park** — capture the live session and encode the snapshot;
//! * **restore** — decode the snapshot and replay it into a fresh
//!   session.
//!
//! Latency percentiles (p50/p90/p99) go to `BENCH_e27.json`. The
//! acceptance gate is restore p99 ≤ 10 ms: above that, "hot handoff"
//! would be a reconnect stall the user can feel.

use std::time::{Duration, Instant};

use bench::{criterion_group, criterion_main, workspace_root, Criterion};
use wafe_core::{Flavor, SessionSnapshot, WafeSession};

const FACTOR_TCL: &str = "\
proc factor {n} {\n\
    set result {}\n\
    for {set d 2} {$d <= $n} {incr d} {\n\
        while {$n % $d == 0} {\n\
            set result [linsert $result 0 $d]\n\
            set n [expr {$n / $d}]\n\
        }\n\
    }\n\
    return [join $result *]\n\
}";

const ITERS: usize = 300;

/// A warm session the way the scheduler would park one: a proc that
/// has run, its results in variables, widgets realized, resources
/// merged.
fn warm_session() -> (WafeSession, Vec<String>) {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval(FACTOR_TCL).unwrap();
    for n in [3599, 1234, 99991, 262144] {
        s.eval(&format!("set f{n} [factor {n}]")).unwrap();
    }
    for w in 0..12 {
        s.eval(&format!("label row{w} topLevel label {{result row {w}}}"))
            .unwrap();
    }
    s.eval("command go topLevel label Go callback {echo pressed}")
        .unwrap();
    s.eval("mergeResources *Font fixed *row3.label {hot handoff}")
        .unwrap();
    s.eval("realize").unwrap();
    let outbound: Vec<String> = (0..8).map(|i| format!("queued line {i}")).collect();
    (s, outbound)
}

/// Nearest-rank percentile over a sorted sample, in microseconds.
fn percentile_us(sorted: &[Duration], p: f64) -> f64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)].as_secs_f64() * 1e6
}

fn sorted_samples<F: FnMut() -> Duration>(mut one: F) -> Vec<Duration> {
    // Warm-up iterations are discarded: the first decode touches cold
    // allocator paths that a long-running waferd never sees again.
    for _ in 0..20 {
        one();
    }
    let mut samples: Vec<Duration> = (0..ITERS).map(|_| one()).collect();
    samples.sort_unstable();
    samples
}

fn bench(c: &mut Criterion) {
    bench::banner("E27", "session park/restore latency (checkpoint codec)");

    let (mut session, outbound) = warm_session();
    let bytes = SessionSnapshot::capture(&session, outbound.clone()).encode();

    // The handoff must be lossless before it is worth timing.
    let snap = SessionSnapshot::decode(&bytes).unwrap();
    let mut check = WafeSession::new(Flavor::Athena);
    let report = snap.restore_into(&mut check);
    assert_eq!(report.widgets_skipped, 0, "{report:?}");
    assert_eq!(
        check.eval("set f3599").unwrap(),
        session.eval("set f3599").unwrap()
    );
    assert_eq!(
        SessionSnapshot::capture(&check, outbound.clone()).encode(),
        bytes,
        "park → restore → park must be a fixed point"
    );

    let park = sorted_samples(|| {
        let t = Instant::now();
        let b = SessionSnapshot::capture(&session, outbound.clone()).encode();
        std::hint::black_box(b);
        t.elapsed()
    });
    let restore = sorted_samples(|| {
        let t = Instant::now();
        let snap = SessionSnapshot::decode(&bytes).unwrap();
        let mut fresh = WafeSession::new(Flavor::Athena);
        let report = snap.restore_into(&mut fresh);
        std::hint::black_box(&report);
        t.elapsed()
    });

    let (park_p50, park_p90, park_p99) = (
        percentile_us(&park, 50.0),
        percentile_us(&park, 90.0),
        percentile_us(&park, 99.0),
    );
    let (restore_p50, restore_p90, restore_p99) = (
        percentile_us(&restore, 50.0),
        percentile_us(&restore, 90.0),
        percentile_us(&restore, 99.0),
    );

    bench::row("snapshot size", format!("{} bytes", bytes.len()));
    bench::row(
        "park (capture+encode)",
        format!("p50 {park_p50:.1} µs  p90 {park_p90:.1} µs  p99 {park_p99:.1} µs"),
    );
    bench::row(
        "restore (decode+replay)",
        format!("p50 {restore_p50:.1} µs  p90 {restore_p90:.1} µs  p99 {restore_p99:.1} µs"),
    );

    let out = format!(
        "{{\n  \"experiment\": \"e27_checkpoint\",\n  \"workload\": \"warm_factor_session_12_widgets\",\n  \
         \"snapshot_bytes\": {},\n  \
         \"iters\": {ITERS},\n  \
         \"park_p50_us\": {park_p50:.1},\n  \
         \"park_p90_us\": {park_p90:.1},\n  \
         \"park_p99_us\": {park_p99:.1},\n  \
         \"restore_p50_us\": {restore_p50:.1},\n  \
         \"restore_p90_us\": {restore_p90:.1},\n  \
         \"restore_p99_us\": {restore_p99:.1}\n}}\n",
        bytes.len()
    );
    let path = workspace_root().join("BENCH_e27.json");
    std::fs::write(&path, out).expect("write BENCH_e27.json");
    println!("  wrote {}", path.display());

    assert!(
        restore_p99 <= 10_000.0,
        "acceptance: restore p99 must be <=10ms for hot handoff, got {restore_p99:.1} µs"
    );

    let mut group = c.benchmark_group("e27_checkpoint");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
    group.sample_size(11);
    group.bench_function("park_warm_session", |b| {
        b.iter(|| SessionSnapshot::capture(&session, outbound.clone()).encode());
    });
    group.bench_function("restore_warm_session", |b| {
        b.iter(|| {
            let snap = SessionSnapshot::decode(&bytes).unwrap();
            let mut fresh = WafeSession::new(Flavor::Athena);
            snap.restore_into(&mut fresh)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
