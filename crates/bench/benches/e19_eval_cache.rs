//! E19 — the parse-once eval cache.
//!
//! The paper's limitations section concedes that Tcl 6.x is slow because
//! every piece of script is re-parsed every time it runs. This experiment
//! measures what the compilation cache buys back on two workloads:
//!
//! * **loop-heavy** — the E18 prime-factorisation proc (`for` + `while` +
//!   `expr` + `linsert`), dominated by loop bodies evaluated thousands of
//!   times;
//! * **proc-heavy** — a small proc called many times from a `for` loop,
//!   dominated by proc-body evaluation.
//!
//! Each workload runs once with the cache disabled (`interp cachelimit 0`
//! — the faithful Tcl 6.x re-parse-everything baseline) and once with the
//! default cache, on the **same interpreter code**. Results go to stdout
//! and to `BENCH_e19.json` at the workspace root for machines to read.

use std::time::Duration;

use bench::{criterion_group, criterion_main, measure_ab, workspace_root, Criterion};
use wafe_tcl::Interp;

const FACTOR_TCL: &str = "\
proc factor {n} {\n\
    set result {}\n\
    for {set d 2} {$d <= $n} {incr d} {\n\
        while {$n % $d == 0} {\n\
            set result [linsert $result 0 $d]\n\
            set n [expr {$n / $d}]\n\
        }\n\
    }\n\
    return [join $result *]\n\
}";

/// The loop-heavy E18 workload: factor a semiprime, ~3600 iterations of
/// the outer `for` with an `expr` guard each time.
fn loop_heavy(i: &mut Interp) -> String {
    i.eval("factor 3599").unwrap().to_string()
}

const SUMPROC_TCL: &str = "proc addup {a b} {return [expr {$a + $b}]}";

/// The proc-call-heavy workload: 500 calls of a two-argument proc.
fn proc_heavy(i: &mut Interp) -> String {
    i.eval("set s 0; for {set k 0} {$k < 500} {incr k} {set s [addup $s $k]}; set s")
        .unwrap()
        .to_string()
}

fn interp_with(cache_limit: usize) -> Interp {
    let mut i = Interp::new();
    i.set_cache_limit(cache_limit);
    i.eval(FACTOR_TCL).unwrap();
    i.eval(SUMPROC_TCL).unwrap();
    i
}

struct Measured {
    name: &'static str,
    cold_ns: f64,
    cached_ns: f64,
    /// Median of per-round cold/cached ratios — the number the ci.sh
    /// no-regression gate reads. The rounds interleave both engines,
    /// so machine-wide drift cancels instead of skewing whichever
    /// engine ran while the machine was busy.
    speedup: f64,
}

fn measure(name: &'static str, workload: fn(&mut Interp) -> String) -> Measured {
    // Same-result sanity check: the cache must be invisible.
    let mut cold_i = interp_with(0);
    let mut warm_i = interp_with(wafe_tcl::interp::DEFAULT_CACHE_LIMIT);
    assert_eq!(workload(&mut cold_i), workload(&mut warm_i));

    let stats = measure_ab(
        Duration::from_millis(200),
        15,
        Duration::from_millis(2),
        || {
            std::hint::black_box(workload(&mut cold_i).len());
        },
        || {
            std::hint::black_box(workload(&mut warm_i).len());
        },
    );
    Measured {
        name,
        cold_ns: stats.a_ns,
        cached_ns: stats.b_ns,
        speedup: stats.ratio,
    }
}

fn write_json(results: &[Measured]) {
    let mut out = String::from("{\n  \"experiment\": \"e19_eval_cache\",\n  \"workloads\": [\n");
    for (k, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cold_ns_per_iter\": {:.1}, \"cached_ns_per_iter\": {:.1}, \"speedup\": {:.2}}}{}\n",
            m.name,
            m.cold_ns,
            m.cached_ns,
            m.speedup,
            if k + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = workspace_root().join("BENCH_e19.json");
    std::fs::write(&path, out).expect("write BENCH_e19.json");
    println!("  wrote {}", path.display());
}

fn bench(c: &mut Criterion) {
    bench::banner(
        "E19",
        "parse-once eval cache vs Tcl 6.x re-parse-everything",
    );
    let results = [
        measure("loop_heavy_factor", loop_heavy),
        measure("proc_heavy_calls", proc_heavy),
    ];
    for m in &results {
        bench::row(
            &format!("{} cold (cachelimit 0)", m.name),
            format!("{:.0} ns/iter", m.cold_ns),
        );
        bench::row(
            &format!("{} cached", m.name),
            format!("{:.0} ns/iter", m.cached_ns),
        );
        bench::row(&format!("{} speedup", m.name), format!("{:.1}x", m.speedup));
    }
    write_json(&results);
    assert!(
        results[0].speedup >= 5.0,
        "acceptance: >=5x on the loop-heavy workload, got {:.2}x",
        results[0].speedup
    );

    // Keep a criterion-style group so E19 reports like the others.
    let mut group = c.benchmark_group("e19_eval_cache");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1000));
    group.sample_size(11);
    group.bench_function("factor_3599_cached", |b| {
        let mut i = interp_with(wafe_tcl::interp::DEFAULT_CACHE_LIMIT);
        b.iter(|| loop_heavy(&mut i));
    });
    group.bench_function("factor_3599_cold", |b| {
        let mut i = interp_with(0);
        b.iter(|| loop_heavy(&mut i));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
