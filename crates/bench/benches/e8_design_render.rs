//! E8 — Figures 2 and 6: the graph-layout widget (XmGraph stand-in) and
//! the xwafedesign screenshots, regenerated as ASCII renders; measures
//! tree layout and snapshot cost.

use bench::{criterion_group, criterion_main, Criterion};
use wafe_core::WafeSession;

use bench::{athena, banner, row};

fn build_design_tool(s: &mut WafeSession) {
    s.eval("form design topLevel").unwrap();
    s.eval("label title design label {Design: sample} borderWidth 0")
        .unwrap();
    s.eval("list folders design fromVert title list {inbox,outbox}")
        .unwrap();
    s.eval("command send design label Send fromVert folders")
        .unwrap();
    s.eval("realize").unwrap();
}

fn regenerate_figures() {
    banner("E8", "Figure 6 (xwafedesign) and Figure 2 (graph widget)");
    let mut s = athena();
    build_design_tool(&mut s);
    println!("--- Figure 6 stand-in: the designed UI ---");
    println!("{}", s.eval("snapshot 0 0 300 120").unwrap());

    // Figure 2: a widget tree drawn by the TreeGraph layout widget.
    s.eval("applicationShell viewer design:1").unwrap();
    s.eval("treeGraph graph viewer").unwrap();
    for (node, parent) in [
        ("design", ""),
        ("title", "design"),
        ("folders", "design"),
        ("send", "design"),
    ] {
        let mut cmd = format!("label n_{node} graph label {node}");
        if !parent.is_empty() {
            cmd.push_str(&format!(" parentNode n_{parent}"));
        }
        s.eval(&cmd).unwrap();
    }
    s.eval("realize").unwrap();
    println!("--- Figure 2 stand-in: the widget graph ---");
    let snap = s.eval("snapshot 0 0 400 140 1").unwrap();
    println!("{snap}");
    assert!(snap.contains("design"));
    assert!(snap.contains("folders"));
    row("graph nodes laid out", 4);
}

fn bench(c: &mut Criterion) {
    regenerate_figures();
    let mut group = c.benchmark_group("e8_design_render");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(30);
    group.bench_function("snapshot_320x240", |b| {
        let mut s = athena();
        build_design_tool(&mut s);
        b.iter(|| s.eval("snapshot 0 0 320 240").unwrap());
    });
    group.bench_function("tree_layout_30_nodes", |b| {
        let mut s = athena();
        s.eval("treeGraph graph topLevel").unwrap();
        s.eval("label n_root graph label root").unwrap();
        for i in 0..29usize {
            let parent = if i == 0 {
                "n_root".to_string()
            } else {
                format!("n_{}", (i - 1) / 2)
            };
            s.eval(&format!(
                "label n_{i} graph label node{i} parentNode {parent}"
            ))
            .unwrap();
        }
        s.eval("realize").unwrap();
        b.iter(|| {
            let root = {
                let app = s.app.borrow();
                app.lookup("topLevel").unwrap()
            };
            s.app.borrow_mut().do_layout(root);
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
