//! E17 (extension) — ablations of the reproduction's design choices:
//!
//! * damage-tracked `flush()` vs forced full recomposition,
//! * Xrm precedence lookup as the database and widget depth grow,
//! * spec-generated command dispatch vs a direct native call.

use bench::{criterion_group, criterion_main, Criterion};
use wafe_xproto::geometry::Rect;
use wafe_xt::xrm::XrmDb;

use bench::{athena, banner, row};

fn summarise() {
    banner(
        "E17",
        "ablations: damage tracking, Xrm scaling, dispatch layers",
    );
    // Damage tracking: second flush with no changes should be ~free.
    let mut s = athena();
    s.eval("label l topLevel label x").unwrap();
    s.eval("realize").unwrap();
    {
        let mut app = s.app.borrow_mut();
        app.displays[0].flush();
        let start = std::time::Instant::now();
        for _ in 0..100 {
            app.displays[0].flush();
        }
        let clean = start.elapsed() / 100;
        row("flush() with no damage", format!("{clean:?}"));
        let start = std::time::Instant::now();
        for _ in 0..20 {
            // Force damage each round.
            let root = app.displays[0].root();
            app.displays[0].set_display_list(root, Vec::new());
            app.displays[0].flush();
        }
        let dirty = start.elapsed() / 20;
        row(
            "flush() with damage (full recomposite)",
            format!("{dirty:?}"),
        );
        row(
            "damage-tracking saving",
            format!(
                "{:.0}x",
                dirty.as_secs_f64() / clean.as_secs_f64().max(1e-12)
            ),
        );
    }
}

fn xrm_db(entries: usize) -> XrmDb {
    let mut db = XrmDb::new();
    for i in 0..entries {
        db.insert(&format!("*w{i}.foreground"), "red");
        db.insert(&format!("app.box{i}*background"), "blue");
    }
    db.insert("*foreground", "black");
    db
}

fn bench(c: &mut Criterion) {
    summarise();
    let mut group = c.benchmark_group("e17_ablations");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    // Xrm scaling: db size × path depth.
    for entries in [10usize, 100, 400] {
        let db = xrm_db(entries);
        group.bench_function(format!("xrm_query_db{entries}"), |b| {
            b.iter(|| {
                db.query(
                    std::hint::black_box(&["app", "top", "form", "deep", "leaf"]),
                    &["App", "Shell", "Form", "Box", "Label"],
                    "foreground",
                    "Foreground",
                )
            });
        });
    }

    // Dispatch-layer ablation: the same resource write through the spec
    // layer vs directly.
    group.bench_function("setvalues_via_tcl", |b| {
        let mut s = athena();
        s.eval("label l topLevel").unwrap();
        b.iter(|| s.eval("sV l label {ablated}").unwrap());
    });
    group.bench_function("setvalues_direct", |b| {
        let mut s = athena();
        s.eval("label l topLevel").unwrap();
        let l = s.app.borrow().lookup("l").unwrap();
        b.iter(|| {
            s.app
                .borrow_mut()
                .set_resource(l, "label", "ablated")
                .unwrap()
        });
    });

    // Snapshot scaling.
    for size in [160u32, 320, 640] {
        group.bench_function(format!("snapshot_{size}px"), |b| {
            let mut s = athena();
            s.eval("label l topLevel label {snapshot target}").unwrap();
            s.eval("realize").unwrap();
            let rect = Rect::new(0, 0, size, size / 2);
            b.iter(|| {
                let app = s.app.borrow();
                app.displays[0].snapshot_ascii(rect)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
