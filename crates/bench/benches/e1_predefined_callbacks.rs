//! E1 — the "Predefined Callbacks" table: verify each of the six
//! functions behaves as documented, then measure popup/popdown cost.

use bench::{criterion_group, criterion_main, Criterion};
use wafe_xt::callback::PredefinedCallback;

use bench::{athena, banner, click, row};

fn verify_table() {
    banner("E1", "Predefined Callbacks (paper table, all six rows)");
    println!("  {:<16} {:<34} verified", "name", "paper behaviour");
    let rows = [
        ("none", "realize shell, grab none"),
        ("exclusive", "realize shell, grab exclusive"),
        ("nonexclusive", "realize shell, grab nonexclusive"),
        ("popdown", "unrealize shell"),
        ("position", "position shell"),
        ("positionCursor", "position shell under pointer"),
    ];
    for (name, behaviour) in rows {
        let mut s = athena();
        s.eval("command b topLevel label press").unwrap();
        s.eval("transientShell popup topLevel x 600 y 500").unwrap();
        s.eval("label inner popup label content").unwrap();
        s.eval("realize").unwrap();
        if name == "popdown" {
            s.eval("callback b callback none popup").unwrap();
            click(&mut s, "b");
            s.eval("sV b callback {}").unwrap();
        }
        s.eval(&format!("callback b callback {name} popup"))
            .unwrap();
        if name == "positionCursor" {
            let mut app = s.app.borrow_mut();
            app.displays[0].inject_pointer_move(333, 222);
        }
        s.pump();
        {
            let mut app = s.app.borrow_mut();
            let b = app.lookup("b").unwrap();
            app.call_callbacks(b, "callback", std::collections::HashMap::new());
        }
        s.pump();
        let app = s.app.borrow();
        let popup = app.lookup("popup").unwrap();
        let ok = match name {
            "none" => app.is_popped_up(popup) && app.displays[0].grab_depth() == 0,
            "exclusive" => app.is_popped_up(popup) && app.displays[0].grab_depth() == 1,
            "nonexclusive" => app.is_popped_up(popup) && app.displays[0].grab_depth() == 1,
            "popdown" => !app.is_popped_up(popup),
            "position" => app.is_popped_up(popup) && app.pos_resource(popup, "y") > 0,
            "positionCursor" => {
                app.pos_resource(popup, "x") == 333 && app.pos_resource(popup, "y") == 222
            }
            _ => unreachable!(),
        };
        println!(
            "  {name:<16} {behaviour:<34} {}",
            if ok { "yes" } else { "NO" }
        );
        assert!(ok, "predefined callback {name} misbehaved");
    }
    row("all six table rows", "reproduced");
}

fn bench(c: &mut Criterion) {
    verify_table();
    let mut group = c.benchmark_group("e1_predefined_callbacks");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(20);
    group.bench_function("popup_popdown_cycle", |b| {
        let mut s = athena();
        s.eval("command b topLevel label press").unwrap();
        s.eval("transientShell popup topLevel x 600 y 500").unwrap();
        s.eval("label inner popup label content").unwrap();
        s.eval("realize").unwrap();
        let up = PredefinedCallback::Exclusive;
        let down = PredefinedCallback::Popdown;
        b.iter(|| {
            let bw = s.app.borrow().lookup("b").unwrap();
            s.app.borrow_mut().run_predefined(bw, up, "popup");
            s.app.borrow_mut().run_predefined(bw, down, "popup");
            s.pump();
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
