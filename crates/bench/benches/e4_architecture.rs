//! E4 — Figure 1: the layered architecture (Wafe on Tcl + Xt + Xaw,
//! versus Tk's own intrinsics). Regenerated as a component inventory,
//! plus the cost of assembling the whole stack (session startup).

use bench::{criterion_group, criterion_main, Criterion};
use wafe_core::{Flavor, WafeSession};

use bench::{banner, row};

fn regenerate_figure() {
    banner("E4", "Figure 1 — the Wafe stack (component inventory)");
    let s = WafeSession::new(Flavor::Both);
    let tcl_builtins = {
        let i = wafe_tcl::Interp::new();
        i.command_names().len()
    };
    let (generated, handwritten) = s.command_stats();
    let app = s.app.borrow();
    let classes = app.class_names();
    let athena: Vec<&String> = classes
        .iter()
        .filter(|c| !c.starts_with("Xm") && !c.ends_with("Shell"))
        .collect();
    let motif: Vec<&String> = classes.iter().filter(|c| c.starts_with("Xm")).collect();
    let shells: Vec<&String> = classes.iter().filter(|c| c.ends_with("Shell")).collect();
    println!("  +--------------------------------------------+");
    println!("  |  Wafe commands: {generated} generated + {handwritten} hand-written  |");
    println!("  +--------------------+-----------------------+");
    println!(
        "  |  Tcl ({tcl_builtins} built-ins) |  converters ({})      |",
        app.converters.len()
    );
    println!("  +--------------------+-----------------------+");
    println!(
        "  |  Xaw widgets ({})  |  Motif subset ({})     |",
        athena.len(),
        motif.len()
    );
    println!("  +--------------------+-----------------------+");
    println!(
        "  |  Xt Intrinsics (shells: {})                 |",
        shells.len()
    );
    println!("  +--------------------------------------------+");
    println!("  |  X11 (simulated display server)            |");
    println!("  +--------------------------------------------+");
    row("Athena widget classes", athena.len());
    row("Motif widget classes", motif.len());
    row("shell classes", shells.len());
    row("registered converters", app.converters.len());
    assert!(athena.len() >= 15);
    assert!(motif.len() >= 4);
    assert!(shells.len() >= 4);
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("e4_architecture");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(20);
    group.bench_function("athena_session_startup", |b| {
        b.iter(|| std::hint::black_box(WafeSession::new(Flavor::Athena)));
    });
    group.bench_function("motif_session_startup", |b| {
        b.iter(|| std::hint::black_box(WafeSession::new(Flavor::Motif)));
    });
    group.bench_function("tcl_interp_startup", |b| {
        b.iter(|| std::hint::black_box(wafe_tcl::Interp::new()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
