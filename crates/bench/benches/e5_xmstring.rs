//! E5 — Figure 3: the OSF/Motif compound-string label. Regenerates the
//! figure as an ASCII render and measures the converter.

use bench::{criterion_group, criterion_main, Criterion};
use wafe_motif::{parse_font_list, parse_xmstring, render_xmstring};
use wafe_xproto::font::FontDb;

use bench::{banner, motif, row};

fn regenerate_figure() {
    banner("E5", "Figure 3 — compound strings (mofe script, verbatim)");
    let mut s = motif();
    s.eval(
        "mLabel l topLevel \\\n\
         fontList \"*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft\" \\\n\
         labelString \"I'm&bft bold&ft and&rl strange\"",
    )
    .unwrap();
    s.eval("realize").unwrap();
    println!("{}", s.eval("snapshot 0 0 400 60").unwrap());
    let segs = parse_xmstring("I'm&bft bold&ft and&rl strange");
    row("segments", segs.len());
    row("visual text", render_xmstring(&segs));
    let fonts = FontDb::new();
    let fl = parse_font_list(
        &fonts,
        "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft",
    );
    row("font-list entries resolved", fl.len());
    assert_eq!(segs.len(), 4);
    assert_eq!(fl.len(), 2);
    assert!(render_xmstring(&segs).contains("egnarts"));
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("e5_xmstring");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.bench_function("parse_paper_string", |b| {
        b.iter(|| parse_xmstring(std::hint::black_box("I'm&bft bold&ft and&rl strange")));
    });
    let long: String = (0..50).map(|i| format!("seg{i}&bft bold{i}&ft ")).collect();
    group.bench_function("parse_100_segments", |b| {
        b.iter(|| parse_xmstring(std::hint::black_box(&long)));
    });
    let fonts = FontDb::new();
    group.bench_function("resolve_font_list", |b| {
        b.iter(|| {
            parse_font_list(
                &fonts,
                std::hint::black_box("*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft"),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
