//! E15 — "each command issued that way has to fit in a single line
//! (which can be pretty long depending on a preprocessor variable
//! specified at compilation time; the default length is 64KB)".

use bench::{criterion_group, criterion_main, Criterion, Throughput};
use wafe_core::Flavor;
use wafe_ipc::{ProtocolEngine, DEFAULT_MAX_LINE};

use bench::{banner, row};

fn regenerate_claim() {
    banner("E15", "the 64KB command-line limit");
    row(
        "default limit",
        format!("{DEFAULT_MAX_LINE} bytes (64KB, as in the paper)"),
    );
    let mut e = ProtocolEngine::new(Flavor::Athena);
    // A line just under the limit executes.
    let under = format!("%set big {{{}}}", "x".repeat(DEFAULT_MAX_LINE - 100));
    assert!(e.handle_line(&under).is_ok());
    row("line 100 B under the limit", "accepted");
    // A line over the limit is rejected gracefully (not a crash, not a
    // truncation).
    let over = format!("%set big {{{}}}", "x".repeat(DEFAULT_MAX_LINE + 100));
    assert!(e.handle_line(&over).is_err());
    row("line 100 B over the limit", "rejected with an error");
    // The session survives and keeps working.
    assert!(e.handle_line("%set ok 1").is_ok());
    assert_eq!(e.session.interp.get_var("ok").unwrap(), "1");
    row("session after oversized line", "still functional");
    // The limit is the compile-time-style knob the paper mentions.
    let mut small = ProtocolEngine::new(Flavor::Athena);
    small.set_max_line(128);
    assert!(small
        .handle_line(&format!("%echo {}", "y".repeat(200)))
        .is_err());
    row("configurable limit (128 B engine)", "enforced");
}

fn bench(c: &mut Criterion) {
    regenerate_claim();
    let mut group = c.benchmark_group("e15_line_limit");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(20);
    for size in [1024usize, 16 * 1024, 63 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("line_{size}B"), |b| {
            let mut e = ProtocolEngine::new(Flavor::Athena);
            let line = format!("%set big {{{}}}", "x".repeat(size - 12));
            b.iter(|| e.handle_line(std::hint::black_box(&line)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
