//! E20 — what the telemetry layer costs.
//!
//! The telemetry layer claims to be near-free when disabled: every
//! recording entry point is one load of the enabled flag, and `timer()`
//! does not even read the clock. This experiment checks that claim on the
//! E19 loop-heavy workload (`factor 3599` — the divisor loop shrinks `n`
//! as it factors, so one call is a few hundred instrumented evals and
//! command dispatches):
//!
//! * **disabled** — the default: flag checks compiled in, recording off;
//! * **enabled** — every eval and dispatch counted and its latency
//!   recorded into a histogram.
//!
//! The enabled overhead is a direct A/B within one binary. The disabled
//! overhead cannot be measured that way — an uninstrumented baseline
//! would need a different build, and cross-binary deltas on a 30µs
//! workload are dominated by codegen and scheduler noise (observed up to
//! ±25% between bench binaries running *identical* interpreter code). It
//! is instead computed from first principles within this binary: the
//! number of instrumentation sites executed per iteration (read from the
//! enabled run's own counters) times the measured per-site cost of the
//! disabled check, net of timing-loop overhead. The raw cross-binary
//! delta against `BENCH_e19.json` is reported alongside for reference.
//! Results go to `BENCH_e20.json`.

use std::time::Duration;

use bench::{criterion_group, criterion_main, measure_median, workspace_root, Criterion};
use wafe_tcl::{Interp, Telemetry};

const FACTOR_TCL: &str = "\
proc factor {n} {\n\
    set result {}\n\
    for {set d 2} {$d <= $n} {incr d} {\n\
        while {$n % $d == 0} {\n\
            set result [linsert $result 0 $d]\n\
            set n [expr {$n / $d}]\n\
        }\n\
    }\n\
    return [join $result *]\n\
}";

fn loop_heavy(i: &mut Interp) -> String {
    i.eval("factor 3599").unwrap().to_string()
}

fn interp(enabled: bool) -> Interp {
    let mut i = Interp::new();
    if enabled {
        let t = Telemetry::new();
        t.set_enabled(true);
        i.set_telemetry(t);
    }
    i.eval(FACTOR_TCL).unwrap();
    i
}

/// Median ns/iter; best of two passes to shave scheduler noise.
fn measure(i: &mut Interp) -> f64 {
    let warm_up = Duration::from_millis(200);
    let budget = Duration::from_millis(1200);
    let a = measure_median(warm_up, budget, 11, || loop_heavy(i));
    let b = measure_median(warm_up, budget, 11, || loop_heavy(i));
    a.min(b)
}

/// Instrumentation sites executed by one `factor 3599`: evals plus
/// command dispatches, counted by the telemetry layer itself.
fn sites_per_iter() -> u64 {
    let mut i = interp(true);
    let before = {
        let s = i.telemetry().snapshot();
        s.counter("tcl.evals").unwrap_or(0) + s.counter("tcl.dispatches").unwrap_or(0)
    };
    loop_heavy(&mut i);
    let after = {
        let s = i.telemetry().snapshot();
        s.counter("tcl.evals").unwrap_or(0) + s.counter("tcl.dispatches").unwrap_or(0)
    };
    after - before
}

/// `cached_ns_per_iter` of the loop-heavy workload from BENCH_e19.json,
/// if a previous E19 run left one behind.
fn e19_reference() -> Option<f64> {
    let text = std::fs::read_to_string(workspace_root().join("BENCH_e19.json")).ok()?;
    let at = text.find("loop_heavy_factor")?;
    let rest = &text[at..];
    let key = "\"cached_ns_per_iter\": ";
    let start = rest.find(key)? + key.len();
    let end = rest[start..].find([',', '}'])? + start;
    rest[start..end].trim().parse().ok()
}

fn bench(c: &mut Criterion) {
    bench::banner("E20", "telemetry overhead on the E19 loop-heavy workload");

    let mut disabled_i = interp(false);
    let mut enabled_i = interp(true);
    // Telemetry must be invisible to results.
    assert_eq!(loop_heavy(&mut disabled_i), loop_heavy(&mut enabled_i));

    let disabled_ns = measure(&mut disabled_i);
    let enabled_ns = measure(&mut enabled_i);
    let enabled_pct = (enabled_ns / disabled_ns.max(1.0) - 1.0) * 100.0;

    // The enabled run really recorded: one counter bump and one histogram
    // sample per eval, hundreds per factor call.
    let snap = enabled_i.telemetry().snapshot();
    let evals = snap.counter("tcl.evals").unwrap_or(0);
    assert!(evals > 10_000, "enabled run recorded only {evals} evals");
    assert!(snap.histogram("tcl.eval").is_some());

    // Raw primitive costs (ns per call). The no-op closure carries the
    // timing-loop overhead; the disabled site cost is what remains.
    let off = Telemetry::new();
    let on = Telemetry::new();
    on.set_enabled(true);
    let warm = Duration::from_millis(100);
    let budget = Duration::from_millis(400);
    let noop_ns = measure_median(warm, budget, 11, || std::hint::black_box(0u64));
    let count_off_ns = measure_median(warm, budget, 11, || off.count("bench.counter"));
    let count_on_ns = measure_median(warm, budget, 11, || on.count("bench.counter"));
    let observe_on_ns = measure_median(warm, budget, 11, || {
        on.observe_since("bench.hist", on.timer())
    });
    let site_off_ns = (count_off_ns - noop_ns).max(0.0);

    // Disabled overhead on the macro workload: sites × per-site cost.
    let sites = sites_per_iter();
    let disabled_pct = sites as f64 * site_off_ns / disabled_ns.max(1.0) * 100.0;

    // The noisy cross-binary comparison, for reference only.
    let reference_ns = e19_reference().unwrap_or(disabled_ns);
    let cross_binary_pct = (disabled_ns / reference_ns.max(1.0) - 1.0) * 100.0;

    bench::row("telemetry disabled", format!("{disabled_ns:.0} ns/iter"));
    bench::row("telemetry enabled", format!("{enabled_ns:.0} ns/iter"));
    bench::row("enabled overhead", format!("{enabled_pct:+.1}%"));
    bench::row("instrumentation sites / iter", sites);
    bench::row("disabled site cost", format!("{site_off_ns:.2} ns"));
    bench::row("disabled overhead", format!("{disabled_pct:+.2}%"));
    bench::row(
        "vs E19 binary (cross-binary noise)",
        format!("{cross_binary_pct:+.1}%"),
    );
    bench::row("count() disabled", format!("{count_off_ns:.1} ns"));
    bench::row("count() enabled", format!("{count_on_ns:.1} ns"));
    bench::row("timer()+observe enabled", format!("{observe_on_ns:.1} ns"));

    let out = format!(
        "{{\n  \"experiment\": \"e20_telemetry_overhead\",\n  \"workload\": \"e19_loop_heavy_factor\",\n  \
         \"disabled_ns_per_iter\": {disabled_ns:.1},\n  \
         \"enabled_ns_per_iter\": {enabled_ns:.1},\n  \
         \"enabled_overhead_pct\": {enabled_pct:.2},\n  \
         \"instrumentation_sites_per_iter\": {sites},\n  \
         \"disabled_site_ns\": {site_off_ns:.3},\n  \
         \"disabled_overhead_pct\": {disabled_pct:.2},\n  \
         \"e19_reference_ns_per_iter\": {reference_ns:.1},\n  \
         \"cross_binary_delta_pct\": {cross_binary_pct:.2},\n  \
         \"count_disabled_ns\": {count_off_ns:.2},\n  \
         \"count_enabled_ns\": {count_on_ns:.2},\n  \
         \"observe_enabled_ns\": {observe_on_ns:.2}\n}}\n"
    );
    let path = workspace_root().join("BENCH_e20.json");
    std::fs::write(&path, out).expect("write BENCH_e20.json");
    println!("  wrote {}", path.display());

    assert!(
        disabled_pct <= 5.0,
        "acceptance: disabled telemetry must cost <=5% on the E19 workload, got {disabled_pct:+.2}%"
    );

    let mut group = c.benchmark_group("e20_telemetry_overhead");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1000));
    group.sample_size(11);
    group.bench_function("factor_3599_telemetry_disabled", |b| {
        let mut i = interp(false);
        b.iter(|| loop_heavy(&mut i));
    });
    group.bench_function("factor_3599_telemetry_enabled", |b| {
        let mut i = interp(true);
        b.iter(|| loop_heavy(&mut i));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
