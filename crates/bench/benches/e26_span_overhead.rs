//! E26 — what the span layer and the profiler cost.
//!
//! PR 7 threads span begin/end checks through every eval, proc call and
//! bytecode run, and a profiler check through every VM instruction. The
//! claim, like E20's for counters, is near-free when disabled: each
//! span site is one flag load and each instruction one branch on a
//! hoisted local. This experiment checks that claim on the E19
//! loop-heavy workload (`factor 3599`):
//!
//! * **all off** — the default: checks compiled in, nothing recording;
//! * **spans on** — every eval/proc/bc scope recorded into the ring,
//!   detail closures run;
//! * **profile on** — per-proc timing frames plus a hit counter bump
//!   per executed instruction;
//! * **both on** — the full observability plane.
//!
//! The enabled overheads are direct A/Bs within one binary. The
//! disabled overhead is computed from first principles, exactly as in
//! E20 (cross-binary deltas on a 30µs workload drown in codegen noise):
//! span sites per iteration times the measured disabled `span_begin`
//! cost, plus executed instructions per iteration times the measured
//! cost of a flag-check branch. Results go to `BENCH_e26.json`.

use std::cell::Cell;
use std::time::Duration;

use bench::{criterion_group, criterion_main, measure_median, workspace_root, Criterion};
use wafe_tcl::{Interp, Telemetry};

const FACTOR_TCL: &str = "\
proc factor {n} {\n\
    set result {}\n\
    for {set d 2} {$d <= $n} {incr d} {\n\
        while {$n % $d == 0} {\n\
            set result [linsert $result 0 $d]\n\
            set n [expr {$n / $d}]\n\
        }\n\
    }\n\
    return [join $result *]\n\
}";

fn loop_heavy(i: &mut Interp) -> String {
    i.eval("factor 3599").unwrap().to_string()
}

fn interp(spans: bool, profile: bool) -> Interp {
    let mut i = Interp::new();
    if spans {
        let t = Telemetry::new();
        t.set_spans_enabled(true);
        i.set_telemetry(t);
    }
    i.eval(FACTOR_TCL).unwrap();
    if profile {
        i.eval("interp profile on").unwrap();
    }
    i
}

/// Median ns/iter; best of two passes to shave scheduler noise.
fn measure(i: &mut Interp) -> f64 {
    let warm_up = Duration::from_millis(200);
    let budget = Duration::from_millis(1200);
    let a = measure_median(warm_up, budget, 11, || loop_heavy(i));
    let b = measure_median(warm_up, budget, 11, || loop_heavy(i));
    a.min(b)
}

/// Span sites executed by one `factor 3599`: every tcl.eval / tcl.proc
/// / tcl.bc scope, counted by the span ring's own total.
fn span_sites_per_iter() -> u64 {
    let mut i = interp(true, false);
    let before = i.telemetry().span_stats().total;
    loop_heavy(&mut i);
    i.telemetry().span_stats().total - before
}

/// VM instructions executed by one `factor 3599` — the per-instruction
/// profiler branch count — summed from the profiler's own opcode hits.
fn instr_sites_per_iter() -> u64 {
    let mut i = interp(false, false);
    i.eval("interp profile on").unwrap();
    loop_heavy(&mut i);
    i.eval("interp profile off").unwrap();
    let report = i.eval("interp profile report").unwrap().to_string();
    report
        .lines()
        .filter(|l| l.starts_with("op "))
        .map(|l| l.split_whitespace().nth(3).unwrap().parse::<u64>().unwrap())
        .sum()
}

fn bench(c: &mut Criterion) {
    bench::banner(
        "E26",
        "span + profiler overhead on the E19 loop-heavy workload",
    );

    let mut off_i = interp(false, false);
    let mut spans_i = interp(true, false);
    let mut prof_i = interp(false, true);
    let mut both_i = interp(true, true);
    // Observability must be invisible to results.
    let want = loop_heavy(&mut off_i);
    assert_eq!(want, loop_heavy(&mut spans_i));
    assert_eq!(want, loop_heavy(&mut prof_i));
    assert_eq!(want, loop_heavy(&mut both_i));

    let off_ns = measure(&mut off_i);
    let spans_ns = measure(&mut spans_i);
    let prof_ns = measure(&mut prof_i);
    let both_ns = measure(&mut both_i);
    let pct = |ns: f64| (ns / off_ns.max(1.0) - 1.0) * 100.0;
    let (spans_pct, prof_pct, both_pct) = (pct(spans_ns), pct(prof_ns), pct(both_ns));

    // The enabled runs really recorded.
    assert!(spans_i.telemetry().span_stats().total > 1_000);
    let report = both_i.eval("interp profile report").unwrap().to_string();
    assert!(report.contains("proc factor calls"), "{report}");

    // Raw primitive costs (ns per call). The no-op closure carries the
    // timing-loop overhead; what remains is the per-site price.
    let off_tel = Telemetry::new();
    let warm = Duration::from_millis(100);
    let budget = Duration::from_millis(400);
    let noop_ns = measure_median(warm, budget, 11, || std::hint::black_box(0u64));
    let span_off_raw = measure_median(warm, budget, 11, || {
        std::hint::black_box(off_tel.span_begin("bench.span", String::new))
    });
    let flag = Cell::new(false);
    let flag_raw = measure_median(warm, budget, 11, || std::hint::black_box(flag.get()));
    let span_off_ns = (span_off_raw - noop_ns).max(0.0);
    let flag_ns = (flag_raw - noop_ns).max(0.0);

    // Disabled overhead on the macro workload, from first principles:
    // one disabled span_begin per span site, one flag branch per
    // executed instruction (the hoisted profiler check).
    let span_sites = span_sites_per_iter();
    let instr_sites = instr_sites_per_iter();
    let disabled_pct =
        (span_sites as f64 * span_off_ns + instr_sites as f64 * flag_ns) / off_ns.max(1.0) * 100.0;

    bench::row("all off", format!("{off_ns:.0} ns/iter"));
    bench::row(
        "spans on",
        format!("{spans_ns:.0} ns/iter ({spans_pct:+.1}%)"),
    );
    bench::row(
        "profile on",
        format!("{prof_ns:.0} ns/iter ({prof_pct:+.1}%)"),
    );
    bench::row("both on", format!("{both_ns:.0} ns/iter ({both_pct:+.1}%)"));
    bench::row("span sites / iter", span_sites);
    bench::row("instructions / iter", instr_sites);
    bench::row("span_begin() disabled", format!("{span_off_ns:.2} ns"));
    bench::row("flag branch", format!("{flag_ns:.2} ns"));
    bench::row("disabled overhead", format!("{disabled_pct:+.2}%"));

    let out = format!(
        "{{\n  \"experiment\": \"e26_span_overhead\",\n  \"workload\": \"e19_loop_heavy_factor\",\n  \
         \"all_off_ns_per_iter\": {off_ns:.1},\n  \
         \"spans_ns_per_iter\": {spans_ns:.1},\n  \
         \"profile_ns_per_iter\": {prof_ns:.1},\n  \
         \"both_ns_per_iter\": {both_ns:.1},\n  \
         \"spans_overhead_pct\": {spans_pct:.2},\n  \
         \"profile_overhead_pct\": {prof_pct:.2},\n  \
         \"both_overhead_pct\": {both_pct:.2},\n  \
         \"span_sites_per_iter\": {span_sites},\n  \
         \"instr_sites_per_iter\": {instr_sites},\n  \
         \"span_begin_disabled_ns\": {span_off_ns:.3},\n  \
         \"flag_branch_ns\": {flag_ns:.3},\n  \
         \"disabled_overhead_pct\": {disabled_pct:.2}\n}}\n"
    );
    let path = workspace_root().join("BENCH_e26.json");
    std::fs::write(&path, out).expect("write BENCH_e26.json");
    println!("  wrote {}", path.display());

    assert!(
        disabled_pct <= 2.0,
        "acceptance: disabled spans+profiler must cost <=2% on the E19 workload, got {disabled_pct:+.2}%"
    );

    let mut group = c.benchmark_group("e26_span_overhead");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1000));
    group.sample_size(11);
    group.bench_function("factor_3599_observability_off", |b| {
        let mut i = interp(false, false);
        b.iter(|| loop_heavy(&mut i));
    });
    group.bench_function("factor_3599_spans_and_profile_on", |b| {
        let mut i = interp(true, true);
        b.iter(|| loop_heavy(&mut i));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
