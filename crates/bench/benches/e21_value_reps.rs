//! E21 — dual-representation values vs the strings-only model.
//!
//! Wafe inherits Tcl 6's "everything is a string" data model; every
//! numeric or list use of a value re-parses its text ("shimmering").
//! This experiment measures what the Tcl 8-style dual-rep `Value`
//! (shared string + cached int/double/list/script rep) buys back on
//! three workloads, all on the **same interpreter binary** — the
//! baseline flips `wafe_tcl::set_reps_enabled(false)`, which makes
//! `Value` behave exactly like the old strings-only model (no rep
//! caching, eager rendering, every access re-parses):
//!
//! * **list_build** — `lappend` growth: amortized O(1) per append with
//!   the sole-owner rep steal vs O(n) re-parse + re-render per append;
//! * **sort_ints** — `lsort -integer` over a 300-element list: one
//!   int parse per element vs one per comparison;
//! * **mix** — the acceptance workload: lappend growth, an integer
//!   lsort, and a `for`/`expr`/`incr` arithmetic pass over the result.
//!
//! Results go to stdout and `BENCH_e21.json` at the workspace root.

use std::time::Duration;

use bench::{criterion_group, criterion_main, measure_median, workspace_root, Criterion};
use wafe_tcl::{set_reps_enabled, Interp};

const LIST_BUILD_TCL: &str = "\
set l {}\n\
for {set k 0} {$k < 400} {incr k} {lappend l $k}\n\
llength $l";

const SORT_INTS_TCL: &str = "llength [lsort -integer $data]";

const MIX_TCL: &str = "\
set l {}\n\
for {set k 0} {$k < 300} {incr k} {lappend l [expr {($k * 7919) % 1000}]}\n\
set sorted [lsort -integer $l]\n\
set sum 0\n\
foreach x $sorted {incr sum $x}\n\
set sum";

fn run(i: &mut Interp, script: &str) -> String {
    i.eval(script).unwrap().to_string()
}

fn fresh_interp() -> Interp {
    let mut i = Interp::new();
    // A 300-element pre-built list for the sort workload.
    i.eval("set data {}; for {set k 0} {$k < 300} {incr k} {lappend data [expr {(299 - $k) * 3}]}")
        .unwrap();
    i
}

struct Measured {
    name: &'static str,
    string_ns: f64,
    dualrep_ns: f64,
}

impl Measured {
    fn speedup(&self) -> f64 {
        self.string_ns / self.dualrep_ns.max(1.0)
    }
}

fn measure(name: &'static str, script: &'static str) -> Measured {
    // Same-result sanity check: reps must be semantically invisible.
    set_reps_enabled(false);
    let mut string_i = fresh_interp();
    let string_out = run(&mut string_i, script);
    set_reps_enabled(true);
    let mut dual_i = fresh_interp();
    assert_eq!(string_out, run(&mut dual_i, script));

    let warm_up = Duration::from_millis(200);
    let budget = Duration::from_millis(1200);
    set_reps_enabled(false);
    let string_ns = measure_median(warm_up, budget, 11, || run(&mut string_i, script));
    set_reps_enabled(true);
    let dualrep_ns = measure_median(warm_up, budget, 11, || run(&mut dual_i, script));
    Measured {
        name,
        string_ns,
        dualrep_ns,
    }
}

fn write_json(results: &[Measured]) {
    let mut out = String::from("{\n  \"experiment\": \"e21_value_reps\",\n  \"workloads\": [\n");
    for (k, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"string_ns_per_iter\": {:.1}, \"dualrep_ns_per_iter\": {:.1}, \"speedup\": {:.2}}}{}\n",
            m.name,
            m.string_ns,
            m.dualrep_ns,
            m.speedup(),
            if k + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = workspace_root().join("BENCH_e21.json");
    std::fs::write(&path, out).expect("write BENCH_e21.json");
    println!("  wrote {}", path.display());
}

fn bench(c: &mut Criterion) {
    bench::banner(
        "E21",
        "dual-representation values vs Tcl 6.x strings-only shimmering",
    );
    let results = [
        measure("list_build_lappend", LIST_BUILD_TCL),
        measure("sort_ints", SORT_INTS_TCL),
        measure("mix_lappend_lsort_arith", MIX_TCL),
    ];
    for m in &results {
        bench::row(
            &format!("{} strings-only", m.name),
            format!("{:.0} ns/iter", m.string_ns),
        );
        bench::row(
            &format!("{} dual-rep", m.name),
            format!("{:.0} ns/iter", m.dualrep_ns),
        );
        bench::row(
            &format!("{} speedup", m.name),
            format!("{:.1}x", m.speedup()),
        );
    }
    write_json(&results);
    let mix = &results[2];
    assert!(
        mix.speedup() >= 3.0,
        "acceptance: >=3x on the lappend/lsort/arithmetic mix, got {:.2}x",
        mix.speedup()
    );

    // Keep a criterion-style group so E21 reports like the others.
    let mut group = c.benchmark_group("e21_value_reps");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1000));
    group.sample_size(11);
    group.bench_function("mix_dualrep", |b| {
        set_reps_enabled(true);
        let mut i = fresh_interp();
        b.iter(|| run(&mut i, MIX_TCL));
    });
    group.bench_function("mix_strings_only", |b| {
        set_reps_enabled(false);
        let mut i = fresh_interp();
        b.iter(|| run(&mut i, MIX_TCL));
        set_reps_enabled(true);
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
