//! E3 — the "Athena List Widget Callback" percent codes (`%w %i %s`):
//! regenerate the table and measure selection-to-callback latency.

use bench::{criterion_group, criterion_main, Criterion};

use bench::{athena, banner, row};

fn regenerate_table() {
    banner(
        "E3",
        "Athena List Widget Callback percent codes (paper table)",
    );
    let mut s = athena();
    s.eval("list chooseLst topLevel list {alpha,beta,gamma}")
        .unwrap();
    s.eval("sV chooseLst callback {echo w=%w i=%i s=%s}")
        .unwrap();
    s.eval("realize").unwrap();
    {
        let mut app = s.app.borrow_mut();
        let l = app.lookup("chooseLst").unwrap();
        let abs = app.displays[0].abs_rect(app.widget(l).window.unwrap());
        app.displays[0].inject_click(abs.x + 4, abs.y + 2 + 15 + 7, 1);
    }
    s.pump();
    let out = s.take_output();
    assert_eq!(out, "w=chooseLst i=1 s=beta\n");
    row("%w (widget's name)", "chooseLst");
    row("%i (index)", "1");
    row("%s (active element)", "beta");
}

fn bench(c: &mut Criterion) {
    regenerate_table();
    let mut group = c.benchmark_group("e3_list_callback");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(30);
    group.bench_function("click_to_callback", |b| {
        let mut s = athena();
        let items: Vec<String> = (0..100).map(|i| format!("item{i}")).collect();
        s.eval(&format!("list l topLevel list {{{}}}", items.join(",")))
            .unwrap();
        s.eval("sV l callback {set picked %i}").unwrap();
        s.eval("realize").unwrap();
        let mut row_ix = 0usize;
        b.iter(|| {
            {
                let mut app = s.app.borrow_mut();
                let l = app.lookup("l").unwrap();
                let abs = app.displays[0].abs_rect(app.widget(l).window.unwrap());
                let y = abs.y + 2 + (row_ix as i32 % 100) * 15 + 7;
                app.displays[0].inject_click(abs.x + 4, y, 1);
            }
            s.pump();
            row_ix += 1;
        });
        let picked = s.interp.get_var("picked").unwrap();
        assert!(!picked.is_empty());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
