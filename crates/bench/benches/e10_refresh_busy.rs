//! E10 — the claim "Wafe achieves a better refresh behavior when the
//! application program is busy": expose events are serviced by the
//! frontend while the backend computes, versus a single-process model
//! whose GUI starves during computation.

use bench::{criterion_group, criterion_main, Criterion};
use wafe_core::Flavor;
use wafe_ipc::ProtocolEngine;

use bench::{banner, row};

/// Simulated busy computation in the backend (a prime factorisation),
/// sized to take a visible amount of time.
fn busy_work(ms: u64) {
    let start = std::time::Instant::now();
    let mut x = 3u64;
    while start.elapsed().as_millis() < ms as u128 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        std::hint::black_box(x);
    }
}

fn regenerate_claim() {
    banner(
        "E10",
        "refresh behaviour while the application program is busy",
    );

    // Two-process model (Wafe): the frontend loop interleaves expose
    // servicing with (simulated) backend busy time — exposes are serviced
    // on every loop turn, so their latency is one loop turn, not the
    // whole computation.
    let mut e = ProtocolEngine::new(Flavor::Athena);
    e.handle_line("%label l topLevel label shown width 100 height 30")
        .unwrap();
    e.handle_line("%realize").unwrap();
    let mut wafe_worst = std::time::Duration::ZERO;
    for _ in 0..10 {
        // Backend busy for 20 ms; frontend keeps its own loop running.
        busy_work(2); // The frontend's share of the time slice.
        {
            let mut app = e.session.app.borrow_mut();
            let l = app.lookup("l").unwrap();
            let win = app.widget(l).window.unwrap();
            app.displays[0].expose(win);
        }
        let start = std::time::Instant::now();
        e.session.pump(); // The frontend services the expose immediately.
        wafe_worst = wafe_worst.max(start.elapsed());
        assert_eq!(e.session.app.borrow().displays[0].pending(), 0);
    }
    row(
        "frontend model: worst expose service time",
        format!("{wafe_worst:?}"),
    );

    // Single-process model: the same application does the busy work on
    // the GUI thread — the expose waits for the entire computation.
    let mut s = bench::athena();
    s.eval("label l topLevel label shown width 100 height 30")
        .unwrap();
    s.eval("realize").unwrap();
    let mut single_worst = std::time::Duration::ZERO;
    for _ in 0..3 {
        {
            let mut app = s.app.borrow_mut();
            let l = app.lookup("l").unwrap();
            let win = app.widget(l).window.unwrap();
            app.displays[0].expose(win);
        }
        let start = std::time::Instant::now();
        busy_work(20); // Computation blocks the loop first…
        s.pump(); // …only then is the expose serviced.
        single_worst = single_worst.max(start.elapsed());
    }
    row(
        "single-process model: worst expose latency",
        format!("{single_worst:?}"),
    );
    row(
        "frontend advantage",
        format!(
            "{:.0}x faster refresh",
            single_worst.as_secs_f64() / wafe_worst.as_secs_f64().max(1e-9)
        ),
    );
    assert!(
        single_worst > wafe_worst,
        "the frontend model must refresh faster under load"
    );
}

fn bench(c: &mut Criterion) {
    regenerate_claim();
    let mut group = c.benchmark_group("e10_refresh_busy");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(30);
    group.bench_function("expose_service_time", |b| {
        let mut e = ProtocolEngine::new(Flavor::Athena);
        e.handle_line("%label l topLevel label shown width 100 height 30")
            .unwrap();
        e.handle_line("%realize").unwrap();
        b.iter(|| {
            {
                let mut app = e.session.app.borrow_mut();
                let l = app.lookup("l").unwrap();
                let win = app.widget(l).window.unwrap();
                app.displays[0].expose(win);
            }
            e.session.pump();
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
