//! E18 — the paper's architectural justification: "The string
//! representation of all data types is a disadvantage, when repetitious
//! calculations have to be made in Tcl" and "an application program is
//! performing some meaningful computations that we do not want to
//! program in Tcl".
//!
//! Measured by running the same computation — the prime factorisation of
//! the paper's Perl example — in pure Tcl inside the frontend versus in
//! the compiled application program. The expected shape: the compiled
//! path wins by orders of magnitude, which is why Wafe splits UI from
//! computation.

use bench::{criterion_group, criterion_main, Criterion};
use wafe_tcl::Interp;

use bench::{banner, row};

const FACTOR_TCL: &str = "\
proc factor {n} {\n\
    set result {}\n\
    for {set d 2} {$d <= $n} {incr d} {\n\
        while {$n % $d == 0} {\n\
            set result [linsert $result 0 $d]\n\
            set n [expr {$n / $d}]\n\
        }\n\
    }\n\
    return [join $result *]\n\
}";

fn factor_rust(mut n: u64) -> String {
    let mut result: Vec<u64> = Vec::new();
    let mut d = 2u64;
    while d <= n {
        while n.is_multiple_of(d) {
            result.insert(0, d);
            n /= d;
        }
        d += 1;
    }
    result
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join("*")
}

fn summarise() {
    banner(
        "E18",
        "Tcl string-representation limitation (the frontend-split rationale)",
    );
    let mut i = Interp::new();
    i.eval(FACTOR_TCL).unwrap();
    let n = 99991; // A prime: the worst case, the loop runs to n.
    let start = std::time::Instant::now();
    let tcl_result = i.eval(&format!("factor {n}")).unwrap();
    let tcl_time = start.elapsed();
    let start = std::time::Instant::now();
    let rust_result = factor_rust(n);
    let rust_time = start.elapsed();
    assert_eq!(tcl_result, rust_result);
    row(
        "factor 99991 in pure Tcl (the frontend)",
        format!("{tcl_time:?}"),
    );
    row(
        "factor 99991 in the application program",
        format!("{rust_time:?}"),
    );
    row(
        "compiled-application speedup",
        format!(
            "{:.0}x",
            tcl_time.as_secs_f64() / rust_time.as_secs_f64().max(1e-9)
        ),
    );
    println!(
        "  (this gap is the paper's reason for frontend mode: \"meaningful\n   \
         computations that we do not want to program in Tcl\")"
    );
    assert!(
        tcl_time > rust_time * 10,
        "the compiled path must dominate: tcl={tcl_time:?} rust={rust_time:?}"
    );
}

fn bench(c: &mut Criterion) {
    summarise();
    let mut group = c.benchmark_group("e18_tcl_limitation");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(10);
    group.bench_function("factor_3599_tcl", |b| {
        let mut i = Interp::new();
        i.eval(FACTOR_TCL).unwrap();
        b.iter(|| i.eval("factor 3599").unwrap()); // 59*61
    });
    group.bench_function("factor_3599_rust", |b| {
        b.iter(|| factor_rust(std::hint::black_box(3599)));
    });
    // Tcl is fine for what Wafe uses it for: command dispatch.
    group.bench_function("command_dispatch_tcl", |b| {
        let mut i = Interp::new();
        i.eval("set x 0").unwrap();
        b.iter(|| i.eval("set x 1").unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
