//! E23 — the bytecode VM vs the cached tree-walker.
//!
//! PR 1 removed the re-parse tax (E19); PR 4 removed the re-shimmer tax
//! (E21). What remains on the hot path is the tree-walk itself: token
//! dispatch, argv assembly and command lookup for every `set`, `incr`,
//! `expr` and loop-control command, every iteration. This experiment
//! measures what compiling scripts to flat bytecode buys on top of the
//! warm caches, on the **same interpreter binary** — the baseline flips
//! `Interp::set_bc_enabled(false)`, everything else identical:
//!
//! * **loop_heavy_factor** — the E19/E18 prime-factorisation proc
//!   (`for` + `while` + `expr` + `linsert`), dominated by loop-body
//!   dispatch;
//! * **tight_arith** — a `while`/`incr`/`expr` counting loop, the pure
//!   special-form fast path with no generic command in the body;
//! * **list_mix** — the E21 acceptance workload (lappend growth, an
//!   integer lsort, a `foreach`/`incr` pass), where generic commands
//!   dominate and the VM mostly saves per-word token dispatch.
//!
//! Results go to stdout and `BENCH_e23.json` at the workspace root.
//! Acceptance: >=3x on the loop-heavy workload, byte-identical results
//! on every workload.

use std::time::Duration;

use bench::{criterion_group, criterion_main, measure_ab, workspace_root, Criterion};
use wafe_tcl::Interp;

const FACTOR_TCL: &str = "\
proc factor {n} {\n\
    set result {}\n\
    for {set d 2} {$d <= $n} {incr d} {\n\
        while {$n % $d == 0} {\n\
            set result [linsert $result 0 $d]\n\
            set n [expr {$n / $d}]\n\
        }\n\
    }\n\
    return [join $result *]\n\
}";

const LOOP_HEAVY_TCL: &str = "factor 3599";

const TIGHT_ARITH_TCL: &str = "\
set sum 0\n\
set i 0\n\
while {$i < 1000} {\n\
    incr i\n\
    set sum [expr {$sum + $i * 3 % 7}]\n\
}\n\
set sum";

const LIST_MIX_TCL: &str = "\
set l {}\n\
for {set k 0} {$k < 300} {incr k} {lappend l [expr {($k * 7919) % 1000}]}\n\
set sorted [lsort -integer $l]\n\
set sum 0\n\
foreach x $sorted {incr sum $x}\n\
set sum";

fn fresh_interp(bc: bool) -> Interp {
    let mut i = Interp::new();
    i.set_bc_enabled(bc);
    i.eval(FACTOR_TCL).unwrap();
    i
}

struct Measured {
    name: &'static str,
    tree_ns: f64,
    vm_ns: f64,
    /// Median of per-round tree/VM ratios — the gated number. More
    /// robust than the ratio of the two medians: the rounds interleave
    /// both engines, so machine-wide slowdowns hit both sides of each
    /// round equally instead of skewing whichever engine ran second.
    speedup: f64,
}

fn measure(name: &'static str, script: &'static str) -> Measured {
    // Byte-identity: the VM must be observationally invisible.
    let mut tree_i = fresh_interp(false);
    let mut vm_i = fresh_interp(true);
    let tree_out = tree_i.eval(script).unwrap().to_string();
    let vm_out = vm_i.eval(script).unwrap().to_string();
    assert_eq!(tree_out, vm_out, "VM output diverged on {name}");
    assert!(
        vm_i.bc_stats().compiles > 0,
        "the VM must actually engage on {name}"
    );

    let stats = measure_ab(
        Duration::from_millis(200),
        15,
        Duration::from_millis(2),
        || {
            std::hint::black_box(tree_i.eval(script).unwrap().as_str().len());
        },
        || {
            std::hint::black_box(vm_i.eval(script).unwrap().as_str().len());
        },
    );
    Measured {
        name,
        tree_ns: stats.a_ns,
        vm_ns: stats.b_ns,
        speedup: stats.ratio,
    }
}

fn write_json(results: &[Measured]) {
    let mut out = String::from("{\n  \"experiment\": \"e23_bytecode\",\n  \"workloads\": [\n");
    for (k, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"tree_ns_per_iter\": {:.1}, \"vm_ns_per_iter\": {:.1}, \"speedup\": {:.2}}}{}\n",
            m.name,
            m.tree_ns,
            m.vm_ns,
            m.speedup,
            if k + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = workspace_root().join("BENCH_e23.json");
    std::fs::write(&path, out).expect("write BENCH_e23.json");
    println!("  wrote {}", path.display());
}

fn bench(c: &mut Criterion) {
    bench::banner("E23", "bytecode VM vs cached tree-walker, same binary");
    let results = [
        measure("loop_heavy_factor", LOOP_HEAVY_TCL),
        measure("tight_arith", TIGHT_ARITH_TCL),
        measure("list_mix", LIST_MIX_TCL),
    ];
    for m in &results {
        bench::row(
            &format!("{} tree-walker (bcdisable)", m.name),
            format!("{:.0} ns/iter", m.tree_ns),
        );
        bench::row(
            &format!("{} bytecode VM", m.name),
            format!("{:.0} ns/iter", m.vm_ns),
        );
        bench::row(&format!("{} speedup", m.name), format!("{:.1}x", m.speedup));
    }
    write_json(&results);
    assert!(
        results[0].speedup >= 3.0,
        "acceptance: >=3x on the loop-heavy workload, got {:.2}x",
        results[0].speedup
    );

    // Keep a criterion-style group so E23 reports like the others.
    let mut group = c.benchmark_group("e23_bytecode");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1000));
    group.sample_size(11);
    group.bench_function("factor_3599_vm", |b| {
        let mut i = fresh_interp(true);
        b.iter(|| i.eval(LOOP_HEAVY_TCL).unwrap().to_string());
    });
    group.bench_function("factor_3599_tree", |b| {
        let mut i = fresh_interp(false);
        b.iter(|| i.eval(LOOP_HEAVY_TCL).unwrap().to_string());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
