//! E28 — display frame cost: does damage tracking actually pay?
//!
//! The display subsystem's claim is that a typical widget update (a
//! label changing text while the rest of the screen sits still) ships
//! orders of magnitude fewer bytes as a damage-tracked frame than as a
//! full-screen repaint. The workload is the steady state of a remote
//! frontend: one realized label updated once per frame, everything
//! else unchanged.
//!
//! The screen is a populated dashboard — a form grid of labels with
//! text — because the baseline's cost is content-dependent: frames are
//! RLE-compressed, so a full repaint of an *empty* screen is nearly
//! free and would flatter neither side. We measure, over the same
//! update sequence:
//!
//! * **damage-tracked** — flush the display, take the pending damage,
//!   build the frame from just those rects (the scheduler's pump path);
//! * **full-frame** — force full damage before every flush, the
//!   resync/no-tracking baseline.
//!
//! Bytes per frame for both, frames/s for the tracked path, and the
//! bytes-saved ratio go to `BENCH_e28.json`. The acceptance gate is
//! ratio ≥ 5×: below that, tracking damage per mutation would not be
//! worth the bookkeeping and the protocol could just ship screens.

use std::time::{Duration, Instant};

use bench::{criterion_group, criterion_main, workspace_root, Criterion};
use wafe_core::{Flavor, WafeSession};
use wafe_display::Frame;

const FRAMES: usize = 200;
const ROWS: usize = 6;
const COLS: usize = 4;

fn session_with_ticker() -> WafeSession {
    let mut s = WafeSession::new(Flavor::Athena);
    s.eval("form grid topLevel").unwrap();
    for r in 0..ROWS {
        for c in 0..COLS {
            let mut cmd = format!(
                "label r{r}c{c} grid label {{cell {r}:{c} status ok {}}} width 200 height 28",
                r * 31 + c * 17
            );
            if c > 0 {
                cmd.push_str(&format!(" fromHoriz r{r}c{}", c - 1));
            }
            if r > 0 {
                cmd.push_str(&format!(" fromVert r{}c{c}", r - 1));
            }
            s.eval(&cmd).unwrap();
        }
    }
    s.eval(&format!(
        "label ticker grid label {{frame 000000}} width 200 height 28 fromVert r{}c0",
        ROWS - 1
    ))
    .unwrap();
    s.eval("realize").unwrap();
    {
        let mut app = s.app.borrow_mut();
        let d = &mut app.displays[0];
        d.set_compositing(true);
        // Consume the attach-time full frame; the loops below measure
        // steady state only.
        d.flush();
        let _ = d.take_frame_damage();
        let _ = d.next_frame_seq();
    }
    s
}

fn update(s: &mut WafeSession, i: usize) {
    s.eval(&format!("setValues ticker label {{frame {i:06}}}"))
        .unwrap();
}

/// One pumped frame, exactly as the scheduler builds it. `full` forces
/// a whole-screen repaint first (the no-tracking baseline).
fn one_frame(s: &mut WafeSession, full: bool) -> usize {
    let mut app = s.app.borrow_mut();
    let d = &mut app.displays[0];
    if full {
        d.request_full_frame();
    }
    d.flush();
    let damage = d.take_frame_damage();
    let seq = d.next_frame_seq();
    let frame = Frame::build(d.framebuffer(), &damage, seq);
    std::hint::black_box(&frame);
    frame.encoded_len()
}

fn bench(c: &mut Criterion) {
    bench::banner("E28", "display frames: damage-tracked vs full repaint");

    // Correctness before cost: the tracked frame must exist, be
    // incremental, and decode to the same bytes it encoded.
    let mut s = session_with_ticker();
    update(&mut s, 1);
    {
        let mut app = s.app.borrow_mut();
        let d = &mut app.displays[0];
        d.flush();
        let damage = d.take_frame_damage();
        assert!(!damage.full, "a label update must stay incremental");
        assert!(!damage.rects.is_empty());
        let frame = Frame::build(d.framebuffer(), &damage, 1);
        let bytes = frame.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), frame);
    }

    let mut s = session_with_ticker();
    let t = Instant::now();
    let mut damage_bytes = 0usize;
    for i in 0..FRAMES {
        update(&mut s, i + 1);
        damage_bytes += one_frame(&mut s, false);
    }
    let damage_elapsed = t.elapsed();

    let mut s = session_with_ticker();
    let mut full_bytes = 0usize;
    for i in 0..FRAMES {
        update(&mut s, i + 1);
        full_bytes += one_frame(&mut s, true);
    }

    let damage_per_frame = damage_bytes as f64 / FRAMES as f64;
    let full_per_frame = full_bytes as f64 / FRAMES as f64;
    let ratio = full_per_frame / damage_per_frame;
    let fps = FRAMES as f64 / damage_elapsed.as_secs_f64();

    bench::row(
        "damage-tracked",
        format!("{damage_per_frame:.0} bytes/frame  ({fps:.0} frames/s incl. eval)"),
    );
    bench::row("full repaint", format!("{full_per_frame:.0} bytes/frame"));
    bench::row("bytes saved", format!("{ratio:.1}x"));

    let out = format!(
        "{{\n  \"experiment\": \"e28_display\",\n  \"workload\": \"label_update_per_frame\",\n  \
         \"frames\": {FRAMES},\n  \
         \"damage_bytes_per_frame\": {damage_per_frame:.1},\n  \
         \"full_bytes_per_frame\": {full_per_frame:.1},\n  \
         \"bytes_saved_ratio\": {ratio:.1},\n  \
         \"damage_frames_per_sec\": {fps:.1}\n}}\n"
    );
    let path = workspace_root().join("BENCH_e28.json");
    std::fs::write(&path, out).expect("write BENCH_e28.json");
    println!("  wrote {}", path.display());

    assert!(
        ratio >= 5.0,
        "acceptance: damage tracking must save >=5x bytes per frame, got {ratio:.1}x"
    );

    let mut group = c.benchmark_group("e28_display");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(800));
    group.sample_size(11);
    let mut s = session_with_ticker();
    let mut i = 0usize;
    group.bench_function("damage_tracked_frame", |b| {
        b.iter(|| {
            i += 1;
            update(&mut s, i);
            one_frame(&mut s, false)
        });
    });
    group.bench_function("full_repaint_frame", |b| {
        b.iter(|| {
            i += 1;
            update(&mut s, i);
            one_frame(&mut s, true)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
