//! E13 — the claim "about 60% of the code is generated automatically
//! from specifications": measure the generated / hand-written command
//! split and the cost of the spec parser (the runtime code generator).

use bench::{criterion_group, criterion_main, Criterion};
use wafe_core::session::{MOTIF_SPEC, SHELLS_SPEC, XAW_SPEC, XT_SPEC};
use wafe_core::spec::parse_spec;
use wafe_core::{Flavor, WafeSession};

use bench::{banner, row};

fn regenerate_claim() {
    banner(
        "E13",
        "generated vs hand-written commands (paper: ~60% generated)",
    );
    for (flavor, name) in [
        (Flavor::Athena, "wafe (Athena)"),
        (Flavor::Motif, "mofe (Motif)"),
        (Flavor::Both, "both"),
    ] {
        let s = WafeSession::new(flavor);
        let (generated, handwritten) = s.command_stats();
        let frac = 100.0 * generated as f64 / (generated + handwritten) as f64;
        row(
            &format!("{name}: generated/hand-written"),
            format!("{generated}/{handwritten} = {frac:.0}% generated"),
        );
        assert!(frac > 50.0, "{name} generated fraction too low: {frac}");
    }
    // Spec inventory per file.
    for (text, file) in [
        (XT_SPEC, "xt.wspec"),
        (SHELLS_SPEC, "shells.wspec"),
        (XAW_SPEC, "xaw.wspec"),
        (MOTIF_SPEC, "motif.wspec"),
    ] {
        let spec = parse_spec(text).unwrap();
        row(
            file,
            format!(
                "{} classes + {} commands",
                spec.classes.len(),
                spec.commands.len()
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate_claim();
    let mut group = c.benchmark_group("e13_generated_fraction");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.bench_function("parse_all_specs", |b| {
        b.iter(|| {
            for text in [XT_SPEC, SHELLS_SPEC, XAW_SPEC, MOTIF_SPEC] {
                std::hint::black_box(parse_spec(std::hint::black_box(text)).unwrap());
            }
        });
    });
    group.bench_function("generate_reference_guide", |b| {
        let s = WafeSession::new(Flavor::Both);
        b.iter(|| std::hint::black_box(s.reference_guide()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
