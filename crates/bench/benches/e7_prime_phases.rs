//! E7 — Figure 5: the three phases of a frontend application, measured
//! with the protocol engine (deterministic; the real-process run lives in
//! `tests/frontend_prime.rs`).

use bench::{criterion_group, criterion_main, Criterion};
use wafe_core::Flavor;
use wafe_ipc::ProtocolEngine;

use bench::{banner, row};

const TREE_LINES: &[&str] = &[
    "%form top topLevel",
    "%asciiText input top editType edit width 200",
    "%action input override {<Key>Return: exec(echo [gV input string])}",
    "%label result top label {} width 200 fromVert input",
    "%command quit top fromVert result callback quit",
    "%label info top fromVert result fromHoriz quit label {} borderWidth 0 width 150",
    "%realize",
];

fn regenerate_figure() {
    banner(
        "E7",
        "Figure 5 — the three phases of a Wafe frontend application",
    );
    let mut e = ProtocolEngine::new(Flavor::Athena);
    let start = std::time::Instant::now();
    for line in TREE_LINES {
        e.handle_line(line).unwrap();
    }
    row(
        "phase 2 (widget tree, 7 protocol lines)",
        format!("{:?}", start.elapsed()),
    );
    // Phase 3: the read loop, one interaction.
    let start = std::time::Instant::now();
    {
        let mut app = e.session.app.borrow_mut();
        let input = app.lookup("input").unwrap();
        let win = app.widget(input).window.unwrap();
        app.displays[0].set_input_focus(Some(win));
        app.displays[0].inject_key_text("360\n");
    }
    e.session.pump();
    let sent = e.take_app_lines();
    assert_eq!(sent, vec!["360"]);
    e.handle_line("%sV result label {5*3*3*2*2*2}").unwrap();
    e.handle_line("%sV info label {0 seconds}").unwrap();
    row(
        "phase 3 (keypress -> answer applied)",
        format!("{:?}", start.elapsed()),
    );
    println!("{}", e.session.eval("snapshot 0 0 280 100").unwrap());
    let (interpreted, passed) = e.stats();
    row("protocol lines interpreted", interpreted);
    row("protocol lines passed through", passed);
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("e7_prime_phases");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(20);
    group.bench_function("phase2_widget_tree", |b| {
        b.iter(|| {
            let mut e = ProtocolEngine::new(Flavor::Athena);
            for line in TREE_LINES {
                e.handle_line(std::hint::black_box(line)).unwrap();
            }
            e
        });
    });
    group.bench_function("phase3_interaction", |b| {
        let mut e = ProtocolEngine::new(Flavor::Athena);
        for line in TREE_LINES {
            e.handle_line(line).unwrap();
        }
        b.iter(|| {
            {
                let mut app = e.session.app.borrow_mut();
                let input = app.lookup("input").unwrap();
                let win = app.widget(input).window.unwrap();
                app.displays[0].set_input_focus(Some(win));
                app.displays[0].inject_key_named("Return", wafe_xproto::Modifiers::NONE);
            }
            e.session.pump();
            let _ = e.take_app_lines();
            e.handle_line("%sV result label {5*3*3*2*2*2}").unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
