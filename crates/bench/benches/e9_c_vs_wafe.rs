//! E9 — the paper's claim: "from its performance a user cannot
//! distinguish whether a widget application was developed using C or
//! Wafe". The same UI work done three ways:
//!
//! 1. direct toolkit API calls (the "C program"),
//! 2. in-process Tcl commands (Wafe file mode),
//! 3. protocol lines (Wafe frontend mode).
//!
//! The shape to reproduce: each layer adds overhead, but all three stay
//! far below human-perceptible latency (~10 ms was the 1993 bar), so the
//! claim holds even though the layers differ by constant factors.

use bench::{criterion_group, criterion_main, Criterion};
use wafe_core::Flavor;
use wafe_ipc::ProtocolEngine;

use bench::{athena, banner, row};

fn summarise_latency() {
    banner(
        "E9",
        "C vs Wafe — widget creation + callback dispatch, three ways",
    );
    // One-shot wall-clock samples for the narrative (Criterion runs the
    // statistically sound version below).
    let n = 200u32;

    // Direct toolkit API ("C").
    let mut s = athena();
    s.eval("realize").unwrap();
    let start = std::time::Instant::now();
    {
        let mut app = s.app.borrow_mut();
        let top = app.lookup("topLevel").unwrap();
        for i in 0..n {
            let w = app
                .create_widget(
                    &format!("api{i}"),
                    "Label",
                    Some(top),
                    0,
                    &[("label".to_string(), "hello".to_string())],
                    true,
                )
                .unwrap();
            app.destroy_widget(w);
        }
    }
    let api = start.elapsed() / n;
    row(
        "create+destroy via direct API",
        format!("{api:?} per widget"),
    );

    // In-process Tcl (file mode).
    let start = std::time::Instant::now();
    for i in 0..n {
        s.eval(&format!("label tcl{i} topLevel label hello"))
            .unwrap();
        s.eval(&format!("destroyWidget tcl{i}")).unwrap();
    }
    let tcl = start.elapsed() / n;
    row(
        "create+destroy via Tcl commands",
        format!("{tcl:?} per widget"),
    );

    // Protocol lines (frontend mode, loopback transport).
    let mut e = ProtocolEngine::new(Flavor::Athena);
    e.handle_line("%realize").unwrap();
    let start = std::time::Instant::now();
    for i in 0..n {
        e.handle_line(&format!("%label p{i} topLevel label hello"))
            .unwrap();
        e.handle_line(&format!("%destroyWidget p{i}")).unwrap();
    }
    let proto = start.elapsed() / n;
    row(
        "create+destroy via protocol lines",
        format!("{proto:?} per widget"),
    );

    row(
        "Tcl overhead over direct API",
        format!("{:.1}x", tcl.as_secs_f64() / api.as_secs_f64().max(1e-12)),
    );
    let imperceptible = api.as_millis() < 10 && tcl.as_millis() < 10 && proto.as_millis() < 10;
    row("all layers below the ~10 ms perception bar", imperceptible);
    assert!(
        tcl.as_millis() < 10,
        "Tcl path must stay imperceptible: {tcl:?}"
    );
    assert!(
        proto.as_millis() < 10,
        "protocol path must stay imperceptible: {proto:?}"
    );
}

fn bench(c: &mut Criterion) {
    summarise_latency();
    let mut group = c.benchmark_group("e9_c_vs_wafe");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(30);

    group.bench_function("create_destroy_direct_api", |b| {
        let mut s = athena();
        s.eval("realize").unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let mut app = s.app.borrow_mut();
            let top = app.lookup("topLevel").unwrap();
            let w = app
                .create_widget(&format!("w{i}"), "Label", Some(top), 0, &[], true)
                .unwrap();
            app.destroy_widget(w);
            i += 1;
        });
    });

    group.bench_function("create_destroy_tcl", |b| {
        let mut s = athena();
        s.eval("realize").unwrap();
        let mut i = 0u64;
        b.iter(|| {
            s.eval(&format!("label w{i} topLevel")).unwrap();
            s.eval(&format!("destroyWidget w{i}")).unwrap();
            i += 1;
        });
    });

    group.bench_function("create_destroy_protocol", |b| {
        let mut e = ProtocolEngine::new(Flavor::Athena);
        e.handle_line("%realize").unwrap();
        let mut i = 0u64;
        b.iter(|| {
            e.handle_line(&format!("%label w{i} topLevel")).unwrap();
            e.handle_line(&format!("%destroyWidget w{i}")).unwrap();
            i += 1;
        });
    });

    // Callback dispatch: click-to-script, the latency a user feels.
    group.bench_function("callback_dispatch_click", |b| {
        let mut s = athena();
        s.eval("command b topLevel label hit callback {set n [expr $n+1]}")
            .unwrap();
        s.eval("set n 0").unwrap();
        s.eval("realize").unwrap();
        b.iter(|| bench::click(&mut s, "b"));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
