//! E24 — waferd at scale: the readiness-driven event loop vs the
//! thread-per-connection baseline.
//!
//! E22 proved correctness at 64 clients; this experiment pushes the
//! poll(2) event loop to 1k / 4k / 10k *simultaneously connected*
//! sessions against a real `waferd` child process (spawned so the
//! server's fd budget is its own, not the harness's). Each client runs
//! paced `%set`/`%echo` round trips; the harness itself is poll-driven
//! (one thread, nonblocking sockets through the same [`PollSet`] the
//! server uses), because 10k blocking client threads would measure the
//! harness, not the server.
//!
//! Reported per scale: **commands/sec**, **dispatch p50/p99** (enqueue
//! of a round trip to its reply, microseconds) and peak active
//! sessions. Every reply is checked byte-for-byte against a local
//! [`ProtocolEngine`] fed the same lines. A baseline row reruns the
//! 1k-client workload with `--io threads` (the pre-event-loop reader
//! model); acceptance is >= 2x commands/sec for the poll model at 1k,
//! peak_active == clients at every scale, and zero mismatches.
//!
//! `WAFE_E24_CLIENTS=N` switches to smoke mode: one scale of N
//! clients, results to `target/BENCH_e24_smoke.json`, baseline and
//! scale assertions skipped (CI runs N=256). Full runs write
//! `BENCH_e24.json` at the workspace root.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use bench::{criterion_group, criterion_main, workspace_root, Criterion};
use wafe_core::Flavor;
use wafe_ipc::{Interest, PollSet, ProtocolEngine, SysPoller};

const SCALES: [usize; 3] = [1000, 4000, 10000];

/// Round trips per client, sized so every scale moves ~80k commands
/// (2 commands per trip) in a comparable measurement window.
fn trips_for(clients: usize) -> usize {
    (40_000 / clients).clamp(4, 40)
}

/// A `waferd` child process; killed (not drained) on drop so a panic
/// mid-measurement cannot leak a listener.
struct Waferd {
    child: Child,
    addr: std::net::SocketAddr,
}

impl Waferd {
    fn spawn(io: &str) -> Waferd {
        let bin = workspace_root().join("target/release/waferd");
        assert!(
            bin.exists(),
            "{} missing — run `cargo build --release` first",
            bin.display()
        );
        let mut child = Command::new(&bin)
            .args([
                "--listen",
                "127.0.0.1:0",
                "--quiet",
                "--max-sessions",
                "12000",
                "--io",
                io,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn waferd");
        let mut banner = String::new();
        BufReader::new(child.stdout.take().expect("waferd stdout"))
            .read_line(&mut banner)
            .expect("read waferd banner");
        let addr = banner
            .trim_end()
            .strip_prefix("waferd listening tcp ")
            .unwrap_or_else(|| panic!("unexpected waferd banner: {banner:?}"))
            .parse()
            .expect("waferd addr");
        Waferd { child, addr }
    }
}

impl Drop for Waferd {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One nonblocking client connection's state machine.
struct Client {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    warmed: bool,
    trips_done: usize,
    sent_at: Instant,
    got: Vec<String>,
}

impl Client {
    /// Flushes the pending write buffer; true if bytes remain (the
    /// caller should keep write interest armed).
    fn flush(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) => panic!("client write: {e}"),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        false
    }

    /// Drains readable bytes and returns the complete lines.
    fn read_lines(&mut self) -> Vec<String> {
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => panic!("server closed a client connection mid-run"),
                Ok(n) => self.rbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("client read: {e}"),
            }
        }
        let mut lines = Vec::new();
        while let Some(pos) = self.rbuf.iter().position(|&b| b == b'\n') {
            let rest = self.rbuf.split_off(pos + 1);
            self.rbuf.pop();
            lines.push(String::from_utf8_lossy(&self.rbuf).into_owned());
            self.rbuf = rest;
        }
        lines
    }

    fn enqueue_trip(&mut self, c: usize, i: usize, now: Instant) {
        self.wbuf
            .extend_from_slice(format!("%set v c{c}-{i}\n%echo [set v]\n").as_bytes());
        self.sent_at = now;
    }
}

struct Measured {
    io: &'static str,
    clients: usize,
    commands_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    peak_active: usize,
    mismatches: usize,
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64
}

/// Runs the full workload at one scale against one server flavor.
fn measure(io: &'static str, clients: usize) -> Measured {
    let trips = trips_for(clients);
    let server = Waferd::spawn(io);
    let mut poll = PollSet::new(Box::new(SysPoller::new()));
    let mut conns: Vec<Client> = Vec::with_capacity(clients);

    // Connect and send the warmup line while still blocking — the
    // accept loop drains continuously, so sequential connects never
    // overflow the listen backlog.
    use std::os::unix::io::AsRawFd;
    for _ in 0..clients {
        let mut stream = TcpStream::connect(server.addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream.write_all(b"%echo warm\n").expect("warmup write");
        stream.set_nonblocking(true).expect("set_nonblocking");
        conns.push(Client {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            warmed: false,
            trips_done: 0,
            sent_at: Instant::now(),
            got: Vec::with_capacity(trips),
        });
    }
    for (t, c) in conns.iter().enumerate() {
        poll.register(Interest::read(t, c.stream.as_raw_fd()));
    }

    // Phase 1: every session answers its warmup — proof all `clients`
    // sessions are attached before the clock starts.
    let mut pending = clients;
    while pending > 0 {
        let ready: Vec<_> = poll.wait(100).expect("poll").to_vec();
        for r in ready {
            let c = &mut conns[r.token];
            for line in c.read_lines() {
                assert_eq!(line, "warm", "warmup reply");
                c.warmed = true;
                pending -= 1;
            }
        }
    }

    // Peak concurrency, observed from inside the server while every
    // client is connected: `serve status` word 3 is the active count
    // (minus one for the operator session asking).
    let peak_active = {
        let op = TcpStream::connect(server.addr).expect("operator connect");
        let mut reader = BufReader::new(op.try_clone().unwrap());
        let mut w = op;
        w.write_all(b"%echo [lindex [serve status] 3]\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().parse::<usize>().expect("active count") - 1
    };

    // Phase 2: the measured window. Every client starts a paced
    // round-trip loop; a reply releases the next trip.
    let start = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(clients * trips);
    for (t, c) in conns.iter_mut().enumerate() {
        c.enqueue_trip(t, 0, start);
        if c.flush() {
            poll.set_write_interest(t, true);
        }
    }
    let mut pending = clients;
    while pending > 0 {
        let ready: Vec<_> = poll.wait(100).expect("poll").to_vec();
        for r in ready {
            let t = r.token;
            if r.writable && !conns[t].flush() {
                poll.set_write_interest(t, false);
            }
            if !r.readable && !r.hup {
                continue;
            }
            let now = Instant::now();
            let mut finished_trips = 0usize;
            {
                let c = &mut conns[t];
                for line in c.read_lines() {
                    latencies_us.push(now.duration_since(c.sent_at).as_micros() as u64);
                    c.got.push(line);
                    c.trips_done += 1;
                    finished_trips += 1;
                    if c.trips_done < trips {
                        c.enqueue_trip(t, c.trips_done, now);
                    } else {
                        pending -= 1;
                    }
                }
            }
            if finished_trips > 0 && conns[t].trips_done < trips && conns[t].flush() {
                poll.set_write_interest(t, true);
            }
        }
    }
    let elapsed = start.elapsed();

    // Byte identity: the same lines through a local ProtocolEngine.
    // Each trip is self-contained (%set then %echo), so one engine
    // verifies every client's stream.
    let mut engine = ProtocolEngine::new(Flavor::Athena);
    let mut mismatches = 0usize;
    for (t, c) in conns.iter().enumerate() {
        for (i, got) in c.got.iter().enumerate() {
            let _ = engine.handle_line(&format!("%set v c{t}-{i}"));
            let _ = engine.handle_line("%echo [set v]");
            let expected = engine.take_app_lines();
            if expected.len() != 1 || &expected[0] != got {
                mismatches += 1;
            }
        }
        if c.got.len() != trips {
            mismatches += 1;
        }
    }

    drop(conns);
    latencies_us.sort_unstable();
    let commands = (clients * trips * 2) as f64;
    Measured {
        io,
        clients,
        commands_per_sec: commands / elapsed.as_secs_f64(),
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
        peak_active,
        mismatches,
    }
}

fn write_json(results: &[Measured], speedup: Option<f64>, path: &std::path::Path) {
    let mut out = String::from("{\n  \"experiment\": \"e24_serve_scale\",\n  \"workloads\": [\n");
    for (k, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}_c{}\", \"io\": \"{}\", \"clients\": {}, \"commands_per_sec\": {:.0}, \"dispatch_p50_us\": {:.0}, \"dispatch_p99_us\": {:.0}, \"peak_active\": {}, \"mismatches\": {}}}{}\n",
            m.io,
            m.clients,
            m.io,
            m.clients,
            m.commands_per_sec,
            m.p50_us,
            m.p99_us,
            m.peak_active,
            m.mismatches,
            if k + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    if let Some(s) = speedup {
        out.push_str(&format!(",\n  \"speedup_poll_over_threads_c1000\": {s:.2}"));
    }
    out.push_str("\n}\n");
    std::fs::write(path, out).expect("write e24 json");
    println!("  wrote {}", path.display());
}

fn bench(c: &mut Criterion) {
    let smoke: Option<usize> = std::env::var("WAFE_E24_CLIENTS")
        .ok()
        .map(|v| v.parse().expect("WAFE_E24_CLIENTS"));
    let scales: Vec<usize> = match smoke {
        Some(n) => vec![n],
        None => SCALES.to_vec(),
    };
    bench::banner(
        "E24",
        &format!("waferd at scale: readiness-driven event loop at {scales:?} concurrent clients"),
    );

    let mut results = Vec::new();
    for &clients in &scales {
        let m = measure("poll", clients);
        bench::row(
            &format!("poll {clients} clients"),
            format!(
                "{:.0} commands/s  p50 {:.0}us  p99 {:.0}us  peak {}",
                m.commands_per_sec, m.p50_us, m.p99_us, m.peak_active
            ),
        );
        results.push(m);
    }

    let mut speedup = None;
    if smoke.is_none() {
        // Baseline: the thread-per-connection reader model at 1k.
        let base = measure("threads", 1000);
        bench::row(
            "threads 1000 clients",
            format!(
                "{:.0} commands/s  p50 {:.0}us  p99 {:.0}us  peak {}",
                base.commands_per_sec, base.p50_us, base.p99_us, base.peak_active
            ),
        );
        let poll_1k = results
            .iter()
            .find(|m| m.clients == 1000)
            .expect("poll 1k row");
        let s = poll_1k.commands_per_sec / base.commands_per_sec;
        bench::row("speedup poll/threads at 1k", format!("{s:.2}x"));
        speedup = Some(s);
        results.push(base);
    }

    // Acceptance. Smoke mode keeps the correctness half (peak
    // concurrency and byte identity) and skips the scale/speedup half.
    for m in &results {
        assert_eq!(
            m.peak_active, m.clients,
            "acceptance: every client held a live session ({} {}c)",
            m.io, m.clients
        );
        assert_eq!(
            m.mismatches, 0,
            "acceptance: zero protocol corruption ({} {}c)",
            m.io, m.clients
        );
    }
    if let Some(s) = speedup {
        assert!(
            s >= 2.0,
            "acceptance: poll model >= 2x threads model at 1k clients (got {s:.2}x)"
        );
    }

    let path = match smoke {
        Some(_) => workspace_root().join("target/BENCH_e24_smoke.json"),
        None => workspace_root().join("BENCH_e24.json"),
    };
    write_json(&results, speedup, &path);

    // A criterion-style group so E24 reports like the others: round
    // trip latency on one connection against a live waferd child.
    let mut group = c.benchmark_group("e24_serve_scale");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1000));
    group.sample_size(11);
    group.bench_function("round_trip_child_process", |b| {
        let server = Waferd::spawn("poll");
        let stream = TcpStream::connect(server.addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        let mut line = String::new();
        b.iter(|| {
            w.write_all(b"%echo ping\n").unwrap();
            w.flush().unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "ping");
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
