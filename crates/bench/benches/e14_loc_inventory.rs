//! E14 — scale comparison with the paper's "The Wafe source is currently
//! about 13000 lines of C code": the reproduction's lines-of-code
//! inventory per layer. The Rust total is larger because the paper links
//! against Tcl, Xt, Xaw and X11 — all of which this reproduction had to
//! build.

use bench::{criterion_group, criterion_main, Criterion};

use bench::{banner, count_loc, row, workspace_root};

fn regenerate_inventory() {
    banner(
        "E14",
        "lines of code per layer (paper: Wafe itself ~13000 lines of C)",
    );
    let root = workspace_root();
    let layers = [
        ("wafe-tcl (Tcl interpreter)", "crates/wafe-tcl/src"),
        (
            "wafe-xproto (X display simulation)",
            "crates/wafe-xproto/src",
        ),
        ("wafe-xt (Xt Intrinsics)", "crates/wafe-xt/src"),
        ("wafe-xaw (Athena widgets)", "crates/wafe-xaw/src"),
        ("wafe-motif (Motif subset)", "crates/wafe-motif/src"),
        ("wafe-core (Wafe command layer)", "crates/wafe-core/src"),
        ("wafe-ipc (frontend communication)", "crates/wafe-ipc/src"),
    ];
    let mut total = 0usize;
    let mut wafe_itself = 0usize;
    for (label, dir) in layers {
        let loc = count_loc(&root.join(dir));
        row(label, loc);
        total += loc;
        if dir.contains("wafe-core") || dir.contains("wafe-ipc") {
            wafe_itself += loc;
        }
    }
    row("total substrate + contribution", total);
    row("the Wafe-equivalent part (core + ipc)", wafe_itself);
    println!(
        "  (the paper's 13000 C lines cover only the Wafe-equivalent part;\n   \
         Tcl/Xt/Xaw/X11 were linked libraries there, built from scratch here)"
    );
    assert!(total > 10000, "inventory implausibly small: {total}");
}

fn bench(c: &mut Criterion) {
    regenerate_inventory();
    let mut group = c.benchmark_group("e14_loc_inventory");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(10);
    let root = workspace_root();
    group.bench_function("count_workspace_loc", |b| {
        b.iter(|| count_loc(&root.join("crates")));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
