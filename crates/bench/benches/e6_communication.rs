//! E6 — Figure 4: the communication mechanism. Measures the `%`-line
//! command channel against the mass-transfer data channel (the paper's
//! 100000-byte example), and file mode against frontend mode.

use bench::{criterion_group, criterion_main, Criterion, Throughput};
use wafe_core::Flavor;
use wafe_ipc::ProtocolEngine;

use bench::{banner, row};

fn regenerate_figure() {
    banner("E6", "Figure 4 — command channel vs mass-transfer channel");
    // The paper's own flow: transfer 100000 bytes into a text widget.
    let mut e = ProtocolEngine::new(Flavor::Athena);
    e.handle_line("%asciiText text topLevel editType edit")
        .unwrap();
    e.handle_line("%realize").unwrap();
    e.handle_line("%echo listening on [getChannel]").unwrap();
    let answer = &e.take_app_lines()[0];
    row("getChannel answer (no frontend attached)", answer);
    let payload = vec![b'x'; 100000];

    // Pure transfer comparison: both paths land the bytes in a Tcl
    // variable; the channel is the only difference. (Applying the data
    // to a realized widget afterwards costs the same either way and
    // would mask the channel cost.)
    e.handle_line("%setCommunicationVariable C 100000 {set done 1}")
        .unwrap();
    let start = std::time::Instant::now();
    e.handle_mass_data(&payload);
    let mass_time = start.elapsed();
    assert_eq!(e.session.interp.get_var("C").unwrap().len(), 100000);
    row(
        "100000 B via mass channel (no parsing)",
        format!("{mass_time:?}"),
    );

    let mut e2 = ProtocolEngine::new(Flavor::Athena);
    e2.handle_line("%set C {}").unwrap();
    let start = std::time::Instant::now();
    for chunk in payload.chunks(1000) {
        let text = String::from_utf8_lossy(chunk);
        e2.handle_line(&format!("%append C {{{text}}}")).unwrap();
    }
    let line_time = start.elapsed();
    assert_eq!(e2.session.interp.get_var("C").unwrap().len(), 100000);
    row(
        "100000 B via command channel (100 parsed lines)",
        format!("{line_time:?}"),
    );
    row(
        "mass channel speedup",
        format!(
            "{:.1}x",
            line_time.as_secs_f64() / mass_time.as_secs_f64().max(1e-9)
        ),
    );

    // The paper's full example: the transferred data lands in the text
    // widget via the completion script.
    let mut e3 = ProtocolEngine::new(Flavor::Athena);
    e3.handle_line("%asciiText text topLevel editType edit")
        .unwrap();
    e3.handle_line("%realize").unwrap();
    e3.handle_line("%setCommunicationVariable C 100000 {sV text string $C}")
        .unwrap();
    let start = std::time::Instant::now();
    e3.handle_mass_data(&payload);
    let applied = start.elapsed();
    assert_eq!(e3.session.eval("gV text string").unwrap().len(), 100000);
    row(
        "transfer + sV text string $C (paper's flow)",
        format!("{applied:?}"),
    );
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let mut group = c.benchmark_group("e6_communication");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(30);

    // Command-channel throughput: one protocol line, parsed + executed.
    group.bench_function("command_line_roundtrip", |b| {
        let mut e = ProtocolEngine::new(Flavor::Athena);
        e.handle_line("%label l topLevel label x").unwrap();
        e.handle_line("%realize").unwrap();
        b.iter(|| {
            e.handle_line(std::hint::black_box("%sV l label {new text}"))
                .unwrap();
        });
    });

    // Mass-channel throughput.
    group.throughput(Throughput::Bytes(100000));
    group.bench_function("mass_channel_100k", |b| {
        let mut e = ProtocolEngine::new(Flavor::Athena);
        e.handle_line("%asciiText text topLevel editType edit")
            .unwrap();
        e.handle_line("%realize").unwrap();
        let payload = vec![b'x'; 100000];
        b.iter(|| {
            e.handle_line("%setCommunicationVariable C 100000 {set done 1}")
                .unwrap();
            e.handle_mass_data(std::hint::black_box(&payload));
        });
    });

    group.throughput(Throughput::Bytes(100000));
    group.bench_function("command_channel_100k", |b| {
        let mut e = ProtocolEngine::new(Flavor::Athena);
        e.handle_line("%set C {}").unwrap();
        let payload = vec![b'x'; 100000];
        b.iter(|| {
            e.handle_line("%set C {}").unwrap();
            for chunk in payload.chunks(1000) {
                let text = String::from_utf8_lossy(chunk);
                e.handle_line(&format!("%append C {{{text}}}")).unwrap();
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
