//! E12 — the resource-count example: `getResourceList` on a Label prints
//! 42 under the Xaw3d stack, with the names the paper lists.

use bench::{criterion_group, criterion_main, Criterion};

use bench::{athena, banner, row};

fn regenerate_example() {
    banner("E12", "getResourceList — the paper's 42-resource Label");
    let mut s = athena();
    s.eval("label l topLevel").unwrap();
    let n = s.eval("echo [getResourceList l retVal]").unwrap();
    let _ = n;
    let printed = s.take_output();
    row("echo [getResourceList l retVal]", printed.trim());
    assert_eq!(printed.trim(), "42");
    let names = s.interp.get_var("retVal").unwrap();
    let prefix: Vec<&str> = names.split_whitespace().take(12).collect();
    row("first resource names", prefix.join(" "));
    assert_eq!(
        &prefix[..6],
        &[
            "destroyCallback",
            "x",
            "y",
            "width",
            "height",
            "borderWidth"
        ]
    );
    // Per-class counts, for the record.
    for (class, cmd) in [
        ("Label", "label"),
        ("Command", "command"),
        ("Toggle", "toggle"),
        ("List", "list"),
        ("AsciiText", "asciiText"),
    ] {
        let w = format!("w{class}");
        s.eval(&format!("{cmd} {w} topLevel")).unwrap();
        let count = s.eval(&format!("getResourceList {w} v")).unwrap();
        row(&format!("{class} resources"), count);
    }
}

fn bench(c: &mut Criterion) {
    regenerate_example();
    let mut group = c.benchmark_group("e12_resource_list");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.bench_function("get_resource_list", |b| {
        let mut s = athena();
        s.eval("label l topLevel").unwrap();
        b.iter(|| s.eval("getResourceList l retVal").unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
