//! E2 — the "Event Types and Percent Codes of Actions" table: regenerate
//! the full validity matrix, then measure substitution throughput.

use bench::{criterion_group, criterion_main, Criterion};
use wafe_core::percent::substitute_action;
use wafe_xproto::{Event, EventKind, WindowId};

use bench::banner;

/// One row of the validity table: a percent code and the event classes
/// it is defined for.
type CodeValidity = (&'static str, fn(EventKind) -> bool);

fn event(kind: EventKind) -> Event {
    let mut e = Event::new(kind, WindowId(1));
    e.button = 2;
    e.x = 10;
    e.y = 20;
    e.x_root = 110;
    e.y_root = 220;
    e.keycode = 198;
    e.keysym = "w".into();
    e.ascii = "w".into();
    e
}

fn regenerate_matrix() {
    banner(
        "E2",
        "Event Types and Percent Codes of Actions (paper table)",
    );
    let codes = ["%t", "%w", "%b", "%x", "%y", "%X", "%Y", "%a", "%k", "%s"];
    let kinds = [
        ("BPress", EventKind::ButtonPress),
        ("BRelease", EventKind::ButtonRelease),
        ("KeyPress", EventKind::KeyPress),
        ("KeyRelease", EventKind::KeyRelease),
        ("Enter", EventKind::EnterNotify),
        ("Leave", EventKind::LeaveNotify),
    ];
    print!("  {:<10}", "code");
    for (n, _) in &kinds {
        print!("{n:<11}");
    }
    println!();
    // The paper's validity table, as (code, valid-event-classes).
    let expectations: &[CodeValidity] = &[
        ("%t", |_| true),
        ("%w", |_| true),
        ("%b", |k| {
            matches!(k, EventKind::ButtonPress | EventKind::ButtonRelease)
        }),
        ("%x", |_| true),
        ("%y", |_| true),
        ("%X", |_| true),
        ("%Y", |_| true),
        ("%a", |k| {
            matches!(k, EventKind::KeyPress | EventKind::KeyRelease)
        }),
        ("%k", |k| {
            matches!(k, EventKind::KeyPress | EventKind::KeyRelease)
        }),
        ("%s", |k| {
            matches!(k, EventKind::KeyPress | EventKind::KeyRelease)
        }),
    ];
    for (code, valid) in expectations {
        print!("  {code:<10}");
        for (_, kind) in &kinds {
            let out = substitute_action(code, "probe", &event(*kind));
            let substituted = out != *code;
            let expected = valid(*kind);
            assert_eq!(
                substituted, expected,
                "{code} on {kind:?}: substituted={substituted}, table says {expected}"
            );
            print!("{:<11}", if substituted { "subst" } else { "-" });
        }
        println!();
    }
    // %t on an unlisted type expands to "unknown".
    let unknown = substitute_action("%t", "probe", &event(EventKind::Expose));
    assert_eq!(unknown, "unknown");
    println!("  %t on unlisted event type -> {unknown} (as documented)");
    assert_eq!(codes.len(), 10);
}

fn bench(c: &mut Criterion) {
    regenerate_matrix();
    let mut group = c.benchmark_group("e2_percent_codes");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let key = event(EventKind::KeyPress);
    group.bench_function("substitute_key_event", |b| {
        b.iter(|| substitute_action(std::hint::black_box("echo %k %a %s at %x,%y"), "xev", &key));
    });
    let long = "echo ".to_string() + &"%w ".repeat(100);
    group.bench_function("substitute_100_codes", |b| {
        b.iter(|| substitute_action(std::hint::black_box(&long), "widget", &key));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
