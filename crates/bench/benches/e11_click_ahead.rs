//! E11 — the claim "click ahead is possible due to buffering in the I/O
//! channels": events arriving while the application is busy are all
//! delivered, in order, once it reads again — and the paper's suggested
//! countermeasure (setting widgets insensitive) suppresses them.

use bench::{criterion_group, criterion_main, Criterion};
use wafe_core::Flavor;
use wafe_ipc::ProtocolEngine;

use bench::{banner, click, row};

fn regenerate_claim() {
    banner("E11", "click ahead due to I/O buffering");
    let mut e = ProtocolEngine::new(Flavor::Athena);
    e.handle_line("%command b topLevel label go callback {echo pressed %w}")
        .unwrap();
    e.handle_line("%realize").unwrap();
    let _ = e.take_app_lines();

    // The "user" clicks 25 times while the application reads nothing.
    for _ in 0..25 {
        let mut app = e.session.app.borrow_mut();
        let b = app.lookup("b").unwrap();
        let abs = app.displays[0].abs_rect(app.widget(b).window.unwrap());
        app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
    }
    e.session.pump();
    let buffered = e.app_lines_pending();
    let lines = e.take_app_lines();
    row("clicks injected while app busy", 25);
    row("messages buffered for the app", buffered);
    assert_eq!(lines.len(), 25, "no click may be lost");
    assert!(lines.iter().all(|l| l == "pressed b"));

    // The paper's countermeasure: "It can be deactivated by setting
    // widgets insensitive".
    e.handle_line("%setSensitive b False").unwrap();
    for _ in 0..5 {
        let mut app = e.session.app.borrow_mut();
        let b = app.lookup("b").unwrap();
        let abs = app.displays[0].abs_rect(app.widget(b).window.unwrap());
        app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
    }
    e.session.pump();
    let suppressed = e.take_app_lines();
    row("messages after setSensitive False", suppressed.len());
    assert!(
        suppressed.is_empty(),
        "insensitive widgets must not click ahead"
    );

    // …and the Tcl busy-guard alternative the paper sketches.
    e.handle_line("%setSensitive b True").unwrap();
    e.handle_line("%set busy 1").unwrap();
    e.handle_line("%sV b callback {if {$busy} {echo please wait} else {echo pressed}}")
        .unwrap();
    {
        let mut app = e.session.app.borrow_mut();
        let b = app.lookup("b").unwrap();
        let abs = app.displays[0].abs_rect(app.widget(b).window.unwrap());
        app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
    }
    e.session.pump();
    let friendly = e.take_app_lines();
    row("busy-guard callback answer", friendly.join(" / "));
    assert_eq!(friendly, vec!["please wait"]);
}

fn bench(c: &mut Criterion) {
    regenerate_claim();
    let mut group = c.benchmark_group("e11_click_ahead");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.sample_size(20);
    group.bench_function("buffer_100_clicks", |b| {
        let mut e = ProtocolEngine::new(Flavor::Athena);
        e.handle_line("%command b topLevel label go callback {echo pressed}")
            .unwrap();
        e.handle_line("%realize").unwrap();
        b.iter(|| {
            for _ in 0..100 {
                let mut app = e.session.app.borrow_mut();
                let bw = app.lookup("b").unwrap();
                let abs = app.displays[0].abs_rect(app.widget(bw).window.unwrap());
                app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
            }
            e.session.pump();
            let lines = e.take_app_lines();
            assert_eq!(lines.len(), 100);
        });
    });
    group.bench_function("single_click_latency", |b| {
        let mut s = bench::athena();
        s.eval("command b topLevel label go callback {set hit 1}")
            .unwrap();
        s.eval("realize").unwrap();
        b.iter(|| click(&mut s, "b"));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
