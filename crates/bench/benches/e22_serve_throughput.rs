//! E22 — waferd multi-session serving throughput.
//!
//! The paper's Wafe runs one frontend per application over a pipe; the
//! `wafe-serve` crate multiplexes many frontends over sockets behind a
//! bounded worker pool. This experiment measures what that buys and
//! costs at 1, 8 and 64 concurrent TCP clients against an in-process
//! [`Server`]:
//!
//! * **commands/sec** — persistent connections, each client streaming
//!   interleaved `%set`/`%echo` round trips;
//! * **sessions/sec** — connect → one round trip → close churn, which
//!   exercises admission, worker hand-off and teardown per session.
//!
//! Every reply a client reads is checked byte-for-byte against a local
//! [`ProtocolEngine`] fed the same lines — the acceptance criterion is
//! 64 *simultaneously live* sessions with **zero** protocol corruption.
//! Results go to stdout and `BENCH_e22.json` at the workspace root.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bench::{criterion_group, criterion_main, workspace_root, Criterion};
use wafe_core::Flavor;
use wafe_ipc::ProtocolEngine;
use wafe_serve::{Limits, Server, ServerConfig};

const CONCURRENCY: [usize; 3] = [1, 8, 64];
/// `%set`/`%echo` pairs per client in the streaming workload.
const ROUND_TRIPS: usize = 40;
/// Connect/round-trip/close cycles per client in the churn workload.
const CHURN: usize = 20;

fn start_server() -> Server {
    Server::start(ServerConfig {
        limits: Limits {
            max_sessions: 1024,
            queue_depth: 1024,
            ..Limits::default()
        },
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind 127.0.0.1:0")
}

/// The replies frontend mode would produce for one client's line
/// sequence: the same engine the server runs, fed directly.
fn expected_replies(client: usize) -> Vec<String> {
    let mut engine = ProtocolEngine::new(Flavor::Athena);
    let mut out = Vec::new();
    for i in 0..ROUND_TRIPS {
        let _ = engine.handle_line(&format!("%set v c{client}-{i}"));
        let _ = engine.handle_line("%echo [set v]");
        out.extend(engine.take_app_lines());
    }
    out
}

struct Measured {
    clients: usize,
    commands_per_sec: f64,
    sessions_per_sec: f64,
    peak_active: usize,
    mismatches: usize,
}

/// Streaming workload: `clients` persistent connections, two commands
/// per round trip. Returns (commands/sec, peak active, mismatches).
fn measure_commands(clients: usize) -> (f64, usize, usize) {
    let server = start_server();
    let addr = server.local_addr().unwrap();
    let registry = server.registry();
    let ready = Arc::new(Barrier::new(clients + 1));
    let done = Arc::new(Barrier::new(clients + 1));
    // Holds every client connected until the main thread has sampled
    // the registry: the event loop reaps a closed connection within a
    // wakeup, so sampling after the clients start dropping undercounts.
    let sampled = Arc::new(Barrier::new(clients + 1));
    let mut joins = Vec::new();
    for c in 0..clients {
        let (ready, done, sampled) = (ready.clone(), done.clone(), sampled.clone());
        joins.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            // Warmup round trip proves the session is attached before
            // the clock starts; it is outside the compared sequence.
            w.write_all(b"%echo warm\n").unwrap();
            w.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "warm");
            ready.wait();
            let mut got = Vec::with_capacity(ROUND_TRIPS);
            for i in 0..ROUND_TRIPS {
                w.write_all(format!("%set v c{c}-{i}\n%echo [set v]\n").as_bytes())
                    .unwrap();
                w.flush().unwrap();
                line.clear();
                reader.read_line(&mut line).unwrap();
                got.push(line.trim_end().to_string());
            }
            done.wait();
            sampled.wait();
            usize::from(got != expected_replies(c))
        }));
    }
    ready.wait();
    let start = Instant::now();
    done.wait();
    let elapsed = start.elapsed();
    // Every client is still connected here: the true concurrency level.
    let peak_active = registry.active();
    sampled.wait();
    let mismatches: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
    server.drain();
    // Warmup excluded: 2 commands per round trip actually timed.
    let commands = (clients * ROUND_TRIPS * 2) as f64;
    (commands / elapsed.as_secs_f64(), peak_active, mismatches)
}

/// Churn workload: short-lived sessions, one round trip each.
/// Returns (sessions/sec, mismatches).
fn measure_sessions(clients: usize) -> (f64, usize) {
    let server = start_server();
    let addr = server.local_addr().unwrap();
    let ready = Arc::new(Barrier::new(clients + 1));
    let mut joins = Vec::new();
    for c in 0..clients {
        let ready = ready.clone();
        joins.push(std::thread::spawn(move || {
            let mut mismatches = 0usize;
            ready.wait();
            for k in 0..CHURN {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut w = stream;
                w.write_all(format!("%echo churn-{c}-{k}\n").as_bytes())
                    .unwrap();
                w.flush().unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if line.trim_end() != format!("churn-{c}-{k}") {
                    mismatches += 1;
                }
            }
            mismatches
        }));
    }
    ready.wait();
    let start = Instant::now();
    let mismatches: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
    let elapsed = start.elapsed();
    server.drain();
    let sessions = (clients * CHURN) as f64;
    (sessions / elapsed.as_secs_f64(), mismatches)
}

fn write_json(results: &[Measured]) {
    let mut out =
        String::from("{\n  \"experiment\": \"e22_serve_throughput\",\n  \"workloads\": [\n");
    for (k, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"serve_c{}\", \"clients\": {}, \"commands_per_sec\": {:.0}, \"sessions_per_sec\": {:.0}, \"peak_active\": {}, \"mismatches\": {}}}{}\n",
            m.clients,
            m.clients,
            m.commands_per_sec,
            m.sessions_per_sec,
            m.peak_active,
            m.mismatches,
            if k + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = workspace_root().join("BENCH_e22.json");
    std::fs::write(&path, out).expect("write BENCH_e22.json");
    println!("  wrote {}", path.display());
}

fn bench(c: &mut Criterion) {
    bench::banner(
        "E22",
        "wafe-serve throughput: sessions/sec and commands/sec at 1, 8, 64 clients",
    );
    let mut results = Vec::new();
    for clients in CONCURRENCY {
        let (commands_per_sec, peak_active, cmd_mismatches) = measure_commands(clients);
        let (sessions_per_sec, churn_mismatches) = measure_sessions(clients);
        let m = Measured {
            clients,
            commands_per_sec,
            sessions_per_sec,
            peak_active,
            mismatches: cmd_mismatches + churn_mismatches,
        };
        bench::row(
            &format!("{} client(s) commands", clients),
            format!("{:.0} commands/s", m.commands_per_sec),
        );
        bench::row(
            &format!("{} client(s) churn", clients),
            format!("{:.0} sessions/s", m.sessions_per_sec),
        );
        bench::row(
            &format!("{} client(s) peak active", clients),
            format!("{} sessions", m.peak_active),
        );
        results.push(m);
    }
    write_json(&results);

    // Acceptance: 64 truly concurrent sessions, zero corruption — every
    // reply byte-identical to the single-process frontend engine.
    let c64 = results.last().expect("64-client row");
    assert_eq!(c64.peak_active, 64, "acceptance: 64 concurrent sessions");
    let total_mismatches: usize = results.iter().map(|m| m.mismatches).sum();
    assert_eq!(total_mismatches, 0, "acceptance: zero protocol corruption");

    // A criterion-style group so E22 reports like the others: single
    // persistent connection round-trip latency.
    let mut group = c.benchmark_group("e22_serve_throughput");
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(1000));
    group.sample_size(11);
    group.bench_function("round_trip_1_client", |b| {
        let server = start_server();
        let addr = server.local_addr().unwrap();
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        let mut line = String::new();
        b.iter(|| {
            w.write_all(b"%echo ping\n").unwrap();
            w.flush().unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "ping");
        });
        drop(reader);
        drop(w);
        server.drain();
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
