//! Shared support for the benchmark harness.
//!
//! Each Criterion bench under `benches/` regenerates one table, figure or
//! experience claim of the paper (the experiment ids E1–E16 of
//! DESIGN.md). The helpers here keep the benches small: session
//! construction, synthetic clicking, and the paper-style row printer that
//! EXPERIMENTS.md quotes.

pub mod harness;
pub mod timing;

pub use harness::*;
pub use timing::{
    measure_ab, measure_median, AbStats, Bencher, BenchmarkGroup, Criterion, SampleStats,
    Throughput,
};
