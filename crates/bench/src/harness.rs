//! Bench helpers: sessions, synthetic users, table printing, LoC counts.

use wafe_core::{Flavor, WafeSession};

/// A fresh Athena session.
pub fn athena() -> WafeSession {
    WafeSession::new(Flavor::Athena)
}

/// A fresh Motif session.
pub fn motif() -> WafeSession {
    WafeSession::new(Flavor::Motif)
}

/// Clicks the middle of a widget's window and pumps.
pub fn click(session: &mut WafeSession, name: &str) {
    {
        let mut app = session.app.borrow_mut();
        let w = app.lookup(name).expect("widget exists");
        let win = app.widget(w).window.expect("widget realized");
        let abs = app.displays[0].abs_rect(win);
        app.displays[0].inject_click(
            abs.x + (abs.w as i32 / 2).max(1),
            abs.y + (abs.h as i32 / 2).max(1),
            1,
        );
    }
    session.pump();
}

/// Prints an experiment header the way EXPERIMENTS.md quotes them.
pub fn banner(id: &str, title: &str) {
    println!("\n==== {id}: {title} ====");
}

/// Prints one measured row.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<44} {value}");
}

/// Counts non-blank, non-comment-only lines of `.rs` files under a
/// directory (the E14 LoC inventory).
pub fn count_loc(dir: &std::path::Path) -> usize {
    let mut total = 0usize;
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return 0,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().map(|n| n == "target").unwrap_or(false) {
                continue;
            }
            total += count_loc(&path);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                total += text
                    .lines()
                    .filter(|l| {
                        let t = l.trim();
                        !t.is_empty() && !t.starts_with("//")
                    })
                    .count();
            }
        }
    }
    total
}

/// The workspace root, found from the bench binary's location.
pub fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            panic!("workspace root not found");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_helpers_work() {
        let mut s = athena();
        s.eval("command b topLevel label hit callback {echo ok}")
            .unwrap();
        s.eval("realize").unwrap();
        click(&mut s, "b");
        assert_eq!(s.take_output(), "ok\n");
    }

    #[test]
    fn loc_counter_counts_this_crate() {
        let root = workspace_root();
        let n = count_loc(&root.join("crates").join("bench").join("src"));
        assert!(n > 50, "bench crate LoC = {n}");
    }
}
