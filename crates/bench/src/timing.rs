//! In-repo benchmark timing harness.
//!
//! A drop-in replacement for the slice of the `criterion` API the E1–E19
//! benchmarks use, so the workspace builds and benches on network-less
//! machines with no external dependencies. The measurement model is
//! deliberately simple and robust: per sample, run the benchmarked
//! closure for a calibrated number of iterations and record mean
//! ns/iteration; report the **median of N samples** (median-of-N
//! wall-clock), which resists scheduler noise without needing the full
//! criterion statistics engine.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level handle passed to every benchmark function (criterion's
/// `&mut Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Rate denominator for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// A group of measurements sharing timing configuration.
pub struct BenchmarkGroup {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Time spent running the closure before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total time budget for the measured samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Number of samples the budget is split into.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Per-iteration work, reported as a rate next to the time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures one benchmark and prints its median time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let stats = run_samples(self.warm_up, self.measurement, self.sample_size, |b| f(b));
        let mut line = format!(
            "{}/{id}: median {} (min {}, max {}, {} samples)",
            self.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.max_ns),
            stats.samples,
        );
        if let Some(t) = self.throughput {
            let (amount, unit) = match t {
                Throughput::Bytes(n) => (n as f64, "B"),
                Throughput::Elements(n) => (n as f64, "elem"),
            };
            let per_sec = amount / (stats.median_ns / 1e9);
            line.push_str(&format!(" — {}/s", fmt_rate(per_sec, unit)));
        }
        println!("{line}");
        self
    }

    /// Ends the group (criterion parity; reporting is immediate here).
    pub fn finish(&mut self) {}
}

/// Drives the iteration loop inside one sample.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine `iters` times and records the wall-clock total.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Summary of one benchmark's samples, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct SampleStats {
    pub median_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
}

/// The measurement core: calibrates an iteration count so each sample
/// lasts roughly `measurement / sample_size`, warms up, then collects
/// `sample_size` samples of mean ns/iteration.
pub fn run_samples<F>(
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut routine: F,
) -> SampleStats
where
    F: FnMut(&mut Bencher),
{
    let sample_size = sample_size.max(1);
    // Calibration: one iteration to get a first time estimate.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = measurement
        .checked_div(sample_size as u32)
        .unwrap_or(Duration::from_millis(50))
        .max(Duration::from_micros(100));
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1 << 24) as u64;

    // Warm-up: run full samples until the warm-up budget is spent.
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    SampleStats {
        median_ns: median_of_sorted(&per_iter),
        min_ns: per_iter[0],
        max_ns: *per_iter.last().unwrap(),
        samples: per_iter.len(),
    }
}

/// Convenience: median ns/iteration of a plain closure (used by E19's
/// machine-readable output).
pub fn measure_median<R, F: FnMut() -> R>(
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut f: F,
) -> f64 {
    run_samples(warm_up, measurement, sample_size, |b| b.iter(&mut f)).median_ns
}

/// Result of an interleaved A/B comparison: each side's median
/// ns/iteration plus the median of per-round A/B time ratios.
pub struct AbStats {
    pub a_ns: f64,
    pub b_ns: f64,
    /// Median over rounds of (A batch time / B batch time) — how many
    /// times faster B is than A. More robust than `a_ns / b_ns`: the
    /// rounds interleave both routines, so a machine-wide slowdown hits
    /// both sides of each round equally instead of skewing whichever
    /// routine happened to run while the machine was busy.
    pub ratio: f64,
}

/// Compares two routines with interleaved per-round batches. The batch
/// size is calibrated off one call of `a` (pass the slower routine as
/// `a`) so each sample spans roughly `batch` of work; both routines
/// then warm up and run `rounds` alternating A/B batches.
pub fn measure_ab(
    warm_up: Duration,
    rounds: usize,
    batch: Duration,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> AbStats {
    fn run(f: &mut dyn FnMut(), iters: u32) -> f64 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    }
    let start = Instant::now();
    a();
    let once = start.elapsed().max(Duration::from_nanos(1));
    let iters = (batch.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u32;

    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up {
        run(&mut a, iters);
        run(&mut b, iters);
    }
    let mut a_samples = Vec::with_capacity(rounds);
    let mut b_samples = Vec::with_capacity(rounds);
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let ta = run(&mut a, iters);
        let tb = run(&mut b, iters);
        a_samples.push(ta);
        b_samples.push(tb);
        ratios.push(ta / tb.max(1.0));
    }
    for v in [&mut a_samples, &mut b_samples, &mut ratios] {
        v.sort_by(|x, y| x.partial_cmp(y).unwrap());
    }
    AbStats {
        a_ns: median_of_sorted(&a_samples),
        b_ns: median_of_sorted(&b_samples),
        ratio: median_of_sorted(&ratios),
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// Declares a benchmark group function, criterion-style: the generated
/// function builds a [`Criterion`] and runs each target against it.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let ns = measure_median(
            Duration::from_millis(1),
            Duration::from_millis(10),
            5,
            || std::hint::black_box(3u64).wrapping_mul(7),
        );
        assert!(ns > 0.0);
    }

    #[test]
    fn measure_ab_ranks_a_slower() {
        let slow = || {
            let mut x = 0u64;
            for k in 0..4000u64 {
                x = x.wrapping_add(std::hint::black_box(k));
            }
            std::hint::black_box(x);
        };
        let fast = || {
            std::hint::black_box(1u64);
        };
        let stats = measure_ab(
            Duration::from_millis(5),
            5,
            Duration::from_millis(1),
            slow,
            fast,
        );
        assert!(stats.a_ns > 0.0 && stats.b_ns > 0.0);
        assert!(stats.ratio > 1.0, "slow/fast ratio {} <= 1", stats.ratio);
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median_of_sorted(&[1.0, 3.0, 5.0]), 3.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("noop", |b| b.iter(|| count = count.wrapping_add(1)));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn formatting_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_rate(2e6, "B").contains("MB"));
    }
}
