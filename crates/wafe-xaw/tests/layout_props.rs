//! Property tests for the Form constraint layout: chained children never
//! overlap and the form always bounds them.

use wafe_prop::cases;
use wafe_xt::XtApp;

fn build_app() -> XtApp {
    let mut app = XtApp::new();
    wafe_xaw::register_all(&mut app);
    app
}

/// A fromVert chain stacks strictly downward with no overlap, and
/// the form bounds every child.
#[test]
fn from_vert_chain_never_overlaps() {
    cases(48, |rng| {
        let heights = rng.vec(1, 8, |r| r.range_u32(5, 60));
        let mut app = build_app();
        let top = app
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let form = app
            .create_widget("f", "Form", Some(top), 0, &[], true)
            .unwrap();
        let mut prev = String::new();
        for (k, h) in heights.iter().enumerate() {
            let name = format!("w{k}");
            let mut init = vec![
                ("width".to_string(), "40".to_string()),
                ("height".to_string(), h.to_string()),
            ];
            if !prev.is_empty() {
                init.push(("fromVert".to_string(), prev.clone()));
            }
            app.create_widget(&name, "Label", Some(form), 0, &init, true)
                .unwrap();
            prev = name;
        }
        app.realize(top);
        let mut bottom = i32::MIN;
        for k in 0..heights.len() {
            let w = app.lookup(&format!("w{k}")).unwrap();
            let y = app.pos_resource(w, "y");
            let h = app.dim_resource(w, "height") as i32;
            let bw = app.dim_resource(w, "borderWidth") as i32;
            assert!(
                y > bottom,
                "w{k} top {y} must be below previous bottom {bottom}"
            );
            bottom = y + h + 2 * bw;
            // Inside the form.
            assert!(app.dim_resource(form, "height") as i32 >= bottom);
        }
    });
}

/// A fromHoriz chain marches strictly rightward.
#[test]
fn from_horiz_chain_never_overlaps() {
    cases(48, |rng| {
        let widths = rng.vec(1, 8, |r| r.range_u32(5, 60));
        let mut app = build_app();
        let top = app
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let form = app
            .create_widget("f", "Form", Some(top), 0, &[], true)
            .unwrap();
        let mut prev = String::new();
        for (k, w) in widths.iter().enumerate() {
            let name = format!("w{k}");
            let mut init = vec![
                ("width".to_string(), w.to_string()),
                ("height".to_string(), "20".to_string()),
            ];
            if !prev.is_empty() {
                init.push(("fromHoriz".to_string(), prev.clone()));
            }
            app.create_widget(&name, "Label", Some(form), 0, &init, true)
                .unwrap();
            prev = name;
        }
        app.realize(top);
        let mut right = i32::MIN;
        for k in 0..widths.len() {
            let w = app.lookup(&format!("w{k}")).unwrap();
            let x = app.pos_resource(w, "x");
            assert!(x > right, "w{k} left {x} must clear previous right {right}");
            right = x
                + app.dim_resource(w, "width") as i32
                + 2 * app.dim_resource(w, "borderWidth") as i32;
        }
    });
}

/// Box flow layout: vertical boxes stack, horizontal ones march, and
/// preferred size always covers the children.
#[test]
fn box_bounds_children() {
    cases(48, |rng| {
        let n = rng.range(1, 8);
        let horizontal = rng.chance();
        let mut app = build_app();
        let top = app
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let orient = if horizontal { "horizontal" } else { "vertical" };
        let bx = app
            .create_widget(
                "bx",
                "Box",
                Some(top),
                0,
                &[("orientation".into(), orient.into())],
                true,
            )
            .unwrap();
        for k in 0..n {
            app.create_widget(
                &format!("c{k}"),
                "Label",
                Some(bx),
                0,
                &[
                    ("width".into(), "30".into()),
                    ("height".into(), "12".into()),
                ],
                true,
            )
            .unwrap();
        }
        app.realize(top);
        let bw_box = app.dim_resource(bx, "width") as i32;
        let bh_box = app.dim_resource(bx, "height") as i32;
        for k in 0..n {
            let c = app.lookup(&format!("c{k}")).unwrap();
            let x = app.pos_resource(c, "x");
            let y = app.pos_resource(c, "y");
            assert!(x >= 0 && y >= 0);
            assert!(x + 30 <= bw_box, "child c{k} sticks out right");
            assert!(y + 12 <= bh_box, "child c{k} sticks out below");
        }
    });
}
