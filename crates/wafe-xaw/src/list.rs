//! The List widget.
//!
//! The paper documents the List callback's percent codes — `%w` widget
//! name, `%i` index, `%s` active element — and uses
//! `sV chooseLst callback "sV confirmLab label %s"` as its example.
//! Selecting an item fires the `callback` resource with that clientData.

use std::collections::HashMap;
use std::rc::Rc;

use wafe_xproto::framebuffer::DrawOp;
use wafe_xproto::geometry::Rect;
use wafe_xt::action::ActionTable;
use wafe_xt::resource::{ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

use crate::common::simple_base;

/// List's resources.
pub fn list_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = simple_base();
    v.extend([
        ResourceSpec::new("list", "List", StringList, ""),
        ResourceSpec::new("numberStrings", "NumberStrings", Int, "0"),
        ResourceSpec::new("defaultColumns", "Columns", Int, "1"),
        ResourceSpec::new("forceColumns", "Columns", Boolean, "false"),
        ResourceSpec::new("verticalList", "Boolean", Boolean, "true"),
        ResourceSpec::new("font", "Font", Font, "fixed"),
        ResourceSpec::new("foreground", "Foreground", Pixel, "black"),
        ResourceSpec::new("internalWidth", "Width", Dimension, "4"),
        ResourceSpec::new("internalHeight", "Height", Dimension, "2"),
        ResourceSpec::new("rowSpacing", "Spacing", Dimension, "2"),
        ResourceSpec::new("columnSpacing", "Spacing", Dimension, "6"),
        ResourceSpec::new("callback", "Callback", Callback, ""),
        ResourceSpec::new("longest", "Longest", Int, "0"),
    ]);
    v
}

fn items(app: &XtApp, w: WidgetId) -> Vec<String> {
    match app.widget(w).resource("list") {
        Some(ResourceValue::StrList(l)) => l.clone(),
        _ => Vec::new(),
    }
}

fn row_height(app: &XtApp, w: WidgetId) -> u32 {
    let font = app.fonts_of(w).get(app.font_resource(w, "font")).clone();
    font.height() + app.dim_resource(w, "rowSpacing")
}

/// The item index under a window-relative point, if any.
pub fn item_at(app: &XtApp, w: WidgetId, y: i32) -> Option<usize> {
    let ih = app.dim_resource(w, "internalHeight") as i32;
    let rh = row_height(app, w) as i32;
    if y < ih || rh == 0 {
        return None;
    }
    let idx = ((y - ih) / rh) as usize;
    if idx < items(app, w).len() {
        Some(idx)
    } else {
        None
    }
}

/// List class methods.
pub struct ListOps;

impl WidgetOps for ListOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let font = app.fonts_of(w).get(app.font_resource(w, "font")).clone();
        let iw = app.dim_resource(w, "internalWidth");
        let ih = app.dim_resource(w, "internalHeight");
        let list = items(app, w);
        let longest = list.iter().map(|i| font.text_width(i)).max().unwrap_or(20);
        let rows = list.len().max(1) as u32;
        (longest + 2 * iw, rows * row_height(app, w) + 2 * ih)
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let font_id = app.font_resource(w, "font");
        let font = app.fonts_of(w).get(font_id).clone();
        let fg = app.pixel_resource(w, "foreground");
        let bg = app.pixel_resource(w, "background");
        let iw = app.dim_resource(w, "internalWidth") as i32;
        let ih = app.dim_resource(w, "internalHeight") as i32;
        let rh = row_height(app, w) as i32;
        let width = app.dim_resource(w, "width");
        let selected: i64 = app.state(w, "selected").parse().unwrap_or(-1);
        let mut ops = Vec::new();
        for (i, item) in items(app, w).iter().enumerate() {
            let y = ih + i as i32 * rh;
            if i as i64 == selected {
                ops.push(DrawOp::FillRect {
                    rect: Rect::new(0, y, width, rh as u32),
                    pixel: fg,
                });
                ops.push(DrawOp::DrawText {
                    x: iw,
                    y: y + font.ascent as i32,
                    text: item.clone(),
                    pixel: bg,
                    font: font_id,
                });
            } else {
                ops.push(DrawOp::DrawText {
                    x: iw,
                    y: y + font.ascent as i32,
                    text: item.clone(),
                    pixel: fg,
                    font: font_id,
                });
            }
        }
        ops
    }
}

fn list_actions() -> ActionTable {
    let mut t = ActionTable::new();
    t.add("Set", |app, w, e, _| {
        if let Some(idx) = item_at(app, w, e.y) {
            app.set_state(w, "selected", idx.to_string());
            app.redisplay_widget(w);
        }
    });
    t.add("Unset", |app, w, _, _| {
        app.set_state(w, "selected", "-1");
        app.redisplay_widget(w);
    });
    t.add("Notify", |app, w, _, _| {
        let sel: i64 = app.state(w, "selected").parse().unwrap_or(-1);
        if sel < 0 {
            return;
        }
        let list = items(app, w);
        let item = list.get(sel as usize).cloned().unwrap_or_default();
        let mut data = HashMap::new();
        data.insert('i', sel.to_string());
        data.insert('s', item);
        app.call_callbacks(w, "callback", data);
    });
    t
}

/// Programmatic selection: `XawListHighlight`.
pub fn list_highlight(app: &mut XtApp, w: WidgetId, index: usize) {
    app.set_state(w, "selected", index.to_string());
    app.redisplay_widget(w);
}

/// Programmatic unselection: `XawListUnhighlight`.
pub fn list_unhighlight(app: &mut XtApp, w: WidgetId) {
    app.set_state(w, "selected", "-1");
    app.redisplay_widget(w);
}

/// `XawListShowCurrent`: returns `(index, item)`; index -1 when nothing
/// is selected.
pub fn list_show_current(app: &XtApp, w: WidgetId) -> (i64, String) {
    let sel: i64 = app.state(w, "selected").parse().unwrap_or(-1);
    if sel < 0 {
        return (-1, String::new());
    }
    let item = items(app, w).get(sel as usize).cloned().unwrap_or_default();
    (sel, item)
}

/// `XawListChange`: replaces the item list.
pub fn list_change(app: &mut XtApp, w: WidgetId, new_items: Vec<String>) {
    app.put_resource(w, "list", ResourceValue::StrList(new_items));
    app.set_state(w, "selected", "-1");
    let root = app.root_of(w);
    if app.is_realized(root) {
        app.do_layout(root);
        app.sync_geometry(root);
        app.redisplay_widget(w);
    }
}

/// Builds the List class.
pub fn list_class() -> WidgetClass {
    WidgetClass {
        name: "List".into(),
        resources: list_resources(),
        constraint_resources: Vec::new(),
        actions: list_actions(),
        default_translations: TranslationTable::parse("<Btn1Down>: Set()\n<Btn1Up>: Notify()")
            .expect("static translations"),
        ops: Rc::new(ListOps),
        is_shell: false,
        is_composite: false,
    }
}

/// Registers the List class.
pub fn register(app: &mut XtApp) {
    app.register_class(list_class());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        register(&mut a);
        a
    }

    fn make_list(a: &mut XtApp) -> WidgetId {
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let l = a
            .create_widget(
                "chooseLst",
                "List",
                Some(top),
                0,
                &[
                    ("list".into(), "alpha,beta,gamma".into()),
                    ("callback".into(), "sV confirmLab label %s".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let _ = a.take_host_calls();
        l
    }

    #[test]
    fn click_selects_and_notifies_with_index_and_item() {
        let mut a = app();
        let l = make_list(&mut a);
        let win = a.widget(l).window.unwrap();
        let abs = a.displays[0].abs_rect(win);
        // Click the second row.
        let rh = 15; // 13px font + 2 spacing
        a.displays[0].inject_click(abs.x + 5, abs.y + 2 + rh + 3, 1);
        a.dispatch_pending();
        let calls = a.take_host_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].data.get(&'i').map(String::as_str), Some("1"));
        assert_eq!(calls[0].data.get(&'s').map(String::as_str), Some("beta"));
        assert_eq!(calls[0].script, "sV confirmLab label %s");
    }

    #[test]
    fn click_outside_items_is_no_selection() {
        let mut a = app();
        let l = make_list(&mut a);
        assert_eq!(item_at(&a, l, 1000), None);
        assert_eq!(item_at(&a, l, 0), None);
        assert_eq!(item_at(&a, l, 5), Some(0));
    }

    #[test]
    fn programmatic_highlight_and_show_current() {
        let mut a = app();
        let l = make_list(&mut a);
        assert_eq!(list_show_current(&a, l), (-1, String::new()));
        list_highlight(&mut a, l, 2);
        assert_eq!(list_show_current(&a, l), (2, "gamma".into()));
        list_unhighlight(&mut a, l);
        assert_eq!(list_show_current(&a, l).0, -1);
    }

    #[test]
    fn list_change_replaces_items() {
        let mut a = app();
        let l = make_list(&mut a);
        list_change(&mut a, l, vec!["one".into(), "two".into()]);
        assert_eq!(items(&a, l), vec!["one", "two"]);
        assert_eq!(list_show_current(&a, l).0, -1);
    }

    #[test]
    fn preferred_size_tracks_items() {
        let mut a = app();
        let l = make_list(&mut a);
        let (w, h) = ListOps.preferred_size(&a, l);
        assert!(w >= 30); // "gamma" = 5 chars * 6px + margins
        assert!(h >= 3 * 15);
    }

    #[test]
    fn selected_item_rendered_inverted() {
        let mut a = app();
        let l = make_list(&mut a);
        list_highlight(&mut a, l, 0);
        let ops = ListOps.redisplay(&a, l);
        assert!(ops.iter().any(|op| matches!(op, DrawOp::FillRect { .. })));
    }
}
