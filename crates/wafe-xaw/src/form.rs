//! The Form constraint widget (and Box).
//!
//! Form is the layout engine of the paper's prime-factors example: the
//! constraint resources `fromVert` and `fromHoriz` chain children below
//! and beside each other.

use std::rc::Rc;

use wafe_xt::action::ActionTable;
use wafe_xt::resource::{core_resources, ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

/// Form's own resources.
pub fn form_resources() -> Vec<ResourceSpec> {
    let mut v = core_resources();
    v.push(ResourceSpec::new(
        "defaultDistance",
        "Thickness",
        ResType::Dimension,
        "4",
    ));
    v
}

/// Form's constraint resources, imposed on its children.
pub fn form_constraints() -> Vec<ResourceSpec> {
    use ResType::*;
    vec![
        ResourceSpec::new("fromVert", "Widget", Widget, ""),
        ResourceSpec::new("fromHoriz", "Widget", Widget, ""),
        ResourceSpec::new("horizDistance", "Thickness", Int, "-1"),
        ResourceSpec::new("vertDistance", "Thickness", Int, "-1"),
        ResourceSpec::new("resizable", "Boolean", Boolean, "true"),
        ResourceSpec::new("top", "Edge", String, "rubber"),
        ResourceSpec::new("bottom", "Edge", String, "rubber"),
        ResourceSpec::new("left", "Edge", String, "rubber"),
        ResourceSpec::new("right", "Edge", String, "rubber"),
    ]
}

/// Form class methods: constraint layout.
pub struct FormOps;

fn widget_ref(app: &XtApp, child: WidgetId, name: &str) -> Option<WidgetId> {
    match app.constraint(child, name) {
        Some(ResourceValue::Widget(n)) if !n.is_empty() => app.lookup(n),
        _ => None,
    }
}

fn distance(app: &XtApp, child: WidgetId, name: &str, default: i32) -> i32 {
    match app.constraint(child, name) {
        Some(ResourceValue::Int(d)) if *d >= 0 => *d as i32,
        _ => default,
    }
}

impl FormOps {
    /// Computes each child's position from its constraints. Children are
    /// processed in creation order; `fromVert`/`fromHoriz` reference
    /// previously created siblings, as in Xaw.
    fn place_children(app: &mut XtApp, form: WidgetId) {
        let dd = app.dim_resource(form, "defaultDistance") as i32;
        let children = app.widget(form).children.clone();
        for c in &children {
            if !app.widget(*c).managed {
                continue;
            }
            let hd = distance(app, *c, "horizDistance", dd);
            let vd = distance(app, *c, "vertDistance", dd);
            let x = match widget_ref(app, *c, "fromHoriz") {
                Some(r) => {
                    let bw = app.dim_resource(r, "borderWidth") as i32;
                    app.pos_resource(r, "x") + app.dim_resource(r, "width") as i32 + 2 * bw + hd
                }
                None => hd,
            };
            let y = match widget_ref(app, *c, "fromVert") {
                Some(r) => {
                    let bw = app.dim_resource(r, "borderWidth") as i32;
                    app.pos_resource(r, "y") + app.dim_resource(r, "height") as i32 + 2 * bw + vd
                }
                None => vd,
            };
            app.put_resource(*c, "x", ResourceValue::Pos(x));
            app.put_resource(*c, "y", ResourceValue::Pos(y));
        }
    }

    fn bounding(app: &XtApp, form: WidgetId) -> (u32, u32) {
        let dd = app.dim_resource(form, "defaultDistance");
        let mut w = 0i32;
        let mut h = 0i32;
        for c in &app.widget(form).children {
            if !app.widget(*c).managed {
                continue;
            }
            let bw = app.dim_resource(*c, "borderWidth") as i32;
            w = w.max(app.pos_resource(*c, "x") + app.dim_resource(*c, "width") as i32 + 2 * bw);
            h = h.max(app.pos_resource(*c, "y") + app.dim_resource(*c, "height") as i32 + 2 * bw);
        }
        ((w + dd as i32).max(1) as u32, (h + dd as i32).max(1) as u32)
    }
}

impl WidgetOps for FormOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        // Children already have sizes (size pass is bottom-up); place
        // them tentatively to measure the bounding box.
        // Placement mutates resources, so this runs on a best-effort
        // cloned basis: positions are recomputed in layout() anyway.
        let explicit_w = app.dim_resource(w, "width");
        let explicit_h = app.dim_resource(w, "height");
        if explicit_w > 0 && explicit_h > 0 {
            return (explicit_w, explicit_h);
        }
        // Without mutation access, approximate: layout() will have been
        // called for realized trees; for the initial pass compute from
        // constraint chains directly.
        let mut positions: std::collections::HashMap<WidgetId, (i32, i32)> =
            std::collections::HashMap::new();
        let dd = app.dim_resource(w, "defaultDistance") as i32;
        let mut maxw = 0i32;
        let mut maxh = 0i32;
        for c in &app.widget(w).children {
            if !app.widget(*c).managed {
                continue;
            }
            let hd = distance(app, *c, "horizDistance", dd);
            let vd = distance(app, *c, "vertDistance", dd);
            let x = match widget_ref(app, *c, "fromHoriz") {
                Some(r) => {
                    let (rx, _) = positions.get(&r).copied().unwrap_or((0, 0));
                    let bw = app.dim_resource(r, "borderWidth") as i32;
                    rx + app.dim_resource(r, "width") as i32 + 2 * bw + hd
                }
                None => hd,
            };
            let y = match widget_ref(app, *c, "fromVert") {
                Some(r) => {
                    let (_, ry) = positions.get(&r).copied().unwrap_or((0, 0));
                    let bw = app.dim_resource(r, "borderWidth") as i32;
                    ry + app.dim_resource(r, "height") as i32 + 2 * bw + vd
                }
                None => vd,
            };
            positions.insert(*c, (x, y));
            let bw = app.dim_resource(*c, "borderWidth") as i32;
            maxw = maxw.max(x + app.dim_resource(*c, "width") as i32 + 2 * bw);
            maxh = maxh.max(y + app.dim_resource(*c, "height") as i32 + 2 * bw);
        }
        ((maxw + dd).max(1) as u32, (maxh + dd).max(1) as u32)
    }

    fn layout(&self, app: &mut XtApp, w: WidgetId) {
        FormOps::place_children(app, w);
        if app.dim_resource(w, "width") == 0 || app.dim_resource(w, "height") == 0 {
            let (bw, bh) = FormOps::bounding(app, w);
            app.put_resource(w, "width", ResourceValue::Dim(bw));
            app.put_resource(w, "height", ResourceValue::Dim(bh));
        }
    }
}

/// Builds the Form class.
pub fn form_class() -> WidgetClass {
    WidgetClass {
        name: "Form".into(),
        resources: form_resources(),
        constraint_resources: form_constraints(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(FormOps),
        is_shell: false,
        is_composite: true,
    }
}

/// Box's resources.
pub fn box_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = core_resources();
    v.push(ResourceSpec::new("hSpace", "HSpace", Dimension, "4"));
    v.push(ResourceSpec::new("vSpace", "VSpace", Dimension, "4"));
    v.push(ResourceSpec::new(
        "orientation",
        "Orientation",
        Orientation,
        "vertical",
    ));
    v
}

/// Box class methods: flow layout.
pub struct BoxOps;

impl WidgetOps for BoxOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let hs = app.dim_resource(w, "hSpace");
        let vs = app.dim_resource(w, "vSpace");
        let horizontal = matches!(
            app.widget(w).resource("orientation"),
            Some(ResourceValue::Orientation(
                wafe_xt::resource::Orientation::Horizontal
            ))
        );
        let mut total_w = hs;
        let mut total_h = vs;
        let mut max_w = 0u32;
        let mut max_h = 0u32;
        for c in &app.widget(w).children {
            if !app.widget(*c).managed {
                continue;
            }
            let bw = app.dim_resource(*c, "borderWidth");
            let cw = app.dim_resource(*c, "width") + 2 * bw;
            let ch = app.dim_resource(*c, "height") + 2 * bw;
            total_w += cw + hs;
            total_h += ch + vs;
            max_w = max_w.max(cw);
            max_h = max_h.max(ch);
        }
        if horizontal {
            (total_w.max(1), (max_h + 2 * vs).max(1))
        } else {
            ((max_w + 2 * hs).max(1), total_h.max(1))
        }
    }

    fn layout(&self, app: &mut XtApp, w: WidgetId) {
        let hs = app.dim_resource(w, "hSpace") as i32;
        let vs = app.dim_resource(w, "vSpace") as i32;
        let horizontal = matches!(
            app.widget(w).resource("orientation"),
            Some(ResourceValue::Orientation(
                wafe_xt::resource::Orientation::Horizontal
            ))
        );
        let children = app.widget(w).children.clone();
        let mut x = hs;
        let mut y = vs;
        for c in children {
            if !app.widget(c).managed {
                continue;
            }
            app.put_resource(c, "x", ResourceValue::Pos(x));
            app.put_resource(c, "y", ResourceValue::Pos(y));
            let bw = app.dim_resource(c, "borderWidth") as i32;
            if horizontal {
                x += app.dim_resource(c, "width") as i32 + 2 * bw + hs;
            } else {
                y += app.dim_resource(c, "height") as i32 + 2 * bw + vs;
            }
        }
    }
}

/// Builds the Box class.
pub fn box_class() -> WidgetClass {
    WidgetClass {
        name: "Box".into(),
        resources: box_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(BoxOps),
        is_shell: false,
        is_composite: true,
    }
}

/// Registers Form and Box.
pub fn register(app: &mut XtApp) {
    app.register_class(form_class());
    app.register_class(box_class());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        crate::label::register(&mut a);
        crate::command::register(&mut a);
        register(&mut a);
        a
    }

    #[test]
    fn from_vert_stacks_children() {
        // The paper's prime-factors tree: input, result fromVert input,
        // quit fromVert result, info fromVert result fromHoriz quit.
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let form = a
            .create_widget("topf", "Form", Some(top), 0, &[], true)
            .unwrap();
        let input = a
            .create_widget(
                "input",
                "Label",
                Some(form),
                0,
                &[("width".into(), "200".into())],
                true,
            )
            .unwrap();
        let result = a
            .create_widget(
                "result",
                "Label",
                Some(form),
                0,
                &[
                    ("width".into(), "200".into()),
                    ("fromVert".into(), "input".into()),
                ],
                true,
            )
            .unwrap();
        let quit = a
            .create_widget(
                "quit",
                "Command",
                Some(form),
                0,
                &[
                    ("label".into(), "quit".into()),
                    ("fromVert".into(), "result".into()),
                ],
                true,
            )
            .unwrap();
        let info = a
            .create_widget(
                "info",
                "Label",
                Some(form),
                0,
                &[
                    ("fromVert".into(), "result".into()),
                    ("fromHoriz".into(), "quit".into()),
                    ("borderWidth".into(), "0".into()),
                    ("width".into(), "150".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        // input at top-left corner (+default distance).
        assert_eq!(a.pos_resource(input, "x"), 4);
        assert_eq!(a.pos_resource(input, "y"), 4);
        // result strictly below input.
        assert!(a.pos_resource(result, "y") > a.pos_resource(input, "y") + 10);
        assert_eq!(a.pos_resource(result, "x"), 4);
        // quit below result; info right of quit, same row.
        assert!(a.pos_resource(quit, "y") > a.pos_resource(result, "y"));
        assert_eq!(a.pos_resource(info, "y"), a.pos_resource(quit, "y"));
        assert!(a.pos_resource(info, "x") > a.pos_resource(quit, "x"));
        // Form wraps everything.
        assert!(a.dim_resource(form, "width") >= 208);
    }

    #[test]
    fn form_bounds_grow_with_children() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let form = a
            .create_widget("f", "Form", Some(top), 0, &[], true)
            .unwrap();
        let mut prev = String::new();
        for i in 0..5 {
            let name = format!("w{i}");
            let mut init = vec![
                ("width".to_string(), "50".to_string()),
                ("height".to_string(), "20".to_string()),
            ];
            if !prev.is_empty() {
                init.push(("fromVert".to_string(), prev.clone()));
            }
            a.create_widget(&name, "Label", Some(form), 0, &init, true)
                .unwrap();
            prev = name;
        }
        a.realize(top);
        // Five 20px-high widgets stacked: form height > 5*20.
        assert!(a.dim_resource(form, "height") > 100);
    }

    #[test]
    fn horiz_distance_respected() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let form = a
            .create_widget("f", "Form", Some(top), 0, &[], true)
            .unwrap();
        a.create_widget(
            "a",
            "Label",
            Some(form),
            0,
            &[("width".into(), "50".into())],
            true,
        )
        .unwrap();
        let b = a
            .create_widget(
                "b",
                "Label",
                Some(form),
                0,
                &[
                    ("fromHoriz".into(), "a".into()),
                    ("horizDistance".into(), "20".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        let ax = a.pos_resource(a.lookup("a").unwrap(), "x");
        let abw = a.dim_resource(a.lookup("a").unwrap(), "borderWidth") as i32;
        assert_eq!(a.pos_resource(b, "x"), ax + 50 + 2 * abw + 20);
    }

    #[test]
    fn box_vertical_and_horizontal() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let bx = a
            .create_widget(
                "bx",
                "Box",
                Some(top),
                0,
                &[("orientation".into(), "horizontal".into())],
                true,
            )
            .unwrap();
        let c1 = a
            .create_widget(
                "c1",
                "Label",
                Some(bx),
                0,
                &[
                    ("width".into(), "30".into()),
                    ("height".into(), "10".into()),
                ],
                true,
            )
            .unwrap();
        let c2 = a
            .create_widget(
                "c2",
                "Label",
                Some(bx),
                0,
                &[
                    ("width".into(), "30".into()),
                    ("height".into(), "10".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        assert_eq!(a.pos_resource(c1, "y"), a.pos_resource(c2, "y"));
        assert!(a.pos_resource(c2, "x") > a.pos_resource(c1, "x"));
        // Vertical box stacks.
        let bv = a
            .create_widget("bv", "Box", Some(top), 0, &[], false)
            .unwrap();
        let d1 = a
            .create_widget(
                "d1",
                "Label",
                Some(bv),
                0,
                &[("height".into(), "10".into())],
                true,
            )
            .unwrap();
        let d2 = a
            .create_widget(
                "d2",
                "Label",
                Some(bv),
                0,
                &[("height".into(), "10".into())],
                true,
            )
            .unwrap();
        a.do_layout(bv);
        assert!(a.pos_resource(d2, "y") > a.pos_resource(d1, "y"));
    }

    #[test]
    fn unmanaged_children_skipped() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let form = a
            .create_widget("f", "Form", Some(top), 0, &[], true)
            .unwrap();
        a.create_widget(
            "vis",
            "Label",
            Some(form),
            0,
            &[
                ("width".into(), "50".into()),
                ("height".into(), "20".into()),
            ],
            true,
        )
        .unwrap();
        a.create_widget(
            "hid",
            "Label",
            Some(form),
            0,
            &[
                ("width".into(), "500".into()),
                ("height".into(), "500".into()),
            ],
            false,
        )
        .unwrap();
        a.realize(top);
        // The unmanaged 500px child must not blow up the form.
        assert!(a.dim_resource(form, "width") < 200);
    }
}
