//! SimpleMenu and its SmeBSB entries.
//!
//! SimpleMenu is the override shell `PopupMenu()` pops up; SmeBSB
//! entries fire their `callback` resource and pop the menu down.

use std::collections::HashMap;
use std::rc::Rc;

use wafe_xproto::framebuffer::DrawOp;
use wafe_xt::action::ActionTable;
use wafe_xt::resource::{core_resources, ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

/// SimpleMenu's resources.
pub fn simplemenu_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = core_resources();
    v.extend([
        ResourceSpec::new("label", "Label", String, ""),
        ResourceSpec::new("rowHeight", "RowHeight", Dimension, "0"),
        ResourceSpec::new("topMargin", "VerticalMargins", Dimension, "2"),
        ResourceSpec::new("bottomMargin", "VerticalMargins", Dimension, "2"),
        ResourceSpec::new("popupOnEntry", "Widget", Widget, ""),
    ]);
    v
}

/// SimpleMenu: a vertical stack of entries in an override shell.
pub struct SimpleMenuOps;

impl WidgetOps for SimpleMenuOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let tm = app.dim_resource(w, "topMargin");
        let bm = app.dim_resource(w, "bottomMargin");
        let mut width = 0u32;
        let mut height = tm + bm;
        for c in &app.widget(w).children {
            if !app.widget(*c).managed {
                continue;
            }
            width = width.max(app.dim_resource(*c, "width"));
            height += app.dim_resource(*c, "height");
        }
        (width.max(20), height.max(4))
    }

    fn layout(&self, app: &mut XtApp, w: WidgetId) {
        let width = app.dim_resource(w, "width");
        let tm = app.dim_resource(w, "topMargin") as i32;
        let children = app.widget(w).children.clone();
        let mut y = tm;
        for c in children {
            if !app.widget(c).managed {
                continue;
            }
            app.put_resource(c, "x", ResourceValue::Pos(0));
            app.put_resource(c, "y", ResourceValue::Pos(y));
            app.put_resource(c, "width", ResourceValue::Dim(width));
            y += app.dim_resource(c, "height") as i32;
        }
    }
}

/// SmeBSB's resources (a menu entry with a string label).
pub fn sme_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = core_resources();
    v.extend([
        ResourceSpec::new("label", "Label", String, ""),
        ResourceSpec::new("font", "Font", Font, "fixed"),
        ResourceSpec::new("foreground", "Foreground", Pixel, "black"),
        ResourceSpec::new("leftMargin", "HorizontalMargins", Dimension, "4"),
        ResourceSpec::new("rightMargin", "HorizontalMargins", Dimension, "4"),
        ResourceSpec::new("vertSpace", "VertSpace", Dimension, "2"),
        ResourceSpec::new("callback", "Callback", Callback, ""),
    ]);
    v
}

/// SmeBSB entry class methods.
pub struct SmeOps;

impl WidgetOps for SmeOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let font = app.fonts_of(w).get(app.font_resource(w, "font")).clone();
        let text = app.str_resource(w, "label");
        let lm = app.dim_resource(w, "leftMargin");
        let rm = app.dim_resource(w, "rightMargin");
        let vs = app.dim_resource(w, "vertSpace");
        (font.text_width(&text) + lm + rm, font.height() + 2 * vs)
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let font_id = app.font_resource(w, "font");
        let font = app.fonts_of(w).get(font_id).clone();
        let text = app.str_resource(w, "label");
        let lm = app.dim_resource(w, "leftMargin") as i32;
        let vs = app.dim_resource(w, "vertSpace") as i32;
        let fg = app.pixel_resource(w, "foreground");
        let mut ops = Vec::new();
        if app.state(w, "highlighted") == "1" {
            let width = app.dim_resource(w, "width");
            let height = app.dim_resource(w, "height");
            ops.push(DrawOp::DrawRect {
                rect: wafe_xproto::Rect::new(0, 0, width, height),
                pixel: fg,
            });
        }
        if !text.is_empty() {
            ops.push(DrawOp::DrawText {
                x: lm,
                y: vs + font.ascent as i32,
                text,
                pixel: fg,
                font: font_id,
            });
        }
        ops
    }
}

fn sme_actions() -> ActionTable {
    let mut t = ActionTable::new();
    t.add("highlight", |app, w, _, _| {
        app.set_state(w, "highlighted", "1");
        app.redisplay_widget(w);
    });
    t.add("unhighlight", |app, w, _, _| {
        app.set_state(w, "highlighted", "0");
        app.redisplay_widget(w);
    });
    t.add("notify", |app, w, _, _| {
        let mut data = HashMap::new();
        data.insert('l', app.str_resource(w, "label"));
        app.call_callbacks(w, "callback", data);
    });
    t.add("MenuPopdown", |app, w, _, _| {
        // Pop down the menu shell this entry sits in.
        if let Some(menu) = app.widget(w).parent {
            app.popdown(menu);
        }
    });
    t
}

/// SmeLine — the separator entry between menu sections.
pub fn smeline_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = core_resources();
    v.push(ResourceSpec::new("lineWidth", "LineWidth", Dimension, "1"));
    v.push(ResourceSpec::new(
        "foreground",
        "Foreground",
        Pixel,
        "black",
    ));
    v
}

/// SmeLine class methods: a horizontal rule.
pub struct SmeLineOps;

impl WidgetOps for SmeLineOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        (20, app.dim_resource(w, "lineWidth").max(1) + 2)
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let width = app.dim_resource(w, "width");
        let y = app.dim_resource(w, "height") as i32 / 2;
        vec![DrawOp::DrawLine {
            x1: 1,
            y1: y,
            x2: width as i32 - 2,
            y2: y,
            pixel: app.pixel_resource(w, "foreground"),
        }]
    }
}

/// Registers SimpleMenu and SmeBSB.
pub fn register(app: &mut XtApp) {
    app.register_class(WidgetClass {
        name: "SimpleMenu".into(),
        resources: simplemenu_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(SimpleMenuOps),
        is_shell: true,
        is_composite: true,
    });
    app.register_class(WidgetClass {
        name: "SmeLine".into(),
        resources: smeline_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(SmeLineOps),
        is_shell: false,
        is_composite: false,
    });
    app.register_class(WidgetClass {
        name: "SmeBSB".into(),
        resources: sme_resources(),
        constraint_resources: Vec::new(),
        actions: sme_actions(),
        default_translations: TranslationTable::parse(
            "<EnterWindow>: highlight()\n\
             <LeaveWindow>: unhighlight()\n\
             <BtnUp>: notify() MenuPopdown()",
        )
        .expect("static translations"),
        ops: Rc::new(SmeOps),
        is_shell: false,
        is_composite: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        crate::label::register(&mut a);
        crate::command::register(&mut a);
        register(&mut a);
        a
    }

    #[test]
    fn menu_stacks_entries() {
        let mut a = app();
        let menu = a
            .create_widget("menu", "SimpleMenu", None, 0, &[], true)
            .unwrap();
        let e1 = a
            .create_widget(
                "e1",
                "SmeBSB",
                Some(menu),
                0,
                &[("label".into(), "Open".into())],
                true,
            )
            .unwrap();
        let e2 = a
            .create_widget(
                "e2",
                "SmeBSB",
                Some(menu),
                0,
                &[("label".into(), "Quit".into())],
                true,
            )
            .unwrap();
        a.popup(menu, wafe_xproto::GrabKind::Exclusive);
        assert!(a.pos_resource(e2, "y") > a.pos_resource(e1, "y"));
        assert_eq!(a.dim_resource(e1, "width"), a.dim_resource(e2, "width"));
    }

    #[test]
    fn entry_click_notifies_and_pops_down() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        a.realize(top);
        let menu = a
            .create_widget("menu", "SimpleMenu", None, 0, &[], true)
            .unwrap();
        let e1 = a
            .create_widget(
                "e1",
                "SmeBSB",
                Some(menu),
                0,
                &[
                    ("label".into(), "Open".into()),
                    ("callback".into(), "echo open".into()),
                ],
                true,
            )
            .unwrap();
        a.popup(menu, wafe_xproto::GrabKind::Exclusive);
        a.dispatch_pending();
        let _ = a.take_host_calls();
        let win = a.widget(e1).window.unwrap();
        let abs = a.displays[0].abs_rect(win);
        a.displays[0].inject_click(abs.x + 3, abs.y + 3, 1);
        a.dispatch_pending();
        let calls = a.take_host_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].script, "echo open");
        assert_eq!(calls[0].data.get(&'l').map(String::as_str), Some("Open"));
        assert!(!a.is_popped_up(menu), "menu pops down after selection");
        assert_eq!(a.displays[0].grab_depth(), 0);
    }

    #[test]
    fn entry_highlight_on_crossing() {
        let mut a = app();
        let menu = a
            .create_widget("menu", "SimpleMenu", None, 0, &[], true)
            .unwrap();
        let e1 = a
            .create_widget(
                "e1",
                "SmeBSB",
                Some(menu),
                0,
                &[("label".into(), "Open".into())],
                true,
            )
            .unwrap();
        a.popup(menu, wafe_xproto::GrabKind::None);
        a.dispatch_pending();
        let win = a.widget(e1).window.unwrap();
        let abs = a.displays[0].abs_rect(win);
        a.displays[0].inject_pointer_move(abs.x + 2, abs.y + 2);
        a.dispatch_pending();
        assert_eq!(a.state(e1, "highlighted"), "1");
        a.displays[0].inject_pointer_move(900, 700);
        a.dispatch_pending();
        assert_eq!(a.state(e1, "highlighted"), "0");
    }
}

#[cfg(test)]
mod smeline_tests {
    use super::*;

    #[test]
    fn separator_renders_one_line() {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        register(&mut a);
        let menu = a
            .create_widget("menu", "SimpleMenu", None, 0, &[], true)
            .unwrap();
        a.create_widget(
            "e1",
            "SmeBSB",
            Some(menu),
            0,
            &[("label".into(), "Open".into())],
            true,
        )
        .unwrap();
        let sep = a
            .create_widget("sep", "SmeLine", Some(menu), 0, &[], true)
            .unwrap();
        let e2 = a
            .create_widget(
                "e2",
                "SmeBSB",
                Some(menu),
                0,
                &[("label".into(), "Quit".into())],
                true,
            )
            .unwrap();
        a.popup(menu, wafe_xproto::GrabKind::None);
        let ops = SmeLineOps.redisplay(&a, sep);
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], DrawOp::DrawLine { .. }));
        // The separator sits between the entries.
        assert!(a.pos_resource(sep, "y") > a.pos_resource(a.lookup("e1").unwrap(), "y"));
        assert!(a.pos_resource(e2, "y") > a.pos_resource(sep, "y"));
    }
}
