//! The AsciiText widget — a real editable text buffer.
//!
//! The paper's prime-factors example creates
//! `asciiText input top editType edit width 200` and overrides
//! `<Key>Return` with an `exec` action; every other key edits the buffer
//! through the standard text actions. The mass-transfer example sets the
//! `string` resource of an asciiText from a 100000-byte channel payload.

use std::rc::Rc;

use wafe_xproto::framebuffer::DrawOp;
use wafe_xproto::geometry::Rect;
use wafe_xt::action::ActionTable;
use wafe_xt::resource::{ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

use crate::common::simple_base;

/// AsciiText's resources.
pub fn text_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = simple_base();
    v.extend([
        ResourceSpec::new("string", "String", String, ""),
        ResourceSpec::new("editType", "EditType", String, "read"),
        ResourceSpec::new("font", "Font", Font, "fixed"),
        ResourceSpec::new("foreground", "Foreground", Pixel, "black"),
        ResourceSpec::new("displayCaret", "Output", Boolean, "true"),
        ResourceSpec::new("insertPosition", "TextPosition", Int, "0"),
        ResourceSpec::new("leftMargin", "Margin", Dimension, "2"),
        ResourceSpec::new("topMargin", "Margin", Dimension, "2"),
        ResourceSpec::new("wrap", "Wrap", String, "never"),
        ResourceSpec::new("scrollVertical", "Scroll", String, "never"),
        ResourceSpec::new("scrollHorizontal", "Scroll", String, "never"),
        ResourceSpec::new("length", "Length", Int, "0"),
    ]);
    v
}

fn cursor(app: &XtApp, w: WidgetId) -> usize {
    app.state(w, "pos").parse().unwrap_or(0)
}

fn set_cursor(app: &mut XtApp, w: WidgetId, pos: usize) {
    let len = app.str_resource(w, "string").chars().count();
    app.set_state(w, "pos", pos.min(len).to_string());
}

fn editable(app: &XtApp, w: WidgetId) -> bool {
    matches!(app.str_resource(w, "editType").as_str(), "edit" | "append")
}

fn splice(app: &mut XtApp, w: WidgetId, at: usize, del: usize, ins: &str) {
    let s = app.str_resource(w, "string");
    let chars: Vec<char> = s.chars().collect();
    let at = at.min(chars.len());
    let end = (at + del).min(chars.len());
    let mut out: String = chars[..at].iter().collect();
    out.push_str(ins);
    out.extend(&chars[end..]);
    app.put_resource(w, "string", ResourceValue::Str(out));
    app.redisplay_widget(w);
}

/// AsciiText class methods.
pub struct TextOps;

impl WidgetOps for TextOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let font = app.fonts_of(w).get(app.font_resource(w, "font")).clone();
        let s = app.str_resource(w, "string");
        let lines: Vec<&str> = s.split('\n').collect();
        let longest = lines.iter().map(|l| font.text_width(l)).max().unwrap_or(0);
        let lm = app.dim_resource(w, "leftMargin");
        let tm = app.dim_resource(w, "topMargin");
        (
            longest.max(100) + 2 * lm,
            (lines.len().max(1) as u32) * font.height() + 2 * tm,
        )
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let font_id = app.font_resource(w, "font");
        let font = app.fonts_of(w).get(font_id).clone();
        let fg = app.pixel_resource(w, "foreground");
        let lm = app.dim_resource(w, "leftMargin") as i32;
        let tm = app.dim_resource(w, "topMargin") as i32;
        let s = app.str_resource(w, "string");
        let mut ops = Vec::new();
        let mut consumed = 0usize;
        let caret = cursor(app, w);
        for (row, line) in s.split('\n').enumerate() {
            let y = tm + row as i32 * font.height() as i32 + font.ascent as i32;
            if !line.is_empty() {
                ops.push(DrawOp::DrawText {
                    x: lm,
                    y,
                    text: line.to_string(),
                    pixel: fg,
                    font: font_id,
                });
            }
            // Caret on this line?
            let line_len = line.chars().count();
            if app.bool_resource(w, "displayCaret")
                && caret >= consumed
                && caret <= consumed + line_len
            {
                let cx = lm + ((caret - consumed) as u32 * font.char_width) as i32;
                ops.push(DrawOp::FillRect {
                    rect: Rect::new(cx, y - font.ascent as i32, 1, font.height()),
                    pixel: fg,
                });
            }
            consumed += line_len + 1;
        }
        ops
    }
}

/// Converts a window-relative point to a buffer position.
fn position_at(app: &XtApp, w: WidgetId, x: i32, y: i32) -> usize {
    let font = app.fonts_of(w).get(app.font_resource(w, "font")).clone();
    let lm = app.dim_resource(w, "leftMargin") as i32;
    let tm = app.dim_resource(w, "topMargin") as i32;
    let row = ((y - tm).max(0) / font.height() as i32) as usize;
    let col = ((x - lm).max(0) / font.char_width as i32) as usize;
    let s = app.str_resource(w, "string");
    let mut pos = 0usize;
    for (r, line) in s.split('\n').enumerate() {
        let len = line.chars().count();
        if r == row {
            return pos + col.min(len);
        }
        pos += len + 1;
        if r > row {
            break;
        }
    }
    s.chars().count()
}

fn text_actions() -> ActionTable {
    let mut t = ActionTable::new();
    t.add("select-start", |app, w, e, _| {
        let pos = position_at(app, w, e.x, e.y);
        set_cursor(app, w, pos);
        app.set_state(w, "sel_anchor", pos.to_string());
        app.redisplay_widget(w);
    });
    t.add("select-end", |app, w, e, _| {
        // Owns PRIMARY with the dragged range, like Xaw's extend-end.
        let anchor: usize = app.state(w, "sel_anchor").parse().unwrap_or(0);
        let pos = position_at(app, w, e.x, e.y);
        let (lo, hi) = (anchor.min(pos), anchor.max(pos));
        if lo == hi {
            return;
        }
        let s = app.str_resource(w, "string");
        let selected: String = s.chars().skip(lo).take(hi - lo).collect();
        let di = app.widget(w).display_idx;
        let win = app.widget(w).window;
        if let Some(win) = win {
            let atom = app.displays[di].intern_atom("PRIMARY");
            app.displays[di].own_selection(atom, win, selected);
        }
        app.set_state(w, "sel_lo", lo.to_string());
        app.set_state(w, "sel_hi", hi.to_string());
    });
    t.add("insert-selection", |app, w, _, _| {
        // Middle-click paste: inserts PRIMARY at the cursor.
        if !editable(app, w) {
            return;
        }
        let di = app.widget(w).display_idx;
        let atom = app.displays[di].intern_atom("PRIMARY");
        let text = app.displays[di]
            .get_selection(atom)
            .unwrap_or("")
            .to_string();
        if text.is_empty() {
            return;
        }
        let at = cursor(app, w);
        splice(app, w, at, 0, &text);
        set_cursor(app, w, at + text.chars().count());
    });
    t.add("insert-char", |app, w, e, _| {
        if !editable(app, w) || e.ascii.is_empty() {
            return;
        }
        let c = e.ascii.clone();
        // Only printable characters insert; control keys have their own
        // actions.
        if c.chars().any(|ch| ch.is_control()) {
            return;
        }
        let at = cursor(app, w);
        splice(app, w, at, 0, &c);
        set_cursor(app, w, at + c.chars().count());
    });
    t.add("insert-string", |app, w, _, args| {
        if !editable(app, w) {
            return;
        }
        let s = args.join(",");
        let at = cursor(app, w);
        splice(app, w, at, 0, &s);
        set_cursor(app, w, at + s.chars().count());
    });
    t.add("delete-previous-character", |app, w, _, _| {
        if !editable(app, w) {
            return;
        }
        let at = cursor(app, w);
        if at > 0 {
            splice(app, w, at - 1, 1, "");
            set_cursor(app, w, at - 1);
        }
    });
    t.add("delete-next-character", |app, w, _, _| {
        if !editable(app, w) {
            return;
        }
        let at = cursor(app, w);
        splice(app, w, at, 1, "");
    });
    t.add("newline", |app, w, _, _| {
        if !editable(app, w) {
            return;
        }
        let at = cursor(app, w);
        splice(app, w, at, 0, "\n");
        set_cursor(app, w, at + 1);
    });
    t.add("forward-character", |app, w, _, _| {
        let at = cursor(app, w);
        set_cursor(app, w, at + 1);
    });
    t.add("backward-character", |app, w, _, _| {
        let at = cursor(app, w);
        set_cursor(app, w, at.saturating_sub(1));
    });
    t.add("beginning-of-line", |app, w, _, _| {
        let s = app.str_resource(w, "string");
        let chars: Vec<char> = s.chars().collect();
        let mut at = cursor(app, w).min(chars.len());
        while at > 0 && chars[at - 1] != '\n' {
            at -= 1;
        }
        set_cursor(app, w, at);
    });
    t.add("end-of-line", |app, w, _, _| {
        let s = app.str_resource(w, "string");
        let chars: Vec<char> = s.chars().collect();
        let mut at = cursor(app, w).min(chars.len());
        while at < chars.len() && chars[at] != '\n' {
            at += 1;
        }
        set_cursor(app, w, at);
    });
    t.add("kill-to-end-of-line", |app, w, _, _| {
        if !editable(app, w) {
            return;
        }
        let s = app.str_resource(w, "string");
        let chars: Vec<char> = s.chars().collect();
        let at = cursor(app, w).min(chars.len());
        let mut end = at;
        while end < chars.len() && chars[end] != '\n' {
            end += 1;
        }
        if end == at && end < chars.len() {
            end += 1; // Kill the newline itself when at end of line.
        }
        splice(app, w, at, end - at, "");
    });
    t
}

/// Builds the AsciiText class.
pub fn text_class() -> WidgetClass {
    WidgetClass {
        name: "AsciiText".into(),
        resources: text_resources(),
        constraint_resources: Vec::new(),
        actions: text_actions(),
        default_translations: TranslationTable::parse(
            "<Btn1Down>: select-start()\n\
             <Btn1Up>: select-end()\n\
             <Btn2Down>: insert-selection()\n\
             <Key>Return: newline()\n\
             <Key>BackSpace: delete-previous-character()\n\
             <Key>Delete: delete-previous-character()\n\
             <Key>Left: backward-character()\n\
             <Key>Right: forward-character()\n\
             <Key>Home: beginning-of-line()\n\
             <Key>End: end-of-line()\n\
             Ctrl<Key>k: kill-to-end-of-line()\n\
             Ctrl<Key>a: beginning-of-line()\n\
             Ctrl<Key>e: end-of-line()\n\
             <Key>: insert-char()",
        )
        .expect("static translations"),
        ops: Rc::new(TextOps),
        is_shell: false,
        is_composite: false,
    }
}

/// Registers the AsciiText class.
pub fn register(app: &mut XtApp) {
    app.register_class(text_class());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        register(&mut a);
        a
    }

    fn make_text(a: &mut XtApp, edit_type: &str) -> WidgetId {
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let t = a
            .create_widget(
                "input",
                "AsciiText",
                Some(top),
                0,
                &[
                    ("editType".into(), edit_type.into()),
                    ("width".into(), "200".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        t
    }

    fn focus_and_type(a: &mut XtApp, t: WidgetId, text: &str) {
        let win = a.widget(t).window.unwrap();
        a.displays[0].set_input_focus(Some(win));
        a.displays[0].inject_key_text(text);
        a.dispatch_pending();
    }

    #[test]
    fn typing_inserts_characters() {
        let mut a = app();
        let t = make_text(&mut a, "edit");
        focus_and_type(&mut a, t, "360");
        assert_eq!(a.str_resource(t, "string"), "360");
        assert_eq!(cursor(&a, t), 3);
    }

    #[test]
    fn read_only_ignores_typing() {
        let mut a = app();
        let t = make_text(&mut a, "read");
        focus_and_type(&mut a, t, "nope");
        assert_eq!(a.str_resource(t, "string"), "");
    }

    #[test]
    fn backspace_deletes() {
        let mut a = app();
        let t = make_text(&mut a, "edit");
        focus_and_type(&mut a, t, "abc");
        let win = a.widget(t).window.unwrap();
        a.displays[0].set_input_focus(Some(win));
        a.displays[0].inject_key_named("BackSpace", wafe_xproto::Modifiers::NONE);
        a.dispatch_pending();
        assert_eq!(a.str_resource(t, "string"), "ab");
    }

    #[test]
    fn return_makes_newline_by_default() {
        let mut a = app();
        let t = make_text(&mut a, "edit");
        focus_and_type(&mut a, t, "ab\ncd");
        assert_eq!(a.str_resource(t, "string"), "ab\ncd");
    }

    #[test]
    fn override_return_with_exec_blocks_newline() {
        // The paper's idiom: action input override {<Key>Return: exec(...)}.
        let mut a = app();
        let t = make_text(&mut a, "edit");
        let fired = Rc::new(std::cell::Cell::new(false));
        let f = fired.clone();
        a.global_actions.add("exec", move |_, _, _, _| f.set(true));
        let table = TranslationTable::parse("<Key>Return: exec(echo [gV input string])").unwrap();
        a.merge_translations(t, table, wafe_xt::MergeMode::Override);
        focus_and_type(&mut a, t, "42\n");
        assert_eq!(
            a.str_resource(t, "string"),
            "42",
            "Return must not insert a newline"
        );
        assert!(fired.get(), "exec action must fire on Return");
    }

    #[test]
    fn cursor_movement_and_kill() {
        let mut a = app();
        let t = make_text(&mut a, "edit");
        focus_and_type(&mut a, t, "hello");
        let ev =
            wafe_xproto::Event::new(wafe_xproto::EventKind::KeyPress, wafe_xproto::WindowId(0));
        a.run_action(t, "beginning-of-line", &[], &ev);
        assert_eq!(cursor(&a, t), 0);
        a.run_action(t, "forward-character", &[], &ev);
        a.run_action(t, "forward-character", &[], &ev);
        assert_eq!(cursor(&a, t), 2);
        a.run_action(t, "kill-to-end-of-line", &[], &ev);
        assert_eq!(a.str_resource(t, "string"), "he");
        a.run_action(t, "backward-character", &[], &ev);
        assert_eq!(cursor(&a, t), 1);
        a.run_action(t, "end-of-line", &[], &ev);
        assert_eq!(cursor(&a, t), 2);
    }

    #[test]
    fn set_string_resource_resets_display() {
        // The mass-transfer example: sV text string $C.
        let mut a = app();
        let t = make_text(&mut a, "edit");
        let big = "x".repeat(1000);
        a.set_resource(t, "string", &big).unwrap();
        assert_eq!(a.str_resource(t, "string").len(), 1000);
    }

    #[test]
    fn renders_text_in_snapshot() {
        let mut a = app();
        let t = make_text(&mut a, "edit");
        focus_and_type(&mut a, t, "visible");
        let _ = t;
        let snap = a.displays[0].snapshot_ascii(Rect::new(0, 0, 400, 100));
        assert!(snap.contains("visible"), "snapshot:\n{snap}");
    }

    #[test]
    fn shifted_characters_insert() {
        let mut a = app();
        let t = make_text(&mut a, "edit");
        focus_and_type(&mut a, t, "A!");
        assert_eq!(a.str_resource(t, "string"), "A!");
    }
}

#[cfg(test)]
mod pointer_tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        register(&mut a);
        a
    }

    fn make(a: &mut XtApp, content: &str) -> WidgetId {
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let t = a
            .create_widget(
                "t",
                "AsciiText",
                Some(top),
                0,
                &[
                    ("editType".into(), "edit".into()),
                    ("string".into(), content.into()),
                    ("width".into(), "300".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        t
    }

    #[test]
    fn click_positions_cursor() {
        let mut a = app();
        let t = make(&mut a, "hello world");
        let abs = a.displays[0].abs_rect(a.widget(t).window.unwrap());
        // Click at column 6 ("w"): leftMargin 2 + 6*6px + middle of cell.
        a.displays[0].inject_click(abs.x + 2 + 6 * 6 + 1, abs.y + 5, 1);
        a.dispatch_pending();
        assert_eq!(cursor(&a, t), 6);
    }

    #[test]
    fn click_on_second_line() {
        let mut a = app();
        let t = make(&mut a, "line one\nline two");
        let abs = a.displays[0].abs_rect(a.widget(t).window.unwrap());
        // Row 1 (second line), column 0: position = 9.
        a.displays[0].inject_click(abs.x + 3, abs.y + 2 + 13 + 4, 1);
        a.dispatch_pending();
        assert_eq!(cursor(&a, t), 9);
    }

    #[test]
    fn click_past_end_clamps() {
        let mut a = app();
        let t = make(&mut a, "ab");
        let abs = a.displays[0].abs_rect(a.widget(t).window.unwrap());
        a.displays[0].inject_click(abs.x + 250, abs.y + 5, 1);
        a.dispatch_pending();
        assert_eq!(cursor(&a, t), 2);
    }

    #[test]
    fn drag_selection_owns_primary() {
        let mut a = app();
        let t = make(&mut a, "hello world");
        let abs = a.displays[0].abs_rect(a.widget(t).window.unwrap());
        // Press at col 0, release at col 5: selects "hello".
        a.displays[0].inject_pointer_move(abs.x + 3, abs.y + 5);
        a.displays[0].inject_button(1, true);
        a.displays[0].inject_pointer_move(abs.x + 2 + 5 * 6 + 1, abs.y + 5);
        a.displays[0].inject_button(1, false);
        a.dispatch_pending();
        let atom = a.displays[0].intern_atom("PRIMARY");
        assert_eq!(a.displays[0].get_selection(atom), Some("hello"));
    }

    #[test]
    fn middle_click_pastes_primary() {
        let mut a = app();
        let t = make(&mut a, "start:");
        // Something else owns PRIMARY.
        let root = a.displays[0].root();
        let atom = a.displays[0].intern_atom("PRIMARY");
        a.displays[0].own_selection(atom, root, "pasted".into());
        // Put the cursor at the end, then middle-click.
        let ev =
            wafe_xproto::Event::new(wafe_xproto::EventKind::KeyPress, wafe_xproto::WindowId(0));
        a.run_action(t, "end-of-line", &[], &ev);
        let abs = a.displays[0].abs_rect(a.widget(t).window.unwrap());
        a.displays[0].inject_pointer_move(abs.x + 3, abs.y + 5);
        a.displays[0].inject_button(2, true);
        a.displays[0].inject_button(2, false);
        a.dispatch_pending();
        // insert-selection pastes at the (click-set) cursor; Btn1 was not
        // pressed, so the cursor stayed where end-of-line put it? No: the
        // Btn2Down translation does not move the cursor, so the paste
        // lands at position 6.
        assert_eq!(a.str_resource(t, "string"), "start:pasted");
    }

    #[test]
    fn paste_into_readonly_is_ignored() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let t = a
            .create_widget(
                "t",
                "AsciiText",
                Some(top),
                0,
                &[("string".into(), "ro".into())],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let atom = a.displays[0].intern_atom("PRIMARY");
        let root = a.displays[0].root();
        a.displays[0].own_selection(atom, root, "xx".into());
        let abs = a.displays[0].abs_rect(a.widget(t).window.unwrap());
        a.displays[0].inject_pointer_move(abs.x + 3, abs.y + 5);
        a.displays[0].inject_button(2, true);
        a.displays[0].inject_button(2, false);
        a.dispatch_pending();
        assert_eq!(a.str_resource(t, "string"), "ro");
    }
}
