//! StripChart and BarGraph.
//!
//! StripChart backs the paper's monitor demos (`xnetstats`, `xvmstats`,
//! `xiostats`, `xruptimes`): the application feeds one sample per
//! interval and the chart scrolls left. BarGraph stands in for the
//! Plotter widget set the distribution bundles ("bar graphs and line
//! graphs").

use std::rc::Rc;

use wafe_xproto::framebuffer::DrawOp;
use wafe_xproto::geometry::Rect;
use wafe_xt::action::ActionTable;
use wafe_xt::resource::{ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

use crate::common::simple_base;

/// StripChart's resources.
pub fn stripchart_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = simple_base();
    v.extend([
        ResourceSpec::new("foreground", "Foreground", Pixel, "black"),
        ResourceSpec::new("highlight", "Foreground", Pixel, "gray50"),
        ResourceSpec::new("update", "Interval", Int, "10"),
        ResourceSpec::new("minScale", "Scale", Int, "1"),
        ResourceSpec::new("jumpScroll", "JumpScroll", Int, "8"),
        ResourceSpec::new("getValue", "Callback", Callback, ""),
    ]);
    v
}

fn samples(app: &XtApp, w: WidgetId) -> Vec<f64> {
    app.state(w, "samples")
        .split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok())
        .collect()
}

/// Feeds one sample to a StripChart (what the monitor frontends do each
/// interval). Keeps a window of `width` samples.
pub fn stripchart_add_sample(app: &mut XtApp, w: WidgetId, value: f64) {
    let width = app.dim_resource(w, "width").max(10) as usize;
    let mut s = samples(app, w);
    s.push(value);
    if s.len() > width {
        let excess = s.len() - width;
        s.drain(..excess);
    }
    let joined: Vec<String> = s.iter().map(|v| v.to_string()).collect();
    app.set_state(w, "samples", joined.join(","));
    app.redisplay_widget(w);
}

/// StripChart class methods.
pub struct StripChartOps;

impl WidgetOps for StripChartOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        (
            app.dim_resource(w, "width").max(120),
            app.dim_resource(w, "height").max(40),
        )
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let height = app.dim_resource(w, "height").max(1) as f64;
        let fg = app.pixel_resource(w, "foreground");
        let s = samples(app, w);
        let min_scale = match app.widget(w).resource("minScale") {
            Some(ResourceValue::Int(v)) => (*v).max(1) as f64,
            _ => 1.0,
        };
        let scale = s.iter().cloned().fold(min_scale, f64::max);
        let mut ops = Vec::new();
        for (i, v) in s.iter().enumerate() {
            let h = ((v / scale) * (height - 2.0)).max(0.0) as u32;
            if h > 0 {
                ops.push(DrawOp::DrawLine {
                    x1: i as i32,
                    y1: height as i32 - 1,
                    x2: i as i32,
                    y2: height as i32 - 1 - h as i32,
                    pixel: fg,
                });
            }
        }
        ops
    }
}

/// BarGraph's resources (the Plotter stand-in).
pub fn bargraph_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = simple_base();
    v.extend([
        ResourceSpec::new("foreground", "Foreground", Pixel, "steel blue"),
        ResourceSpec::new("values", "Values", StringList, ""),
        ResourceSpec::new("labels", "Labels", StringList, ""),
        ResourceSpec::new("barWidth", "BarWidth", Dimension, "12"),
        ResourceSpec::new("barSpacing", "BarSpacing", Dimension, "4"),
        ResourceSpec::new("font", "Font", Font, "fixed"),
    ]);
    v
}

/// BarGraph class methods.
pub struct BarGraphOps;

impl WidgetOps for BarGraphOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let n = match app.widget(w).resource("values") {
            Some(ResourceValue::StrList(v)) => v.len() as u32,
            _ => 0,
        };
        let bw = app.dim_resource(w, "barWidth");
        let sp = app.dim_resource(w, "barSpacing");
        (
            (n * (bw + sp) + sp).max(60),
            app.dim_resource(w, "height").max(80),
        )
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let values: Vec<f64> = match app.widget(w).resource("values") {
            Some(ResourceValue::StrList(v)) => {
                v.iter().filter_map(|s| s.trim().parse().ok()).collect()
            }
            _ => Vec::new(),
        };
        let height = app.dim_resource(w, "height").max(1) as f64;
        let bw = app.dim_resource(w, "barWidth");
        let sp = app.dim_resource(w, "barSpacing");
        let fg = app.pixel_resource(w, "foreground");
        let max = values.iter().cloned().fold(1.0_f64, f64::max);
        let mut ops = Vec::new();
        for (i, v) in values.iter().enumerate() {
            let h = ((v / max) * (height - 4.0)).max(1.0) as u32;
            let x = sp as i32 + i as i32 * (bw + sp) as i32;
            ops.push(DrawOp::FillRect {
                rect: Rect::new(x, height as i32 - h as i32 - 2, bw, h),
                pixel: fg,
            });
        }
        ops
    }
}

/// LineGraph's resources (the other half of the Plotter set: "bar graphs
/// and line graphs"). Up to three series, comma-separated numbers.
pub fn linegraph_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = simple_base();
    v.extend([
        ResourceSpec::new("series1", "Series", StringList, ""),
        ResourceSpec::new("series2", "Series", StringList, ""),
        ResourceSpec::new("series3", "Series", StringList, ""),
        ResourceSpec::new("foreground", "Foreground", Pixel, "steel blue"),
        ResourceSpec::new("series2Color", "Foreground", Pixel, "firebrick"),
        ResourceSpec::new("series3Color", "Foreground", Pixel, "forest green"),
        ResourceSpec::new("minY", "Scale", Int, "0"),
        ResourceSpec::new("maxY", "Scale", Int, "0"),
        ResourceSpec::new("gridLines", "Boolean", Boolean, "true"),
        ResourceSpec::new("axisColor", "Foreground", Pixel, "gray40"),
    ]);
    v
}

fn series_values(app: &XtApp, w: WidgetId, name: &str) -> Vec<f64> {
    match app.widget(w).resource(name) {
        Some(ResourceValue::StrList(v)) => v.iter().filter_map(|s| s.trim().parse().ok()).collect(),
        _ => Vec::new(),
    }
}

/// LineGraph class methods.
pub struct LineGraphOps;

impl WidgetOps for LineGraphOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        (
            app.dim_resource(w, "width").max(160),
            app.dim_resource(w, "height").max(100),
        )
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let width = app.dim_resource(w, "width").max(2) as i32;
        let height = app.dim_resource(w, "height").max(2) as i32;
        let axis = app.pixel_resource(w, "axisColor");
        let mut ops = Vec::new();

        // Collect every series and the y range.
        let colors = [
            app.pixel_resource(w, "foreground"),
            app.pixel_resource(w, "series2Color"),
            app.pixel_resource(w, "series3Color"),
        ];
        let series: Vec<Vec<f64>> = ["series1", "series2", "series3"]
            .iter()
            .map(|n| series_values(app, w, n))
            .collect();
        let all: Vec<f64> = series.iter().flatten().copied().collect();
        let (auto_min, auto_max) = all
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let min_y = match app.widget(w).resource("minY") {
            Some(ResourceValue::Int(v)) if *v != 0 => *v as f64,
            _ if all.is_empty() => 0.0,
            _ => auto_min.min(0.0),
        };
        let max_y = match app.widget(w).resource("maxY") {
            Some(ResourceValue::Int(v)) if *v != 0 => *v as f64,
            _ if all.is_empty() => 1.0,
            _ => auto_max.max(min_y + 1.0),
        };
        let span = (max_y - min_y).max(1e-9);
        let plot_h = (height - 4) as f64;
        let y_of = |v: f64| -> i32 { height - 2 - ((v - min_y) / span * plot_h) as i32 };

        // Axes and optional horizontal grid lines.
        ops.push(DrawOp::DrawLine {
            x1: 1,
            y1: height - 2,
            x2: width - 2,
            y2: height - 2,
            pixel: axis,
        });
        ops.push(DrawOp::DrawLine {
            x1: 1,
            y1: 1,
            x2: 1,
            y2: height - 2,
            pixel: axis,
        });
        if app.bool_resource(w, "gridLines") {
            for k in 1..4 {
                let gy = 2 + k * (height - 4) / 4;
                ops.push(DrawOp::DrawLine {
                    x1: 2,
                    y1: gy,
                    x2: width - 2,
                    y2: gy,
                    pixel: axis,
                });
            }
        }
        // Polylines.
        for (si, values) in series.iter().enumerate() {
            if values.len() < 2 {
                continue;
            }
            let step = (width - 6) as f64 / (values.len() - 1) as f64;
            for k in 1..values.len() {
                let x1 = 3 + ((k - 1) as f64 * step) as i32;
                let x2 = 3 + (k as f64 * step) as i32;
                ops.push(DrawOp::DrawLine {
                    x1,
                    y1: y_of(values[k - 1]),
                    x2,
                    y2: y_of(values[k]),
                    pixel: colors[si],
                });
            }
        }
        ops
    }
}

/// Registers StripChart and BarGraph.
pub fn register(app: &mut XtApp) {
    app.register_class(WidgetClass {
        name: "StripChart".into(),
        resources: stripchart_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(StripChartOps),
        is_shell: false,
        is_composite: false,
    });
    app.register_class(WidgetClass {
        name: "BarGraph".into(),
        resources: bargraph_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(BarGraphOps),
        is_shell: false,
        is_composite: false,
    });
    app.register_class(WidgetClass {
        name: "LineGraph".into(),
        resources: linegraph_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(LineGraphOps),
        is_shell: false,
        is_composite: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        register(&mut a);
        a
    }

    #[test]
    fn stripchart_accumulates_and_windows() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let c = a
            .create_widget(
                "chart",
                "StripChart",
                Some(top),
                0,
                &[
                    ("width".into(), "20".into()),
                    ("height".into(), "40".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        for i in 0..30 {
            stripchart_add_sample(&mut a, c, i as f64);
        }
        let s = samples(&a, c);
        assert_eq!(s.len(), 20, "window must bound the sample count");
        assert_eq!(s[0], 10.0);
        assert_eq!(*s.last().unwrap(), 29.0);
        let ops = StripChartOps.redisplay(&a, c);
        assert!(!ops.is_empty());
    }

    #[test]
    fn stripchart_scales_to_max() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let c = a
            .create_widget(
                "chart",
                "StripChart",
                Some(top),
                0,
                &[("height".into(), "42".into())],
                true,
            )
            .unwrap();
        a.realize(top);
        stripchart_add_sample(&mut a, c, 100.0);
        stripchart_add_sample(&mut a, c, 50.0);
        let ops = StripChartOps.redisplay(&a, c);
        // First line reaches the top (height-2), second reaches half.
        match (&ops[0], &ops[1]) {
            (DrawOp::DrawLine { y2: y_full, .. }, DrawOp::DrawLine { y2: y_half, .. }) => {
                assert!(y_full < y_half, "taller sample reaches higher (smaller y)");
            }
            _ => panic!("expected lines"),
        }
    }

    #[test]
    fn bargraph_draws_bars() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let b = a
            .create_widget(
                "bars",
                "BarGraph",
                Some(top),
                0,
                &[
                    ("values".into(), "3, 9, 6".into()),
                    ("height".into(), "100".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        let ops = BarGraphOps.redisplay(&a, b);
        assert_eq!(ops.len(), 3);
        let heights: Vec<u32> = ops
            .iter()
            .map(|op| match op {
                DrawOp::FillRect { rect, .. } => rect.h,
                _ => 0,
            })
            .collect();
        assert!(heights[1] > heights[0]);
        assert!(heights[1] > heights[2]);
        assert!(heights[2] > heights[0]);
    }
}

#[cfg(test)]
mod linegraph_tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        register(&mut a);
        a
    }

    #[test]
    fn linegraph_draws_polyline_per_series() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let g = a
            .create_widget(
                "g",
                "LineGraph",
                Some(top),
                0,
                &[
                    ("series1".into(), "0, 5, 3, 8".into()),
                    ("series2".into(), "2, 2, 2, 2".into()),
                    ("height".into(), "100".into()),
                    ("width".into(), "100".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        let ops = LineGraphOps.redisplay(&a, g);
        // Axes (2) + grid (3) + series1 segments (3) + series2 segments (3).
        let lines = ops
            .iter()
            .filter(|o| matches!(o, DrawOp::DrawLine { .. }))
            .count();
        assert_eq!(lines, 2 + 3 + 3 + 3);
        // The flat series stays at one y.
        let s2: Vec<(i32, i32)> = ops
            .iter()
            .filter_map(|o| match o {
                DrawOp::DrawLine { y1, y2, pixel, .. }
                    if *pixel == a.pixel_resource(g, "series2Color") =>
                {
                    Some((*y1, *y2))
                }
                _ => None,
            })
            .collect();
        assert!(s2.iter().all(|(y1, y2)| y1 == y2));
    }

    #[test]
    fn linegraph_scales_to_explicit_range() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let g = a
            .create_widget(
                "g",
                "LineGraph",
                Some(top),
                0,
                &[
                    ("series1".into(), "0, 100".into()),
                    ("minY".into(), "-100".into()),
                    ("maxY".into(), "300".into()),
                    ("gridLines".into(), "false".into()),
                    ("height".into(), "104".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        let ops = LineGraphOps.redisplay(&a, g);
        // No grid: 2 axes + 1 segment.
        let lines = ops
            .iter()
            .filter(|o| matches!(o, DrawOp::DrawLine { .. }))
            .count();
        assert_eq!(lines, 3);
    }

    #[test]
    fn empty_series_only_axes() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let g = a
            .create_widget(
                "g",
                "LineGraph",
                Some(top),
                0,
                &[("gridLines".into(), "false".into())],
                true,
            )
            .unwrap();
        a.realize(top);
        let ops = LineGraphOps.redisplay(&a, g);
        assert_eq!(ops.len(), 2);
    }
}
