//! The Dialog widget: a Form with a label, an optional value field and
//! button children.

use std::rc::Rc;

use wafe_xt::action::ActionTable;
use wafe_xt::resource::{ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

use crate::form::{form_constraints, form_resources, FormOps};

/// Dialog's resources: Form's plus `label` and `value`.
pub fn dialog_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = form_resources();
    v.push(ResourceSpec::new("label", "Label", String, ""));
    v.push(ResourceSpec::new("value", "Value", String, ""));
    v.push(ResourceSpec::new("icon", "Icon", Pixmap, ""));
    v
}

/// Dialog class methods: on initialise, create the internal label (and
/// value text if `value` is non-empty), then lay out like a Form.
pub struct DialogOps;

impl WidgetOps for DialogOps {
    fn initialize(&self, app: &mut XtApp, w: WidgetId) {
        let name = app.widget(w).name.clone();
        let label_text = app.str_resource(w, "label");
        let value_text = app.str_resource(w, "value");
        let label_name = format!("{name}.label");
        let _ = app.create_widget(
            &label_name,
            "Label",
            Some(w),
            0,
            &[
                ("label".to_string(), label_text),
                ("borderWidth".to_string(), "0".to_string()),
            ],
            true,
        );
        if !value_text.is_empty() {
            let value_name = format!("{name}.value");
            let _ = app.create_widget(
                &value_name,
                "AsciiText",
                Some(w),
                0,
                &[
                    ("string".to_string(), value_text),
                    ("editType".to_string(), "edit".to_string()),
                    ("fromVert".to_string(), label_name.clone()),
                    ("width".to_string(), "150".to_string()),
                ],
                true,
            );
        }
    }

    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        FormOps.preferred_size(app, w)
    }

    fn layout(&self, app: &mut XtApp, w: WidgetId) {
        FormOps.layout(app, w);
    }

    fn set_values(&self, app: &mut XtApp, w: WidgetId, changed: &[String]) {
        if changed.iter().any(|c| c == "label") {
            let name = app.widget(w).name.clone();
            let text = app.str_resource(w, "label");
            if let Some(l) = app.lookup(&format!("{name}.label")) {
                app.put_resource(l, "label", ResourceValue::Str(text));
                app.redisplay_widget(l);
            }
        }
    }
}

/// `XawDialogGetValueString`: the current text of the value field.
pub fn dialog_get_value(app: &XtApp, w: WidgetId) -> String {
    let name = &app.widget(w).name;
    match app.lookup(&format!("{name}.value")) {
        Some(v) => app.str_resource(v, "string"),
        None => String::new(),
    }
}

/// `XawDialogAddButton`: adds a Command button below the value area.
pub fn dialog_add_button(
    app: &mut XtApp,
    dialog: WidgetId,
    name: &str,
    callback: &str,
) -> Result<WidgetId, wafe_xt::XtError> {
    let dname = app.widget(dialog).name.clone();
    let anchor = if app.lookup(&format!("{dname}.value")).is_some() {
        format!("{dname}.value")
    } else {
        format!("{dname}.label")
    };
    let prev_button = app.widget(dialog).children.iter().rev().find_map(|c| {
        let n = app.widget(*c).name.clone();
        if app.widget(*c).class.name == "Command" {
            Some(n)
        } else {
            None
        }
    });
    let mut init = vec![
        ("label".to_string(), name.to_string()),
        ("callback".to_string(), callback.to_string()),
        ("fromVert".to_string(), anchor),
    ];
    if let Some(p) = prev_button {
        init.push(("fromHoriz".to_string(), p));
    }
    app.create_widget(
        &format!("{dname}.{name}"),
        "Command",
        Some(dialog),
        0,
        &init,
        true,
    )
}

/// Registers the Dialog class.
pub fn register(app: &mut XtApp) {
    app.register_class(WidgetClass {
        name: "Dialog".into(),
        resources: dialog_resources(),
        constraint_resources: form_constraints(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(DialogOps),
        is_shell: false,
        is_composite: true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        crate::label::register(&mut a);
        crate::command::register(&mut a);
        crate::text::register(&mut a);
        crate::form::register(&mut a);
        register(&mut a);
        a
    }

    #[test]
    fn dialog_builds_label_and_value() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let d = a
            .create_widget(
                "dlg",
                "Dialog",
                Some(top),
                0,
                &[
                    ("label".into(), "Name:".into()),
                    ("value".into(), "initial".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        assert!(a.lookup("dlg.label").is_some());
        assert!(a.lookup("dlg.value").is_some());
        assert_eq!(dialog_get_value(&a, d), "initial");
    }

    #[test]
    fn dialog_without_value_has_no_text() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let d = a
            .create_widget(
                "dlg",
                "Dialog",
                Some(top),
                0,
                &[("label".into(), "Msg".into())],
                true,
            )
            .unwrap();
        assert!(a.lookup("dlg.value").is_none());
        assert_eq!(dialog_get_value(&a, d), "");
    }

    #[test]
    fn add_buttons_side_by_side() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let d = a
            .create_widget(
                "dlg",
                "Dialog",
                Some(top),
                0,
                &[("label".into(), "Q?".into())],
                true,
            )
            .unwrap();
        let ok = dialog_add_button(&mut a, d, "ok", "echo ok").unwrap();
        let cancel = dialog_add_button(&mut a, d, "cancel", "echo cancel").unwrap();
        a.realize(top);
        assert_eq!(a.pos_resource(ok, "y"), a.pos_resource(cancel, "y"));
        assert!(a.pos_resource(cancel, "x") > a.pos_resource(ok, "x"));
    }

    #[test]
    fn set_label_updates_child() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let d = a
            .create_widget(
                "dlg",
                "Dialog",
                Some(top),
                0,
                &[("label".into(), "Old".into())],
                true,
            )
            .unwrap();
        a.realize(top);
        a.set_resource(d, "label", "New").unwrap();
        let l = a.lookup("dlg.label").unwrap();
        assert_eq!(a.str_resource(l, "label"), "New");
    }
}
