//! The Label widget.
//!
//! Carries exactly **42** resources under the X11R5/Xaw3d stack, so that
//! the paper's interactive example
//!
//! ```text
//! label l topLevel
//! echo [getResourceList l retVal]
//! → 42
//! ```
//!
//! reproduces (experiment E12). The resource names the paper prints —
//! `destroyCallback ancestorSensitive x y width height borderWidth
//! sensitive screen depth colormap background (...)` — are all present.

use std::rc::Rc;

use wafe_xproto::framebuffer::DrawOp;
use wafe_xt::action::ActionTable;
use wafe_xt::resource::{ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

use crate::common::{draw_label_text, draw_shadow, label_preferred, simple_base};

/// Label's own resource list (11 entries on top of Core+Simple+ThreeD).
pub fn label_own_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    vec![
        ResourceSpec::new("label", "Label", String, ""),
        ResourceSpec::new("font", "Font", Font, "fixed"),
        ResourceSpec::new("fontSet", "FontSet", Font, "fixed"),
        ResourceSpec::new("foreground", "Foreground", Pixel, "black"),
        ResourceSpec::new("justify", "Justify", Justify, "center"),
        ResourceSpec::new("internalWidth", "Width", Dimension, "4"),
        ResourceSpec::new("internalHeight", "Height", Dimension, "2"),
        ResourceSpec::new("resize", "Resize", Boolean, "true"),
        ResourceSpec::new("bitmap", "Bitmap", Pixmap, ""),
        ResourceSpec::new("leftBitmap", "LeftBitmap", Pixmap, ""),
        ResourceSpec::new("encoding", "Encoding", Int, "0"),
    ]
}

/// The full Label resource list (42 entries).
pub fn label_resources() -> Vec<ResourceSpec> {
    let mut v = simple_base();
    v.extend(label_own_resources());
    v
}

/// Label class methods.
pub struct LabelOps;

impl WidgetOps for LabelOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let text = app.str_resource(w, "label");
        let (mut pw, ph) = label_preferred(app, w, &text);
        // Room for a left bitmap, if any.
        if let Some(ResourceValue::Pixmap(p)) = app.widget(w).resource("leftBitmap") {
            pw += p.width + 2;
        }
        (pw, ph)
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let mut ops = Vec::new();
        let mut left = 0i32;
        if let Some(ResourceValue::Pixmap(p)) = app.widget(w).resource("leftBitmap") {
            if p.width > 0 {
                ops.push(DrawOp::PutImage {
                    x: 2,
                    y: 2,
                    w: p.width,
                    h: p.height,
                    data: Rc::new(p.data.clone()),
                });
                left = p.width as i32 + 2;
            }
        }
        if let Some(ResourceValue::Pixmap(p)) = app.widget(w).resource("bitmap") {
            if p.width > 0 {
                ops.push(DrawOp::PutImage {
                    x: left + 2,
                    y: 2,
                    w: p.width,
                    h: p.height,
                    data: Rc::new(p.data.clone()),
                });
            }
        }
        let text = app.str_resource(w, "label");
        ops.extend(draw_label_text(app, w, &text, left));
        ops.extend(draw_shadow(app, w, false));
        ops
    }
}

/// Builds the Label class record.
pub fn label_class() -> WidgetClass {
    WidgetClass {
        name: "Label".into(),
        resources: label_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(LabelOps),
        is_shell: false,
        is_composite: false,
    }
}

/// Registers the Label class.
pub fn register(app: &mut XtApp) {
    app.register_class(label_class());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        register(&mut a);
        a
    }

    #[test]
    fn label_has_exactly_42_resources() {
        // The paper: "the number of resources available for the Label
        // widget class is printed, which is 42 using the X11R5 Xaw3d
        // libraries".
        assert_eq!(label_resources().len(), 42);
    }

    #[test]
    fn paper_listed_resource_names_present() {
        let names: Vec<&str> = label_resources().iter().map(|r| r.name).collect();
        for expected in [
            "destroyCallback",
            "ancestorSensitive",
            "x",
            "y",
            "width",
            "height",
            "borderWidth",
            "sensitive",
            "screen",
            "depth",
            "colormap",
            "background",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn get_resource_list_through_app() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let l = a
            .create_widget("l", "Label", Some(top), 0, &[], true)
            .unwrap();
        let list = a.get_resource_list(l);
        assert_eq!(list.len(), 42);
        assert_eq!(list[0], "destroyCallback");
    }

    #[test]
    fn preferred_size_follows_text() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let l = a
            .create_widget(
                "l",
                "Label",
                Some(top),
                0,
                &[("label".into(), "abc".into())],
                true,
            )
            .unwrap();
        a.realize(top);
        // 3 chars * 6 + 2*4 internal + 2*2 shadow = 30.
        assert!(a.dim_resource(l, "width") >= 30);
        assert!(a.dim_resource(l, "height") >= 13);
    }

    #[test]
    fn label_renders_text() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        a.create_widget(
            "l",
            "Label",
            Some(top),
            0,
            &[("label".into(), "Hi Man".into())],
            true,
        )
        .unwrap();
        a.realize(top);
        let snap = a.displays[0].snapshot_ascii(wafe_xproto::Rect::new(0, 0, 400, 100));
        assert!(snap.contains("Hi Man"), "snapshot:\n{snap}");
    }

    #[test]
    fn set_values_updates_label() {
        // The paper: sV label1 background "tomato" label "Hi Man".
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let l = a
            .create_widget(
                "label1",
                "Label",
                Some(top),
                0,
                &[
                    ("background".into(), "red".into()),
                    ("foreground".into(), "blue".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        a.set_resource(l, "background", "tomato").unwrap();
        a.set_resource(l, "label", "Hi Man").unwrap();
        assert_eq!(a.pixel_resource(l, "background"), 0xff6347);
        assert_eq!(a.str_resource(l, "label"), "Hi Man");
    }
}
