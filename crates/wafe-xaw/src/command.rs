//! The Command, Toggle and MenuButton widgets.
//!
//! Command is the paper's workhorse (`command quit topLevel callback
//! quit`); Toggle appears in the creation-command naming example; and
//! MenuButton carries the `PopupMenu()` action of the translation
//! example.

use std::collections::HashMap;
use std::rc::Rc;

use wafe_xproto::framebuffer::DrawOp;
use wafe_xt::action::ActionTable;
use wafe_xt::resource::{ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

use crate::common::{draw_label_text, draw_shadow};
use crate::label::{label_resources, LabelOps};

/// Command's resources: Label's 42 plus `callback` and
/// `highlightThickness`.
pub fn command_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = label_resources();
    v.push(ResourceSpec::new("callback", "Callback", Callback, ""));
    v.push(ResourceSpec::new(
        "highlightThickness",
        "Thickness",
        Dimension,
        "2",
    ));
    v
}

/// Command class methods: Label drawing plus pressed/highlight states.
pub struct CommandOps;

impl WidgetOps for CommandOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        LabelOps.preferred_size(app, w)
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let mut ops = Vec::new();
        let set = app.state(w, "set") == "1";
        if set {
            ops.extend(crate::common::invert_ops(app, w));
        }
        let text = app.str_resource(w, "label");
        if set {
            // Inverted: draw text in background colour.
            let font_id = app.font_resource(w, "font");
            let font = app.fonts_of(w).get(font_id).clone();
            let bg = app.pixel_resource(w, "background");
            let iw = app.dim_resource(w, "internalWidth").max(2);
            let ih = app.dim_resource(w, "internalHeight").max(2);
            ops.push(DrawOp::DrawText {
                x: iw as i32,
                y: ih as i32 + font.ascent as i32,
                text,
                pixel: bg,
                font: font_id,
            });
        } else {
            ops.extend(draw_label_text(app, w, &text, 0));
        }
        ops.extend(draw_shadow(app, w, set));
        if app.state(w, "highlighted") == "1" {
            let width = app.dim_resource(w, "width");
            let height = app.dim_resource(w, "height");
            let fg = app.pixel_resource(w, "foreground");
            ops.push(DrawOp::DrawRect {
                rect: wafe_xproto::Rect::new(0, 0, width, height),
                pixel: fg,
            });
        }
        ops
    }
}

fn command_actions() -> ActionTable {
    let mut t = ActionTable::new();
    t.add("highlight", |app, w, _, _| {
        app.set_state(w, "highlighted", "1");
        app.redisplay_widget(w);
    });
    t.add("reset", |app, w, _, _| {
        app.set_state(w, "highlighted", "0");
        app.set_state(w, "set", "0");
        app.redisplay_widget(w);
    });
    t.add("set", |app, w, _, _| {
        app.set_state(w, "set", "1");
        app.redisplay_widget(w);
    });
    t.add("unset", |app, w, _, _| {
        app.set_state(w, "set", "0");
        app.redisplay_widget(w);
    });
    t.add("notify", |app, w, _, _| {
        // Xaw fires the callback only while the button is set.
        if app.state(w, "set") == "1" {
            app.call_callbacks(w, "callback", HashMap::new());
        }
    });
    t
}

/// Builds the Command class.
pub fn command_class() -> WidgetClass {
    WidgetClass {
        name: "Command".into(),
        resources: command_resources(),
        constraint_resources: Vec::new(),
        actions: command_actions(),
        default_translations: TranslationTable::parse(
            "<EnterWindow>: highlight()\n\
             <LeaveWindow>: reset()\n\
             <Btn1Down>: set()\n\
             <Btn1Up>: notify() unset()",
        )
        .expect("static translations"),
        ops: Rc::new(CommandOps),
        is_shell: false,
        is_composite: false,
    }
}

/// Toggle's resources: Command's plus `state`, `radioGroup`, `radioData`.
pub fn toggle_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = command_resources();
    v.push(ResourceSpec::new("state", "State", Boolean, "false"));
    v.push(ResourceSpec::new("radioGroup", "Widget", Widget, ""));
    v.push(ResourceSpec::new("radioData", "RadioData", String, ""));
    v
}

/// Toggle class methods: Command drawing, sunken when `state` is true.
pub struct ToggleOps;

impl WidgetOps for ToggleOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        LabelOps.preferred_size(app, w)
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let set = app.bool_resource(w, "state");
        let mut ops = Vec::new();
        let text = app.str_resource(w, "label");
        ops.extend(draw_label_text(app, w, &text, 0));
        ops.extend(draw_shadow(app, w, set));
        ops
    }
}

fn toggle_actions() -> ActionTable {
    let mut t = ActionTable::new();
    t.add("toggle", |app, w, _, _| {
        let new = !app.bool_resource(w, "state");
        if new {
            // Radio behaviour: turn off the rest of the group.
            let group = match app.widget(w).resource("radioGroup") {
                Some(ResourceValue::Widget(g)) if !g.is_empty() => Some(g.clone()),
                _ => None,
            };
            if let Some(gname) = group {
                let members: Vec<WidgetId> = app
                    .widget_names()
                    .iter()
                    .filter_map(|n| app.lookup(n))
                    .filter(|&m| {
                        m != w
                            && matches!(
                                app.widget(m).resource("radioGroup"),
                                Some(ResourceValue::Widget(g)) if *g == gname
                            )
                    })
                    .collect();
                for m in members {
                    app.put_resource(m, "state", ResourceValue::Bool(false));
                    app.redisplay_widget(m);
                }
            }
        }
        app.put_resource(w, "state", ResourceValue::Bool(new));
        app.redisplay_widget(w);
    });
    t.add("notify", |app, w, _, _| {
        let mut data = HashMap::new();
        data.insert(
            's',
            if app.bool_resource(w, "state") {
                "1"
            } else {
                "0"
            }
            .to_string(),
        );
        app.call_callbacks(w, "callback", data);
    });
    t.add("highlight", |app, w, _, _| {
        app.set_state(w, "highlighted", "1");
    });
    t.add("reset", |app, w, _, _| {
        app.set_state(w, "highlighted", "0");
    });
    t.add("set", |app, w, _, _| {
        app.put_resource(w, "state", ResourceValue::Bool(true));
        app.redisplay_widget(w);
    });
    t.add("unset", |app, w, _, _| {
        app.put_resource(w, "state", ResourceValue::Bool(false));
        app.redisplay_widget(w);
    });
    t
}

/// Builds the Toggle class.
pub fn toggle_class() -> WidgetClass {
    WidgetClass {
        name: "Toggle".into(),
        resources: toggle_resources(),
        constraint_resources: Vec::new(),
        actions: toggle_actions(),
        default_translations: TranslationTable::parse(
            "<EnterWindow>: highlight()\n\
             <LeaveWindow>: reset()\n\
             <Btn1Down>: toggle()\n\
             <Btn1Up>: notify()",
        )
        .expect("static translations"),
        ops: Rc::new(ToggleOps),
        is_shell: false,
        is_composite: false,
    }
}

/// MenuButton's resources: Command's plus `menuName`.
pub fn menubutton_resources() -> Vec<ResourceSpec> {
    let mut v = command_resources();
    v.push(ResourceSpec::new(
        "menuName",
        "MenuName",
        ResType::String,
        "menu",
    ));
    v
}

fn menubutton_actions() -> ActionTable {
    let mut t = command_actions();
    t.add("PopupMenu", |app, w, _, _| {
        let menu_name = app.str_resource(w, "menuName");
        let menu = match app.lookup(&menu_name) {
            Some(m) => m,
            None => {
                app.warn(format!("MenuButton: no menu named \"{menu_name}\""));
                return;
            }
        };
        // Place the menu just below the button, then spring-load it.
        let di = app.widget(w).display_idx;
        if let Some(win) = app.widget(w).window {
            let abs = app.displays[di].abs_rect(win);
            app.put_resource(menu, "x", ResourceValue::Pos(abs.x));
            app.put_resource(menu, "y", ResourceValue::Pos(abs.y + abs.h as i32));
        }
        app.popup(menu, wafe_xproto::GrabKind::Exclusive);
    });
    t
}

/// Builds the MenuButton class.
pub fn menubutton_class() -> WidgetClass {
    WidgetClass {
        name: "MenuButton".into(),
        resources: menubutton_resources(),
        constraint_resources: Vec::new(),
        actions: menubutton_actions(),
        default_translations: TranslationTable::parse(
            "<EnterWindow>: highlight()\n\
             <LeaveWindow>: reset()\n\
             <Btn1Down>: reset() PopupMenu()",
        )
        .expect("static translations"),
        ops: Rc::new(CommandOps),
        is_shell: false,
        is_composite: false,
    }
}

/// Registers Command, Toggle and MenuButton.
pub fn register(app: &mut XtApp) {
    app.register_class(command_class());
    app.register_class(toggle_class());
    app.register_class(menubutton_class());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        crate::label::register(&mut a);
        register(&mut a);
        crate::menu::register(&mut a);
        a
    }

    fn click(a: &mut XtApp, w: WidgetId) {
        let di = a.widget(w).display_idx;
        let win = a.widget(w).window.unwrap();
        let abs = a.displays[di].abs_rect(win);
        a.displays[di].inject_click(abs.x + 3, abs.y + 3, 1);
        a.dispatch_pending();
    }

    #[test]
    fn command_click_fires_callback() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let b = a
            .create_widget(
                "hello",
                "Command",
                Some(top),
                0,
                &[
                    ("label".into(), "Press me".into()),
                    ("callback".into(), "echo hello world".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let _ = a.take_host_calls();
        click(&mut a, b);
        let calls = a.take_host_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].script, "echo hello world");
        assert_eq!(calls[0].widget_name, "hello");
    }

    #[test]
    fn command_set_unset_state() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let b = a
            .create_widget(
                "b",
                "Command",
                Some(top),
                0,
                &[("label".into(), "x".into())],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let di = 0;
        let win = a.widget(b).window.unwrap();
        let abs = a.displays[di].abs_rect(win);
        a.displays[di].inject_pointer_move(abs.x + 3, abs.y + 3);
        a.displays[di].inject_button(1, true);
        a.dispatch_pending();
        assert_eq!(a.state(b, "set"), "1");
        a.displays[di].inject_button(1, false);
        a.dispatch_pending();
        assert_eq!(a.state(b, "set"), "0");
    }

    #[test]
    fn leave_resets_pressed_button_without_notify() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let b = a
            .create_widget(
                "b",
                "Command",
                Some(top),
                0,
                &[
                    ("label".into(), "x".into()),
                    ("callback".into(), "echo fired".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let _ = a.take_host_calls();
        let win = a.widget(b).window.unwrap();
        let abs = a.displays[0].abs_rect(win);
        a.displays[0].inject_pointer_move(abs.x + 3, abs.y + 3);
        a.displays[0].inject_button(1, true);
        // Drag out of the button, then release: no callback.
        a.displays[0].inject_pointer_move(900, 700);
        a.displays[0].inject_button(1, false);
        a.dispatch_pending();
        assert!(a.take_host_calls().is_empty());
    }

    #[test]
    fn toggle_flips_state_and_notifies() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let t = a
            .create_widget(
                "t",
                "Toggle",
                Some(top),
                0,
                &[
                    ("label".into(), "opt".into()),
                    ("callback".into(), "echo state".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let _ = a.take_host_calls();
        assert!(!a.bool_resource(t, "state"));
        click(&mut a, t);
        assert!(a.bool_resource(t, "state"));
        let calls = a.take_host_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].data.get(&'s').map(String::as_str), Some("1"));
        click(&mut a, t);
        assert!(!a.bool_resource(t, "state"));
    }

    #[test]
    fn radio_group_exclusivity() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let form = top; // shell acts as the container here
        let t1 = a
            .create_widget(
                "t1",
                "Toggle",
                Some(form),
                0,
                &[("radioGroup".into(), "grp".into())],
                true,
            )
            .unwrap();
        let t2 = a
            .create_widget(
                "t2",
                "Toggle",
                Some(form),
                0,
                &[("radioGroup".into(), "grp".into())],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let ev = wafe_xproto::Event::new(
            wafe_xproto::EventKind::ButtonPress,
            wafe_xproto::WindowId(0),
        );
        a.run_action(t1, "toggle", &[], &ev);
        assert!(a.bool_resource(t1, "state"));
        a.run_action(t2, "toggle", &[], &ev);
        assert!(a.bool_resource(t2, "state"));
        assert!(!a.bool_resource(t1, "state"), "radio group must unset t1");
    }

    #[test]
    fn menubutton_popup_on_enter_paper_example() {
        // The paper: action mb override "<EnterWindow>: PopupMenu()".
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let mb = a
            .create_widget(
                "mb",
                "MenuButton",
                Some(top),
                0,
                &[
                    ("label".into(), "menu".into()),
                    ("menuName".into(), "themenu".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        let menu = a
            .create_widget("themenu", "SimpleMenu", None, 0, &[], true)
            .unwrap();
        a.create_widget(
            "entry1",
            "SmeBSB",
            Some(menu),
            0,
            &[("label".into(), "First".into())],
            true,
        )
        .unwrap();
        let table = wafe_xt::TranslationTable::parse("<EnterWindow>: PopupMenu()").unwrap();
        a.merge_translations(mb, table, wafe_xt::MergeMode::Override);
        a.dispatch_pending();
        // Move the pointer into the menu button: the menu pops up.
        let win = a.widget(mb).window.unwrap();
        let abs = a.displays[0].abs_rect(win);
        a.displays[0].inject_pointer_move(abs.x + 2, abs.y + 2);
        a.dispatch_pending();
        assert!(a.is_popped_up(menu));
        assert!(a.displays[0].grab_depth() > 0, "menu grabs exclusively");
    }

    #[test]
    fn menubutton_missing_menu_warns() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let mb = a
            .create_widget("mb", "MenuButton", Some(top), 0, &[], true)
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let ev = wafe_xproto::Event::new(
            wafe_xproto::EventKind::ButtonPress,
            wafe_xproto::WindowId(0),
        );
        a.run_action(mb, "PopupMenu", &[], &ev);
        assert!(a.take_warnings().iter().any(|w| w.contains("no menu")));
    }
}
