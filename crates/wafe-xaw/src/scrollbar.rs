//! The Scrollbar widget.

use std::collections::HashMap;
use std::rc::Rc;

use wafe_xproto::framebuffer::DrawOp;
use wafe_xproto::geometry::Rect;
use wafe_xt::action::ActionTable;
use wafe_xt::resource::{Orientation, ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

use crate::common::simple_base;

/// Scrollbar's resources. `topOfThumb` and `shown` are per-mille values
/// stored as Int (the C original uses floats; strings convert the same).
pub fn scrollbar_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = simple_base();
    v.extend([
        ResourceSpec::new("orientation", "Orientation", Orientation, "vertical"),
        ResourceSpec::new("foreground", "Foreground", Pixel, "black"),
        ResourceSpec::new("length", "Length", Dimension, "100"),
        ResourceSpec::new("thickness", "Thickness", Dimension, "14"),
        ResourceSpec::new("topOfThumb", "TopOfThumb", Int, "0"),
        ResourceSpec::new("shown", "Shown", Int, "1000"),
        ResourceSpec::new("minimumThumb", "MinimumThumb", Dimension, "7"),
        ResourceSpec::new("scrollProc", "Callback", Callback, ""),
        ResourceSpec::new("jumpProc", "Callback", Callback, ""),
    ]);
    v
}

fn vertical(app: &XtApp, w: WidgetId) -> bool {
    matches!(
        app.widget(w).resource("orientation"),
        Some(ResourceValue::Orientation(Orientation::Vertical))
    )
}

/// Scrollbar class methods.
pub struct ScrollbarOps;

impl WidgetOps for ScrollbarOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let length = app.dim_resource(w, "length").max(20);
        let thickness = app.dim_resource(w, "thickness").max(8);
        if vertical(app, w) {
            (thickness, length)
        } else {
            (length, thickness)
        }
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let width = app.dim_resource(w, "width");
        let height = app.dim_resource(w, "height");
        let fg = app.pixel_resource(w, "foreground");
        let top: i64 = match app.widget(w).resource("topOfThumb") {
            Some(ResourceValue::Int(v)) => *v,
            _ => 0,
        };
        let shown: i64 = match app.widget(w).resource("shown") {
            Some(ResourceValue::Int(v)) => *v,
            _ => 1000,
        };
        let len = if vertical(app, w) { height } else { width } as i64;
        let thumb_start = (top.clamp(0, 1000) * len / 1000) as i32;
        let thumb_len =
            ((shown.clamp(0, 1000) * len / 1000) as u32).max(app.dim_resource(w, "minimumThumb"));
        let rect = if vertical(app, w) {
            Rect::new(1, thumb_start, width.saturating_sub(2), thumb_len)
        } else {
            Rect::new(thumb_start, 1, thumb_len, height.saturating_sub(2))
        };
        vec![DrawOp::FillRect { rect, pixel: fg }]
    }
}

fn position_per_mille(app: &XtApp, w: WidgetId, e: &wafe_xproto::Event) -> i64 {
    let len = if vertical(app, w) {
        app.dim_resource(w, "height")
    } else {
        app.dim_resource(w, "width")
    }
    .max(1) as i64;
    let pos = if vertical(app, w) { e.y } else { e.x } as i64;
    (pos.clamp(0, len) * 1000) / len
}

fn scrollbar_actions() -> ActionTable {
    let mut t = ActionTable::new();
    t.add("StartScroll", |app, w, _, args| {
        app.set_state(w, "mode", args.first().cloned().unwrap_or_default());
    });
    t.add("NotifyScroll", |app, w, e, _| {
        // Incremental scroll: pixel delta in percent-code 'd'.
        let mut data = HashMap::new();
        let delta = if app.state(w, "mode") == "Backward" {
            -10
        } else {
            10
        };
        let _ = e;
        data.insert('d', delta.to_string());
        app.call_callbacks(w, "scrollProc", data);
    });
    t.add("MoveThumb", |app, w, e, _| {
        let pm = position_per_mille(app, w, e);
        app.put_resource(w, "topOfThumb", ResourceValue::Int(pm));
        app.redisplay_widget(w);
    });
    t.add("NotifyThumb", |app, w, e, _| {
        let pm = position_per_mille(app, w, e);
        let mut data = HashMap::new();
        data.insert('t', pm.to_string());
        app.call_callbacks(w, "jumpProc", data);
    });
    t.add("EndScroll", |app, w, _, _| {
        app.set_state(w, "mode", "");
    });
    t
}

/// `XawScrollbarSetThumb`: programs thumb position and size (per-mille).
pub fn scrollbar_set_thumb(app: &mut XtApp, w: WidgetId, top: i64, shown: i64) {
    app.put_resource(w, "topOfThumb", ResourceValue::Int(top.clamp(0, 1000)));
    app.put_resource(w, "shown", ResourceValue::Int(shown.clamp(0, 1000)));
    app.redisplay_widget(w);
}

/// Registers the Scrollbar class.
pub fn register(app: &mut XtApp) {
    app.register_class(WidgetClass {
        name: "Scrollbar".into(),
        resources: scrollbar_resources(),
        constraint_resources: Vec::new(),
        actions: scrollbar_actions(),
        default_translations: TranslationTable::parse(
            "<Btn1Down>: StartScroll(Forward)\n\
             <Btn3Down>: StartScroll(Backward)\n\
             <Btn2Down>: MoveThumb() NotifyThumb()\n\
             <Btn1Up>: NotifyScroll() EndScroll()\n\
             <Btn3Up>: NotifyScroll() EndScroll()\n\
             <Btn2Up>: EndScroll()",
        )
        .expect("static translations"),
        ops: Rc::new(ScrollbarOps),
        is_shell: false,
        is_composite: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        register(&mut a);
        a
    }

    fn make(a: &mut XtApp) -> WidgetId {
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let s = a
            .create_widget(
                "sb",
                "Scrollbar",
                Some(top),
                0,
                &[
                    ("length".into(), "200".into()),
                    ("jumpProc".into(), "echo jump".into()),
                    ("scrollProc".into(), "echo scroll".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let _ = a.take_host_calls();
        s
    }

    #[test]
    fn vertical_preferred_size() {
        let mut a = app();
        let s = make(&mut a);
        assert_eq!(a.dim_resource(s, "height"), 200);
        assert!(a.dim_resource(s, "width") < 20);
    }

    #[test]
    fn middle_click_jumps_thumb() {
        let mut a = app();
        let s = make(&mut a);
        let win = a.widget(s).window.unwrap();
        let abs = a.displays[0].abs_rect(win);
        // Click button 2 halfway down.
        a.displays[0].inject_pointer_move(abs.x + 3, abs.y + 100);
        a.displays[0].inject_button(2, true);
        a.dispatch_pending();
        let top = match a.widget(s).resource("topOfThumb") {
            Some(ResourceValue::Int(v)) => *v,
            _ => panic!(),
        };
        assert!((400..=600).contains(&top), "thumb at {top} per-mille");
        let calls = a.take_host_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].script, "echo jump");
        let t: i64 = calls[0].data[&'t'].parse().unwrap();
        assert!((400..=600).contains(&t));
    }

    #[test]
    fn scroll_click_notifies_direction() {
        let mut a = app();
        let s = make(&mut a);
        let win = a.widget(s).window.unwrap();
        let abs = a.displays[0].abs_rect(win);
        a.displays[0].inject_click(abs.x + 3, abs.y + 50, 1);
        a.dispatch_pending();
        let calls = a.take_host_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].script, "echo scroll");
        assert_eq!(calls[0].data.get(&'d').map(String::as_str), Some("10"));
        // Backward with button 3.
        a.displays[0].inject_click(abs.x + 3, abs.y + 50, 3);
        a.dispatch_pending();
        let calls = a.take_host_calls();
        assert_eq!(calls[0].data.get(&'d').map(String::as_str), Some("-10"));
    }

    #[test]
    fn set_thumb_clamps() {
        let mut a = app();
        let s = make(&mut a);
        scrollbar_set_thumb(&mut a, s, 5000, -10);
        match (
            a.widget(s).resource("topOfThumb"),
            a.widget(s).resource("shown"),
        ) {
            (Some(ResourceValue::Int(t)), Some(ResourceValue::Int(sh))) => {
                assert_eq!(*t, 1000);
                assert_eq!(*sh, 0);
            }
            _ => panic!(),
        }
    }
}
