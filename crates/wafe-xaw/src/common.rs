//! Shared resource-list builders and drawing helpers for the Athena
//! classes.

use wafe_xproto::framebuffer::DrawOp;
use wafe_xproto::geometry::Rect;
use wafe_xt::resource::{Justify, ResType, ResourceSpec, ResourceValue};
use wafe_xt::{WidgetId, XtApp};

/// The Simple class's resources (Xaw `Simple`, 6 entries).
pub fn simple_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    vec![
        ResourceSpec::new("cursor", "Cursor", Cursor, ""),
        ResourceSpec::new("cursorName", "Cursor", Cursor, ""),
        ResourceSpec::new("insensitiveBorder", "Insensitive", Pixmap, ""),
        ResourceSpec::new("pointerColor", "Foreground", Pixel, "black"),
        ResourceSpec::new("pointerColorBackground", "Background", Pixel, "white"),
        ResourceSpec::new("international", "International", Boolean, "false"),
    ]
}

/// The Xaw3d ThreeD class's resources (7 entries) — present because Wafe
/// links against Xaw3d ("can be used simply by relinking Wafe").
pub fn threed_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    vec![
        ResourceSpec::new("shadowWidth", "ShadowWidth", Dimension, "2"),
        ResourceSpec::new("topShadowPixel", "TopShadowPixel", Pixel, "white"),
        ResourceSpec::new("bottomShadowPixel", "BottomShadowPixel", Pixel, "gray40"),
        ResourceSpec::new("topShadowContrast", "TopShadowContrast", Int, "20"),
        ResourceSpec::new("bottomShadowContrast", "BottomShadowContrast", Int, "40"),
        ResourceSpec::new("userData", "UserData", String, ""),
        ResourceSpec::new("beNiceToColormap", "BeNiceToColormap", Boolean, "false"),
    ]
}

/// Core + Simple + ThreeD — the base stack under every Xaw3d simple
/// widget (31 entries).
pub fn simple_base() -> Vec<ResourceSpec> {
    let mut v = wafe_xt::resource::core_resources();
    v.extend(simple_resources());
    v.extend(threed_resources());
    v
}

/// Draws a label-style text into a widget-sized box, honouring `justify`,
/// `internalWidth`/`internalHeight`, `font` and `foreground`.
pub fn draw_label_text(app: &XtApp, w: WidgetId, text: &str, extra_left: i32) -> Vec<DrawOp> {
    let font_id = app.font_resource(w, "font");
    let font = app.fonts_of(w).get(font_id).clone();
    let width = app.dim_resource(w, "width");
    let iw = app.dim_resource(w, "internalWidth").max(2);
    let ih = app.dim_resource(w, "internalHeight").max(2);
    let fg = app.pixel_resource(w, "foreground");
    let justify = match app.widget(w).resource("justify") {
        Some(ResourceValue::Justify(j)) => *j,
        _ => Justify::Center,
    };
    let text_w = font.text_width(text);
    let x = match justify {
        Justify::Left => iw as i32 + extra_left,
        Justify::Center => ((width as i32 - text_w as i32) / 2).max(iw as i32) + extra_left,
        Justify::Right => (width as i32 - text_w as i32 - iw as i32).max(iw as i32),
    };
    let baseline = ih as i32 + font.ascent as i32;
    let mut ops = Vec::new();
    if !text.is_empty() {
        ops.push(DrawOp::DrawText {
            x,
            y: baseline,
            text: text.to_string(),
            pixel: fg,
            font: font_id,
        });
    }
    ops
}

/// Draws the Xaw3d shadow frame.
pub fn draw_shadow(app: &XtApp, w: WidgetId, sunken: bool) -> Vec<DrawOp> {
    let sw = app.dim_resource(w, "shadowWidth");
    if sw == 0 {
        return Vec::new();
    }
    let width = app.dim_resource(w, "width");
    let height = app.dim_resource(w, "height");
    let top = app.pixel_resource(w, "topShadowPixel");
    let bottom = app.pixel_resource(w, "bottomShadowPixel");
    let (t, b) = if sunken { (bottom, top) } else { (top, bottom) };
    let mut ops = Vec::new();
    for i in 0..sw as i32 {
        // Top and left edges.
        ops.push(DrawOp::DrawLine {
            x1: 0,
            y1: i,
            x2: width as i32 - 1 - i,
            y2: i,
            pixel: t,
        });
        ops.push(DrawOp::DrawLine {
            x1: i,
            y1: 0,
            x2: i,
            y2: height as i32 - 1 - i,
            pixel: t,
        });
        // Bottom and right edges.
        ops.push(DrawOp::DrawLine {
            x1: i,
            y1: height as i32 - 1 - i,
            x2: width as i32 - 1,
            y2: height as i32 - 1 - i,
            pixel: b,
        });
        ops.push(DrawOp::DrawLine {
            x1: width as i32 - 1 - i,
            y1: i,
            x2: width as i32 - 1 - i,
            y2: height as i32 - 1,
            pixel: b,
        });
    }
    ops
}

/// Preferred size of a text-bearing widget: text extent plus internal
/// margins plus shadow.
pub fn label_preferred(app: &XtApp, w: WidgetId, text: &str) -> (u32, u32) {
    let font = app.fonts_of(w).get(app.font_resource(w, "font")).clone();
    let iw = app.dim_resource(w, "internalWidth").max(2);
    let ih = app.dim_resource(w, "internalHeight").max(2);
    let sw = app.dim_resource(w, "shadowWidth");
    (
        font.text_width(text) + 2 * iw + 2 * sw,
        font.height() + 2 * ih + 2 * sw,
    )
}

/// A filled highlight rectangle covering the whole widget interior.
pub fn invert_ops(app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
    let width = app.dim_resource(w, "width");
    let height = app.dim_resource(w, "height");
    let fg = app.pixel_resource(w, "foreground");
    vec![DrawOp::FillRect {
        rect: Rect::new(0, 0, width, height),
        pixel: fg,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_stack_sizes() {
        assert_eq!(simple_resources().len(), 6);
        assert_eq!(threed_resources().len(), 7);
        assert_eq!(simple_base().len(), 31);
    }

    #[test]
    fn base_has_no_duplicates() {
        let base = simple_base();
        let mut names: Vec<&str> = base.iter().map(|r| r.name).collect();
        names.sort();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len);
    }
}
