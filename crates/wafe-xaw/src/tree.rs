//! TreeGraph — a graph-layout composite, the stand-in for the XmGraph
//! widget of the paper's Figure 2.
//!
//! Children carry a `parentNode` constraint naming another child; the
//! layout arranges nodes in layers left-to-right and the redisplay draws
//! the connecting edges, like HP's XmGraph arranged Wafe's design tool
//! views.

use std::collections::HashMap;
use std::rc::Rc;

use wafe_xproto::framebuffer::DrawOp;
use wafe_xt::action::ActionTable;
use wafe_xt::resource::{core_resources, ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

/// TreeGraph's resources.
pub fn treegraph_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = core_resources();
    v.extend([
        ResourceSpec::new("hSpace", "HSpace", Dimension, "30"),
        ResourceSpec::new("vSpace", "VSpace", Dimension, "10"),
        ResourceSpec::new("foreground", "Foreground", Pixel, "black"),
        ResourceSpec::new("orientation", "Orientation", Orientation, "horizontal"),
    ]);
    v
}

/// TreeGraph's constraint resources.
pub fn treegraph_constraints() -> Vec<ResourceSpec> {
    vec![ResourceSpec::new(
        "parentNode",
        "Widget",
        ResType::Widget,
        "",
    )]
}

fn node_parent(app: &XtApp, c: WidgetId) -> Option<WidgetId> {
    match app.constraint(c, "parentNode") {
        Some(ResourceValue::Widget(n)) if !n.is_empty() => app.lookup(n),
        _ => None,
    }
}

/// Computes each child's depth (root nodes are depth 0).
fn depths(app: &XtApp, w: WidgetId) -> HashMap<WidgetId, usize> {
    let children = &app.widget(w).children;
    let mut out = HashMap::new();
    for &c in children {
        let mut d = 0usize;
        let mut cur = c;
        // Bounded walk to guard against constraint cycles.
        for _ in 0..children.len() {
            match node_parent(app, cur) {
                Some(p) if p != cur => {
                    d += 1;
                    cur = p;
                }
                _ => break,
            }
        }
        out.insert(c, d);
    }
    out
}

/// TreeGraph class methods.
pub struct TreeGraphOps;

impl WidgetOps for TreeGraphOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let d = depths(app, w);
        let hs = app.dim_resource(w, "hSpace");
        let vs = app.dim_resource(w, "vSpace");
        let max_depth = d.values().copied().max().unwrap_or(0) as u32;
        let mut per_layer: HashMap<usize, u32> = HashMap::new();
        let mut layer_w = 60u32;
        for (&c, &depth) in &d {
            *per_layer.entry(depth).or_default() += app.dim_resource(c, "height") + vs;
            layer_w = layer_w.max(app.dim_resource(c, "width"));
        }
        let tall = per_layer.values().copied().max().unwrap_or(40) + vs;
        (
            ((max_depth + 1) * (layer_w + hs) + hs).max(60),
            tall.max(40),
        )
    }

    fn layout(&self, app: &mut XtApp, w: WidgetId) {
        let d = depths(app, w);
        let hs = app.dim_resource(w, "hSpace") as i32;
        let vs = app.dim_resource(w, "vSpace") as i32;
        // Column x per depth: max width of shallower layers.
        let max_depth = d.values().copied().max().unwrap_or(0);
        let mut layer_width: Vec<i32> = vec![0; max_depth + 1];
        for (&c, &depth) in &d {
            layer_width[depth] = layer_width[depth].max(app.dim_resource(c, "width") as i32);
        }
        let mut layer_x: Vec<i32> = Vec::with_capacity(max_depth + 1);
        let mut x = hs;
        for lw in &layer_width {
            layer_x.push(x);
            x += lw + hs;
        }
        // Stack nodes within each layer in creation order.
        let children = app.widget(w).children.clone();
        let mut layer_y: Vec<i32> = vec![vs; max_depth + 1];
        for c in children {
            let depth = d[&c];
            app.put_resource(c, "x", ResourceValue::Pos(layer_x[depth]));
            app.put_resource(c, "y", ResourceValue::Pos(layer_y[depth]));
            layer_y[depth] += app.dim_resource(c, "height") as i32 + vs;
        }
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        // Edges from each node's right edge to its children's left edges.
        let fg = app.pixel_resource(w, "foreground");
        let mut ops = Vec::new();
        for &c in &app.widget(w).children {
            if let Some(p) = node_parent(app, c) {
                let px = app.pos_resource(p, "x") + app.dim_resource(p, "width") as i32;
                let py = app.pos_resource(p, "y") + app.dim_resource(p, "height") as i32 / 2;
                let cx = app.pos_resource(c, "x");
                let cy = app.pos_resource(c, "y") + app.dim_resource(c, "height") as i32 / 2;
                ops.push(DrawOp::DrawLine {
                    x1: px,
                    y1: py,
                    x2: cx,
                    y2: cy,
                    pixel: fg,
                });
            }
        }
        ops
    }
}

/// Registers the TreeGraph class.
pub fn register(app: &mut XtApp) {
    app.register_class(WidgetClass {
        name: "TreeGraph".into(),
        resources: treegraph_resources(),
        constraint_resources: treegraph_constraints(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(TreeGraphOps),
        is_shell: false,
        is_composite: true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        crate::label::register(&mut a);
        register(&mut a);
        a
    }

    #[test]
    fn tree_layers_left_to_right() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let g = a
            .create_widget("g", "TreeGraph", Some(top), 0, &[], true)
            .unwrap();
        let root = a
            .create_widget(
                "root",
                "Label",
                Some(g),
                0,
                &[("label".into(), "root".into())],
                true,
            )
            .unwrap();
        let kid1 = a
            .create_widget(
                "kid1",
                "Label",
                Some(g),
                0,
                &[
                    ("label".into(), "kid1".into()),
                    ("parentNode".into(), "root".into()),
                ],
                true,
            )
            .unwrap();
        let kid2 = a
            .create_widget(
                "kid2",
                "Label",
                Some(g),
                0,
                &[
                    ("label".into(), "kid2".into()),
                    ("parentNode".into(), "root".into()),
                ],
                true,
            )
            .unwrap();
        let grand = a
            .create_widget(
                "grand",
                "Label",
                Some(g),
                0,
                &[
                    ("label".into(), "grand".into()),
                    ("parentNode".into(), "kid1".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        assert!(a.pos_resource(kid1, "x") > a.pos_resource(root, "x"));
        assert!(a.pos_resource(grand, "x") > a.pos_resource(kid1, "x"));
        // Siblings share a column, stacked.
        assert_eq!(a.pos_resource(kid1, "x"), a.pos_resource(kid2, "x"));
        assert!(a.pos_resource(kid2, "y") > a.pos_resource(kid1, "y"));
        // Edges drawn: 3 (root->kid1, root->kid2, kid1->grand).
        let ops = TreeGraphOps.redisplay(&a, g);
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn constraint_cycle_does_not_hang() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let g = a
            .create_widget("g", "TreeGraph", Some(top), 0, &[], true)
            .unwrap();
        a.create_widget(
            "a",
            "Label",
            Some(g),
            0,
            &[("parentNode".into(), "b".into())],
            true,
        )
        .unwrap();
        a.create_widget(
            "b",
            "Label",
            Some(g),
            0,
            &[("parentNode".into(), "a".into())],
            true,
        )
        .unwrap();
        // Must terminate.
        a.realize(top);
    }
}
