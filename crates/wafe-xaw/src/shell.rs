//! Shell widget classes.
//!
//! Shells are the windows the window manager sees: the automatically
//! created `topLevel` ApplicationShell, additional application shells on
//! other displays, transient dialog shells and override-redirect menu
//! shells.

use std::rc::Rc;

use wafe_xt::action::ActionTable;
use wafe_xt::resource::{core_resources, ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

/// Shell class methods: size to the managed child, lay the child out to
/// fill the shell.
pub struct ShellOps;

impl WidgetOps for ShellOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let explicit_w = app.dim_resource(w, "width");
        let explicit_h = app.dim_resource(w, "height");
        if explicit_w > 0 && explicit_h > 0 {
            return (explicit_w, explicit_h);
        }
        // Size to the first managed child.
        let child = app
            .widget(w)
            .children
            .iter()
            .copied()
            .find(|c| app.widget(*c).managed);
        match child {
            Some(c) => {
                let bw = app.dim_resource(c, "borderWidth");
                (
                    app.dim_resource(c, "width") + 2 * bw,
                    app.dim_resource(c, "height") + 2 * bw,
                )
            }
            None => (explicit_w.max(1), explicit_h.max(1)),
        }
    }

    fn layout(&self, app: &mut XtApp, w: WidgetId) {
        let width = app.dim_resource(w, "width");
        let height = app.dim_resource(w, "height");
        let children = app.widget(w).children.clone();
        for c in children {
            if !app.widget(c).managed {
                continue;
            }
            let bw = app.dim_resource(c, "borderWidth");
            app.put_resource(c, "x", ResourceValue::Pos(0));
            app.put_resource(c, "y", ResourceValue::Pos(0));
            app.put_resource(
                c,
                "width",
                ResourceValue::Dim(width.saturating_sub(2 * bw).max(1)),
            );
            app.put_resource(
                c,
                "height",
                ResourceValue::Dim(height.saturating_sub(2 * bw).max(1)),
            );
        }
    }
}

fn shell_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = core_resources();
    v.extend([
        ResourceSpec::new("title", "Title", String, ""),
        ResourceSpec::new("iconName", "IconName", String, ""),
        ResourceSpec::new("allowShellResize", "AllowShellResize", Boolean, "true"),
        ResourceSpec::new("geometry", "Geometry", String, ""),
        // InitCom: the paper's startup-command resource for frontend mode.
        ResourceSpec::new("initCom", "InitCom", String, ""),
    ]);
    v
}

fn make_shell(name: &str) -> WidgetClass {
    WidgetClass {
        name: name.to_string(),
        resources: shell_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(ShellOps),
        is_shell: true,
        is_composite: true,
    }
}

/// Registers the shell classes.
pub fn register(app: &mut XtApp) {
    app.register_class(make_shell("TopLevelShell"));
    app.register_class(make_shell("ApplicationShell"));
    app.register_class(make_shell("TransientShell"));
    app.register_class(make_shell("OverrideShell"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_sizes_to_child() {
        let mut app = XtApp::new();
        register(&mut app);
        crate::label::register(&mut app);
        let top = app
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        app.create_widget(
            "l",
            "Label",
            Some(top),
            0,
            &[("label".into(), "hello world".into())],
            true,
        )
        .unwrap();
        app.realize(top);
        // 11 chars * 6px + margins; the shell wraps the child.
        let w = app.dim_resource(top, "width");
        assert!(w >= 66, "shell width {w}");
        let l = app.lookup("l").unwrap();
        assert_eq!(app.pos_resource(l, "x"), 0);
        assert_eq!(
            app.dim_resource(l, "width") + 2 * app.dim_resource(l, "borderWidth"),
            w
        );
    }

    #[test]
    fn explicit_shell_size_wins() {
        let mut app = XtApp::new();
        register(&mut app);
        let top = app
            .create_widget(
                "topLevel",
                "TopLevelShell",
                None,
                0,
                &[
                    ("width".into(), "300".into()),
                    ("height".into(), "200".into()),
                ],
                true,
            )
            .unwrap();
        app.realize(top);
        assert_eq!(app.dim_resource(top, "width"), 300);
        assert_eq!(app.dim_resource(top, "height"), 200);
    }

    #[test]
    fn shell_has_init_com_resource() {
        let mut app = XtApp::new();
        register(&mut app);
        let top = app
            .create_widget("topLevel", "ApplicationShell", None, 0, &[], true)
            .unwrap();
        assert_eq!(app.get_resource_string(top, "initCom").unwrap(), "");
        app.set_resource(top, "initCom", "[myapp], widget_tree, read_loop.")
            .unwrap();
        assert!(app
            .get_resource_string(top, "initCom")
            .unwrap()
            .contains("myapp"));
    }
}
