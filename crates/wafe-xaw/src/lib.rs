//! The Athena widget set (Xaw/Xaw3d), implemented on `wafe-xt`.
//!
//! The paper's Wafe is built on "the standard X11R5 Xt Intrinsics and the
//! Athena widget set", relinked against Kaleb Keithley's three
//! dimensional Athena library (Xaw3d) — which is why its example prints
//! **42** resources for the Label widget class. This crate implements the
//! classes the paper's examples and demo applications exercise:
//!
//! | class        | paper usage                                            |
//! |--------------|--------------------------------------------------------|
//! | Label        | `label l topLevel`, resource-count example (42)        |
//! | Command      | `command quit topLevel callback quit`                  |
//! | Toggle       | "toggle Name Father" creation-command example          |
//! | MenuButton   | `<EnterWindow>: PopupMenu()` example                   |
//! | SimpleMenu / SmeBSB | the menus PopupMenu pops up                     |
//! | Form         | the prime-factors frontend (`fromVert`, `fromHoriz`)   |
//! | Box, Paned, Viewport | container classes of the demo apps            |
//! | List         | the `%i`/`%s` callback percent-code table              |
//! | AsciiText    | `asciiText input top editType edit`, mass transfer     |
//! | Scrollbar    | standard scrolling                                     |
//! | Dialog       | popup dialogs                                          |
//! | StripChart   | `xnetstats`/`xvmstats`-style monitors                  |
//! | BarGraph     | the Plotter widget set the distribution bundles        |
//! | TreeGraph    | stand-in for the XmGraph layout widget of Figure 2     |
//! | shells       | TopLevelShell, ApplicationShell, TransientShell, OverrideShell |
//!
//! [`register_all`] installs every class into an [`XtApp`].

pub mod chart;
pub mod command;
pub mod common;
pub mod dialog;
pub mod form;
pub mod label;
pub mod list;
pub mod menu;
pub mod paned;
pub mod scrollbar;
pub mod shell;
pub mod text;
pub mod tree;

use wafe_xt::XtApp;

/// Registers the whole Athena widget set (and shells) into an
/// application context.
pub fn register_all(app: &mut XtApp) {
    shell::register(app);
    label::register(app);
    command::register(app);
    form::register(app);
    paned::register(app);
    list::register(app);
    text::register(app);
    menu::register(app);
    scrollbar::register(app);
    dialog::register(app);
    chart::register(app);
    tree::register(app);
}

/// The class names this crate registers, sorted — the inventory used by
/// the architecture experiment (E4).
pub fn class_names() -> Vec<&'static str> {
    let mut v = vec![
        "ApplicationShell",
        "AsciiText",
        "BarGraph",
        "Box",
        "Command",
        "Dialog",
        "Form",
        "Grip",
        "Label",
        "LineGraph",
        "List",
        "MenuButton",
        "OverrideShell",
        "Paned",
        "Scrollbar",
        "SimpleMenu",
        "SmeBSB",
        "SmeLine",
        "StripChart",
        "Toggle",
        "TopLevelShell",
        "TransientShell",
        "TreeGraph",
        "Viewport",
    ];
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_all_covers_inventory() {
        let mut app = XtApp::new();
        register_all(&mut app);
        for name in class_names() {
            assert!(app.class(name).is_some(), "class {name} not registered");
        }
        assert_eq!(app.class_names().len(), class_names().len());
    }
}
