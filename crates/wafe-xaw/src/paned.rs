//! Paned, Grip and Viewport container widgets.

use std::rc::Rc;

use wafe_xt::action::ActionTable;
use wafe_xt::resource::{core_resources, ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

/// Paned's resources.
pub fn paned_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = core_resources();
    v.push(ResourceSpec::new(
        "internalBorderWidth",
        "BorderWidth",
        Dimension,
        "1",
    ));
    v.push(ResourceSpec::new(
        "orientation",
        "Orientation",
        Orientation,
        "vertical",
    ));
    v.push(ResourceSpec::new(
        "gripIndent",
        "GripIndent",
        Position,
        "10",
    ));
    v
}

/// Paned constraint resources on children.
pub fn paned_constraints() -> Vec<ResourceSpec> {
    use ResType::*;
    vec![
        ResourceSpec::new("min", "Min", Dimension, "1"),
        ResourceSpec::new("max", "Max", Dimension, "100000"),
        ResourceSpec::new("showGrip", "ShowGrip", Boolean, "true"),
        ResourceSpec::new("skipAdjust", "Boolean", Boolean, "false"),
        ResourceSpec::new("preferredPaneSize", "PreferredPaneSize", Dimension, "0"),
    ]
}

/// Paned class methods: children stacked, separated by the internal
/// border, each full width.
pub struct PanedOps;

impl WidgetOps for PanedOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let ib = app.dim_resource(w, "internalBorderWidth");
        let mut width = 0u32;
        let mut height = 0u32;
        for c in &app.widget(w).children {
            if !app.widget(*c).managed {
                continue;
            }
            let bw = app.dim_resource(*c, "borderWidth");
            width = width.max(app.dim_resource(*c, "width") + 2 * bw);
            height += app.dim_resource(*c, "height") + 2 * bw + ib;
        }
        (width.max(1), height.max(1))
    }

    fn layout(&self, app: &mut XtApp, w: WidgetId) {
        let ib = app.dim_resource(w, "internalBorderWidth") as i32;
        let width = app.dim_resource(w, "width");
        let children = app.widget(w).children.clone();
        let mut y = 0i32;
        for c in children {
            if !app.widget(c).managed {
                continue;
            }
            let bw = app.dim_resource(c, "borderWidth");
            app.put_resource(c, "x", ResourceValue::Pos(0));
            app.put_resource(c, "y", ResourceValue::Pos(y));
            app.put_resource(
                c,
                "width",
                ResourceValue::Dim(width.saturating_sub(2 * bw).max(1)),
            );
            y += app.dim_resource(c, "height") as i32 + 2 * bw as i32 + ib;
        }
    }
}

/// Grip — the little handle between panes (leaf, draggable in real Xaw).
pub fn grip_class() -> WidgetClass {
    let mut resources = core_resources();
    resources.push(ResourceSpec::new(
        "callback",
        "Callback",
        ResType::Callback,
        "",
    ));
    let mut actions = ActionTable::new();
    actions.add("GripAction", |app, w, _, args| {
        let mut data = std::collections::HashMap::new();
        data.insert('a', args.join(" "));
        app.call_callbacks(w, "callback", data);
    });
    WidgetClass {
        name: "Grip".into(),
        resources,
        constraint_resources: Vec::new(),
        actions,
        default_translations: TranslationTable::parse("<Btn1Down>: GripAction(Start)").unwrap(),
        ops: Rc::new(wafe_xt::widget::CoreOps),
        is_shell: false,
        is_composite: false,
    }
}

/// Viewport's resources.
pub fn viewport_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = core_resources();
    v.push(ResourceSpec::new("allowHoriz", "Boolean", Boolean, "false"));
    v.push(ResourceSpec::new("allowVert", "Boolean", Boolean, "false"));
    v.push(ResourceSpec::new("forceBars", "Boolean", Boolean, "false"));
    v.push(ResourceSpec::new("useBottom", "Boolean", Boolean, "false"));
    v
}

/// Viewport: clips a single child; scroll offset in instance state.
pub struct ViewportOps;

impl WidgetOps for ViewportOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let ew = app.dim_resource(w, "width");
        let eh = app.dim_resource(w, "height");
        if ew > 0 && eh > 0 {
            return (ew, eh);
        }
        match app.widget(w).children.first() {
            Some(&c) => (
                app.dim_resource(c, "width").clamp(1, 300),
                app.dim_resource(c, "height").clamp(1, 200),
            ),
            None => (100, 100),
        }
    }

    fn layout(&self, app: &mut XtApp, w: WidgetId) {
        let yoff: i32 = app.state(w, "yoff").parse().unwrap_or(0);
        let xoff: i32 = app.state(w, "xoff").parse().unwrap_or(0);
        let children = app.widget(w).children.clone();
        if let Some(&c) = children.first() {
            app.put_resource(c, "x", ResourceValue::Pos(-xoff));
            app.put_resource(c, "y", ResourceValue::Pos(-yoff));
        }
    }
}

/// Scrolls a viewport to the given offsets (used by scrollbar callbacks
/// and the directory-browser demo).
pub fn viewport_scroll(app: &mut XtApp, viewport: WidgetId, xoff: i32, yoff: i32) {
    app.set_state(viewport, "xoff", xoff.to_string());
    app.set_state(viewport, "yoff", yoff.to_string());
    let root = app.root_of(viewport);
    if app.is_realized(root) {
        app.do_layout(root);
        app.sync_geometry(root);
    }
}

/// Registers Paned, Grip and Viewport.
pub fn register(app: &mut XtApp) {
    app.register_class(WidgetClass {
        name: "Paned".into(),
        resources: paned_resources(),
        constraint_resources: paned_constraints(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(PanedOps),
        is_shell: false,
        is_composite: true,
    });
    app.register_class(grip_class());
    app.register_class(WidgetClass {
        name: "Viewport".into(),
        resources: viewport_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(ViewportOps),
        is_shell: false,
        is_composite: true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        crate::shell::register(&mut a);
        crate::label::register(&mut a);
        register(&mut a);
        a
    }

    #[test]
    fn paned_stacks_full_width() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let p = a
            .create_widget("p", "Paned", Some(top), 0, &[], true)
            .unwrap();
        let one = a
            .create_widget(
                "one",
                "Label",
                Some(p),
                0,
                &[
                    ("width".into(), "120".into()),
                    ("height".into(), "30".into()),
                ],
                true,
            )
            .unwrap();
        let two = a
            .create_widget(
                "two",
                "Label",
                Some(p),
                0,
                &[
                    ("width".into(), "80".into()),
                    ("height".into(), "30".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        assert_eq!(a.pos_resource(one, "y"), 0);
        assert!(a.pos_resource(two, "y") >= 30);
        // Both get the pane's full width.
        assert_eq!(a.dim_resource(one, "width"), a.dim_resource(two, "width"));
    }

    #[test]
    fn viewport_scrolls_child() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let vp = a
            .create_widget(
                "vp",
                "Viewport",
                Some(top),
                0,
                &[
                    ("width".into(), "100".into()),
                    ("height".into(), "50".into()),
                ],
                true,
            )
            .unwrap();
        let big = a
            .create_widget(
                "big",
                "Label",
                Some(vp),
                0,
                &[
                    ("width".into(), "100".into()),
                    ("height".into(), "500".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        assert_eq!(a.pos_resource(big, "y"), 0);
        viewport_scroll(&mut a, vp, 0, 120);
        assert_eq!(a.pos_resource(big, "y"), -120);
    }

    #[test]
    fn grip_action_fires_callback() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "TopLevelShell", None, 0, &[], true)
            .unwrap();
        let g = a
            .create_widget(
                "g",
                "Grip",
                Some(top),
                0,
                &[
                    ("callback".into(), "echo grip".into()),
                    ("width".into(), "10".into()),
                    ("height".into(), "10".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let _ = a.take_host_calls();
        let win = a.widget(g).window.unwrap();
        let abs = a.displays[0].abs_rect(win);
        a.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
        a.dispatch_pending();
        let calls = a.take_host_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].data.get(&'a').map(String::as_str), Some("Start"));
    }
}
