//! The XmString compound-string converter.
//!
//! "A compound string is an extended string format, which additionally
//! contains font information and the string's writing direction." Wafe's
//! converter uses `&` as its layout escape (where TeX uses `\`):
//! `&tag` switches to the font-list entry tagged `tag`; `&rl` switches
//! the writing direction to right-to-left. The paper's Figure 3 script:
//!
//! ```text
//! mLabel l topLevel
//!     fontList "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft"
//!     labelString "I'm&bft bold&ft and&rl strange"
//! ```
//!
//! renders "I'm" in the medium face, " bold" in the bold face, " and" in
//! medium again and " strange" reversed.

use wafe_xproto::font::{FontDb, FontId};
use wafe_xt::resource::CompoundSegment;

/// Parses a `fontList` value: comma-separated `pattern=tag` entries.
///
/// A pattern may itself contain `&` (the lucida foundry is `b&h`), so the
/// split happens on the *last* `=` of each comma-separated chunk. Entries
/// whose pattern does not resolve are skipped.
pub fn parse_font_list(fonts: &FontDb, spec: &str) -> Vec<(String, FontId)> {
    let mut out = Vec::new();
    for chunk in spec.split(',') {
        let chunk = chunk.trim();
        if chunk.is_empty() {
            continue;
        }
        let (pattern, tag) = match chunk.rfind('=') {
            Some(eq) => (&chunk[..eq], chunk[eq + 1..].trim()),
            None => (chunk, ""),
        };
        if let Some(id) = fonts.resolve(pattern.trim()) {
            out.push((tag.to_string(), id));
        }
    }
    out
}

/// Parses Wafe's `&`-code compound-string syntax into segments.
///
/// `&name` (letters/digits) switches the font tag; the special name `rl`
/// switches writing direction to right-to-left (and `lr` back). `&&`
/// yields a literal `&`.
pub fn parse_xmstring(s: &str) -> Vec<CompoundSegment> {
    let chars: Vec<char> = s.chars().collect();
    let mut segs: Vec<CompoundSegment> = Vec::new();
    let mut text = String::new();
    let mut tag = String::new();
    let mut rtl = false;
    let mut i = 0usize;
    let flush = |text: &mut String, tag: &str, rtl: bool, segs: &mut Vec<CompoundSegment>| {
        if !text.is_empty() {
            segs.push(CompoundSegment {
                text: std::mem::take(text),
                font_tag: tag.to_string(),
                right_to_left: rtl,
            });
        }
    };
    while i < chars.len() {
        if chars[i] == '&' {
            if i + 1 < chars.len() && chars[i + 1] == '&' {
                text.push('&');
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let name: String = chars[i + 1..j].iter().collect();
            if name.is_empty() {
                text.push('&');
                i += 1;
                continue;
            }
            flush(&mut text, &tag, rtl, &mut segs);
            match name.as_str() {
                "rl" => rtl = true,
                "lr" => rtl = false,
                other => tag = other.to_string(),
            }
            i = j;
        } else {
            text.push(chars[i]);
            i += 1;
        }
    }
    flush(&mut text, &tag, rtl, &mut segs);
    segs
}

/// Renders segments to the *visual* string: right-to-left segments come
/// out reversed. Used by tests and the ASCII figure reproduction.
pub fn render_xmstring(segs: &[CompoundSegment]) -> String {
    segs.iter()
        .map(|s| {
            if s.right_to_left {
                s.text.chars().rev().collect::<String>()
            } else {
                s.text.clone()
            }
        })
        .collect()
}

/// Resolves a segment's font from a parsed font list (first entry is the
/// default when the tag is unknown or empty).
pub fn segment_font(
    font_list: &[(String, FontId)],
    seg: &CompoundSegment,
    fallback: FontId,
) -> FontId {
    if seg.font_tag.is_empty() {
        return font_list.first().map(|(_, f)| *f).unwrap_or(fallback);
    }
    font_list
        .iter()
        .find(|(t, _)| *t == seg.font_tag)
        .map(|(_, f)| *f)
        .or_else(|| font_list.first().map(|(_, f)| *f))
        .unwrap_or(fallback)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure3_string() {
        let segs = parse_xmstring("I'm&bft bold&ft and&rl strange");
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].text, "I'm");
        assert_eq!(segs[0].font_tag, "");
        assert!(!segs[0].right_to_left);
        assert_eq!(segs[1].text, " bold");
        assert_eq!(segs[1].font_tag, "bft");
        assert_eq!(segs[2].text, " and");
        assert_eq!(segs[2].font_tag, "ft");
        assert_eq!(segs[3].text, " strange");
        assert!(segs[3].right_to_left);
        // " strange" reversed is "egnarts " — the leading space travels
        // to the end, just as a right-to-left renderer would place it.
        assert_eq!(render_xmstring(&segs), "I'm bold andegnarts ");
    }

    #[test]
    fn paper_figure3_font_list() {
        let fonts = FontDb::new();
        let fl = parse_font_list(
            &fonts,
            "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft",
        );
        assert_eq!(fl.len(), 2);
        assert_eq!(fl[0].0, "ft");
        assert_eq!(fl[1].0, "bft");
        assert_ne!(fl[0].1, fl[1].1, "medium and bold resolve differently");
    }

    #[test]
    fn segment_font_resolution() {
        let fonts = FontDb::new();
        let fl = parse_font_list(&fonts, "fixed=ft,*helvetica-bold*=b");
        let fallback = fonts.default_font();
        let seg = |tag: &str| CompoundSegment {
            text: "x".into(),
            font_tag: tag.into(),
            right_to_left: false,
        };
        assert_eq!(segment_font(&fl, &seg("b"), fallback), fl[1].1);
        assert_eq!(segment_font(&fl, &seg(""), fallback), fl[0].1);
        assert_eq!(segment_font(&fl, &seg("zz"), fallback), fl[0].1);
        assert_eq!(segment_font(&[], &seg("zz"), fallback), fallback);
    }

    #[test]
    fn literal_ampersand_and_edge_cases() {
        let segs = parse_xmstring("a&&b");
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].text, "a&b");
        // Trailing bare '&'.
        let segs = parse_xmstring("x& ");
        assert_eq!(segs[0].text, "x& ");
        // Empty string.
        assert!(parse_xmstring("").is_empty());
        // Direction toggles back with &lr.
        let segs = parse_xmstring("&rl abc&lr def");
        assert!(segs[0].right_to_left);
        assert!(!segs[1].right_to_left);
        assert_eq!(render_xmstring(&segs), "cba  def");
    }

    #[test]
    fn unknown_font_patterns_skipped() {
        let fonts = FontDb::new();
        let fl = parse_font_list(&fonts, "*nosuchfont*=a,fixed=b");
        assert_eq!(fl.len(), 1);
        assert_eq!(fl[0].0, "b");
    }
}
