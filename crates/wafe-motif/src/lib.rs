//! The OSF/Motif widget subset of Wafe ("mofe").
//!
//! The paper notes "a version supporting the commercial OSF/Motif widget
//! set is under development" and demonstrates three pieces of it, all of
//! which are implemented here:
//!
//! * the **XmString converter** with Wafe's `&`-code compound-string
//!   syntax ("similar to TeX's text formatting commands") and the
//!   `fontList` tag syntax `pattern=tag,pattern=tag` — Figure 3,
//! * the **naming convention** `Xm*` → `m*` (`XmCascadeButtonHighlight`
//!   → `mCascadeButtonHighlight`), exercised by the spec layer, and
//! * the m-widgets of the examples: `XmLabel`, `XmPushButton` (with
//!   `armCallback`/`activateCallback`), `XmCascadeButton` and
//!   `XmCommand` (with `XmCommandAppendValue`).
//!
//! Like the original, the Motif classes register alongside the Athena
//! classes in the same Intrinsics; the original could not "mix Athena and
//! OSF/Motif widgets and converters freely" in one binary — the Wafe
//! session layer enforces the same split by flavour.

pub mod widgets;
pub mod xmstring;

pub use xmstring::{parse_font_list, parse_xmstring, render_xmstring};

use wafe_xt::XtApp;

/// Registers the Motif widget subset.
pub fn register_all(app: &mut XtApp) {
    widgets::register(app);
}

/// The Motif class names provided, sorted.
pub fn class_names() -> Vec<&'static str> {
    vec!["XmCascadeButton", "XmCommand", "XmLabel", "XmPushButton"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_motif_classes() {
        let mut app = XtApp::new();
        register_all(&mut app);
        for c in class_names() {
            assert!(app.class(c).is_some(), "missing {c}");
        }
    }
}
