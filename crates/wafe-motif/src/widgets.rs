//! The Motif widget classes: XmLabel, XmPushButton, XmCascadeButton,
//! XmCommand.

use std::collections::HashMap;
use std::rc::Rc;

use wafe_xproto::framebuffer::DrawOp;
use wafe_xt::action::ActionTable;
use wafe_xt::resource::{core_resources, ResType, ResourceSpec, ResourceValue};
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::{WidgetClass, WidgetId, WidgetOps};
use wafe_xt::XtApp;

use crate::xmstring::{parse_font_list, parse_xmstring, segment_font};

/// Base resources of Motif primitives.
fn primitive_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = core_resources();
    v.extend([
        ResourceSpec::new("foreground", "Foreground", Pixel, "black"),
        ResourceSpec::new("shadowThickness", "ShadowThickness", Dimension, "2"),
        ResourceSpec::new("highlightThickness", "HighlightThickness", Dimension, "2"),
        ResourceSpec::new("traversalOn", "TraversalOn", Boolean, "true"),
    ]);
    v
}

/// XmLabel's resources.
pub fn label_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = primitive_resources();
    v.extend([
        ResourceSpec::new("labelString", "XmString", Compound, ""),
        ResourceSpec::new("fontList", "FontList", String, "fixed"),
        ResourceSpec::new("alignment", "Alignment", String, "center"),
        ResourceSpec::new("marginWidth", "MarginWidth", Dimension, "2"),
        ResourceSpec::new("marginHeight", "MarginHeight", Dimension, "2"),
        ResourceSpec::new("stringDirection", "StringDirection", String, "l_to_r"),
    ]);
    v
}

fn segments(app: &XtApp, w: WidgetId) -> Vec<wafe_xt::resource::CompoundSegment> {
    match app.widget(w).resource("labelString") {
        Some(ResourceValue::Compound(segs)) => segs.clone(),
        Some(ResourceValue::Str(s)) => parse_xmstring(s),
        _ => Vec::new(),
    }
}

/// Draws a compound string with per-segment fonts and direction.
pub fn draw_compound(app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
    let fonts = app.fonts_of(w);
    let fallback = fonts.default_font();
    let fl = parse_font_list(fonts, &app.str_resource(w, "fontList"));
    let fg = app.pixel_resource(w, "foreground");
    let mw = app.dim_resource(w, "marginWidth") as i32;
    let mh = app.dim_resource(w, "marginHeight") as i32;
    let mut ops = Vec::new();
    let mut x = mw;
    for seg in segments(app, w) {
        let fid = segment_font(&fl, &seg, fallback);
        let f = fonts.get(fid).clone();
        let text = if seg.right_to_left {
            seg.text.chars().rev().collect::<String>()
        } else {
            seg.text.clone()
        };
        let width = f.text_width(&text) as i32;
        ops.push(DrawOp::DrawText {
            x,
            y: mh + f.ascent as i32,
            text,
            pixel: fg,
            font: fid,
        });
        x += width;
    }
    ops
}

fn compound_size(app: &XtApp, w: WidgetId) -> (u32, u32) {
    let fonts = app.fonts_of(w);
    let fallback = fonts.default_font();
    let fl = parse_font_list(fonts, &app.str_resource(w, "fontList"));
    let mw = app.dim_resource(w, "marginWidth");
    let mh = app.dim_resource(w, "marginHeight");
    let st = app.dim_resource(w, "shadowThickness");
    let mut width = 0u32;
    let mut height = 13u32;
    for seg in segments(app, w) {
        let f = fonts.get(segment_font(&fl, &seg, fallback)).clone();
        width += f.text_width(&seg.text);
        height = height.max(f.height());
    }
    (width.max(10) + 2 * mw + 2 * st, height + 2 * mh + 2 * st)
}

/// XmLabel class methods.
pub struct XmLabelOps;

impl WidgetOps for XmLabelOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        compound_size(app, w)
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        draw_compound(app, w)
    }
}

/// XmPushButton's resources: XmLabel's plus the three Motif callbacks.
pub fn pushbutton_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = label_resources();
    v.extend([
        ResourceSpec::new("activateCallback", "Callback", Callback, ""),
        ResourceSpec::new("armCallback", "Callback", Callback, ""),
        ResourceSpec::new("disarmCallback", "Callback", Callback, ""),
        ResourceSpec::new("fillOnArm", "FillOnArm", Boolean, "true"),
    ]);
    v
}

fn pushbutton_actions() -> ActionTable {
    let mut t = ActionTable::new();
    t.add("Arm", |app, w, _, _| {
        app.set_state(w, "armed", "1");
        app.call_callbacks(w, "armCallback", HashMap::new());
        app.redisplay_widget(w);
    });
    t.add("Activate", |app, w, _, _| {
        if app.state(w, "armed") == "1" {
            app.call_callbacks(w, "activateCallback", HashMap::new());
        }
    });
    t.add("Disarm", |app, w, _, _| {
        app.set_state(w, "armed", "0");
        app.call_callbacks(w, "disarmCallback", HashMap::new());
        app.redisplay_widget(w);
    });
    t
}

/// XmPushButton class methods.
pub struct XmPushButtonOps;

impl WidgetOps for XmPushButtonOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        compound_size(app, w)
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let mut ops = draw_compound(app, w);
        if app.state(w, "armed") == "1" && app.bool_resource(w, "fillOnArm") {
            let width = app.dim_resource(w, "width");
            let height = app.dim_resource(w, "height");
            ops.push(DrawOp::DrawRect {
                rect: wafe_xproto::Rect::new(
                    1,
                    1,
                    width.saturating_sub(2),
                    height.saturating_sub(2),
                ),
                pixel: app.pixel_resource(w, "foreground"),
            });
        }
        ops
    }
}

/// XmCascadeButton's resources.
pub fn cascade_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = pushbutton_resources();
    v.extend([
        ResourceSpec::new("subMenuId", "MenuWidget", Widget, ""),
        ResourceSpec::new("cascadingCallback", "Callback", Callback, ""),
        ResourceSpec::new("mappingDelay", "MappingDelay", Int, "180"),
    ]);
    v
}

/// `XmCascadeButtonHighlight(widget, highlight)` — the paper's example of
/// a spec-generated two-argument command.
pub fn cascade_button_highlight(app: &mut XtApp, w: WidgetId, highlight: bool) {
    app.set_state(w, "highlighted", if highlight { "1" } else { "0" });
    app.redisplay_widget(w);
}

/// XmCascadeButton class methods.
pub struct XmCascadeButtonOps;

impl WidgetOps for XmCascadeButtonOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        compound_size(app, w)
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let mut ops = draw_compound(app, w);
        if app.state(w, "highlighted") == "1" {
            let width = app.dim_resource(w, "width");
            let height = app.dim_resource(w, "height");
            ops.push(DrawOp::DrawRect {
                rect: wafe_xproto::Rect::new(0, 0, width, height),
                pixel: app.pixel_resource(w, "foreground"),
            });
        }
        ops
    }
}

/// XmCommand's resources (command-entry box with history).
pub fn command_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    let mut v = primitive_resources();
    v.extend([
        ResourceSpec::new("command", "XmString", String, ""),
        ResourceSpec::new("historyItems", "Items", StringList, ""),
        ResourceSpec::new("historyMaxItems", "MaxItems", Int, "100"),
        ResourceSpec::new("promptString", "XmString", String, ">"),
        ResourceSpec::new("commandEnteredCallback", "Callback", Callback, ""),
        ResourceSpec::new("commandChangedCallback", "Callback", Callback, ""),
    ]);
    v
}

/// `XmCommandAppendValue`: appends text to the current command line.
pub fn command_append_value(app: &mut XtApp, w: WidgetId, text: &str) {
    let mut cur = app.str_resource(w, "command");
    cur.push_str(text);
    app.put_resource(w, "command", ResourceValue::Str(cur));
    app.call_callbacks(w, "commandChangedCallback", HashMap::new());
    app.redisplay_widget(w);
}

/// `XmCommandError`: shows an error in the history area.
pub fn command_error(app: &mut XtApp, w: WidgetId, message: &str) {
    let mut items = match app.widget(w).resource("historyItems") {
        Some(ResourceValue::StrList(l)) => l.clone(),
        _ => Vec::new(),
    };
    items.push(format!("ERROR: {message}"));
    app.put_resource(w, "historyItems", ResourceValue::StrList(items));
    app.redisplay_widget(w);
}

/// XmCommand class methods.
pub struct XmCommandOps;

impl WidgetOps for XmCommandOps {
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let _ = (app, w);
        (250, 120)
    }

    fn redisplay(&self, app: &XtApp, w: WidgetId) -> Vec<DrawOp> {
        let fonts = app.fonts_of(w);
        let fid = fonts.default_font();
        let f = fonts.get(fid).clone();
        let fg = app.pixel_resource(w, "foreground");
        let mut ops = Vec::new();
        let items = match app.widget(w).resource("historyItems") {
            Some(ResourceValue::StrList(l)) => l.clone(),
            _ => Vec::new(),
        };
        for (i, item) in items.iter().rev().take(5).rev().enumerate() {
            ops.push(DrawOp::DrawText {
                x: 2,
                y: 2 + (i as i32 + 1) * f.height() as i32,
                text: item.clone(),
                pixel: fg,
                font: fid,
            });
        }
        let prompt = app.str_resource(w, "promptString");
        let cmd = app.str_resource(w, "command");
        ops.push(DrawOp::DrawText {
            x: 2,
            y: app.dim_resource(w, "height") as i32 - f.descent as i32 - 2,
            text: format!("{prompt} {cmd}"),
            pixel: fg,
            font: fid,
        });
        ops
    }
}

/// Registers the Motif classes.
pub fn register(app: &mut XtApp) {
    app.register_class(WidgetClass {
        name: "XmLabel".into(),
        resources: label_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(XmLabelOps),
        is_shell: false,
        is_composite: false,
    });
    app.register_class(WidgetClass {
        name: "XmPushButton".into(),
        resources: pushbutton_resources(),
        constraint_resources: Vec::new(),
        actions: pushbutton_actions(),
        default_translations: TranslationTable::parse(
            "<Btn1Down>: Arm()\n<Btn1Up>: Activate() Disarm()",
        )
        .expect("static translations"),
        ops: Rc::new(XmPushButtonOps),
        is_shell: false,
        is_composite: false,
    });
    app.register_class(WidgetClass {
        name: "XmCascadeButton".into(),
        resources: cascade_resources(),
        constraint_resources: Vec::new(),
        actions: pushbutton_actions(),
        default_translations: TranslationTable::parse(
            "<Btn1Down>: Arm()\n<Btn1Up>: Activate() Disarm()",
        )
        .expect("static translations"),
        ops: Rc::new(XmCascadeButtonOps),
        is_shell: false,
        is_composite: false,
    });
    app.register_class(WidgetClass {
        name: "XmCommand".into(),
        resources: command_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(XmCommandOps),
        is_shell: false,
        is_composite: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafe_xt::converter::ConvertCtx;

    fn app() -> XtApp {
        let mut a = XtApp::new();
        // A shell to parent things under.
        a.register_class(wafe_xt::widget::core_class("Shell", true, true));
        register(&mut a);
        // Install the XmString converter for the Compound type, like the
        // mofe binary does.
        a.converters
            .register(wafe_xt::ResType::Compound, |s, _ctx: &ConvertCtx<'_>| {
                Ok(ResourceValue::Compound(parse_xmstring(s)))
            });
        a
    }

    #[test]
    fn figure3_label_renders_with_fonts_and_direction() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "Shell", None, 0, &[], true)
            .unwrap();
        let l = a
            .create_widget(
                "l",
                "XmLabel",
                Some(top),
                0,
                &[
                    (
                        "fontList".into(),
                        "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft".into(),
                    ),
                    (
                        "labelString".into(),
                        "I'm&bft bold&ft and&rl strange".into(),
                    ),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        let ops = XmLabelOps.redisplay(&a, l);
        let texts: Vec<&str> = ops
            .iter()
            .filter_map(|op| match op {
                DrawOp::DrawText { text, .. } => Some(text.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, vec!["I'm", " bold", " and", "egnarts "]);
        // The bold segment uses a different font.
        let fonts: Vec<_> = ops
            .iter()
            .filter_map(|op| match op {
                DrawOp::DrawText { font, .. } => Some(*font),
                _ => None,
            })
            .collect();
        assert_ne!(fonts[0], fonts[1]);
        assert_eq!(fonts[0], fonts[2]);
    }

    #[test]
    fn pushbutton_arm_activate_callbacks() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "Shell", None, 0, &[], true)
            .unwrap();
        let b = a
            .create_widget(
                "pressMe",
                "XmPushButton",
                Some(top),
                0,
                &[
                    ("labelString".into(), "Press me".into()),
                    ("armCallback".into(), "echo armed".into()),
                    ("activateCallback".into(), "echo activated".into()),
                ],
                true,
            )
            .unwrap();
        a.realize(top);
        a.dispatch_pending();
        let _ = a.take_host_calls();
        let win = a.widget(b).window.unwrap();
        let abs = a.displays[0].abs_rect(win);
        a.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
        a.dispatch_pending();
        let scripts: Vec<String> = a.take_host_calls().into_iter().map(|c| c.script).collect();
        assert_eq!(scripts, vec!["echo armed", "echo activated"]);
    }

    #[test]
    fn cascade_button_highlight_function() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "Shell", None, 0, &[], true)
            .unwrap();
        let cb = a
            .create_widget("casc", "XmCascadeButton", Some(top), 0, &[], true)
            .unwrap();
        a.realize(top);
        cascade_button_highlight(&mut a, cb, true);
        assert_eq!(a.state(cb, "highlighted"), "1");
        cascade_button_highlight(&mut a, cb, false);
        assert_eq!(a.state(cb, "highlighted"), "0");
    }

    #[test]
    fn command_append_value_builds_command() {
        let mut a = app();
        let top = a
            .create_widget("topLevel", "Shell", None, 0, &[], true)
            .unwrap();
        let c = a
            .create_widget(
                "cmd",
                "XmCommand",
                Some(top),
                0,
                &[("commandChangedCallback".into(), "echo changed".into())],
                true,
            )
            .unwrap();
        a.realize(top);
        command_append_value(&mut a, c, "ls ");
        command_append_value(&mut a, c, "-la");
        assert_eq!(a.str_resource(c, "command"), "ls -la");
        assert_eq!(a.take_host_calls().len(), 2);
        command_error(&mut a, c, "no such file");
        match a.widget(c).resource("historyItems") {
            Some(ResourceValue::StrList(l)) => assert!(l[0].contains("no such file")),
            _ => panic!(),
        }
    }
}
