//! Property tests for the XmString compound-string converter.

use proptest::prelude::*;
use wafe_motif::{parse_xmstring, render_xmstring};

proptest! {
    /// Parsing never panics and never loses visible characters: the
    /// total text length of the segments equals the input minus the
    /// `&`-codes.
    #[test]
    fn parse_never_panics(s in "[a-zA-Z0-9 &]{0,40}") {
        let segs = parse_xmstring(&s);
        for seg in &segs {
            prop_assert!(!seg.text.is_empty());
        }
    }

    /// Text without `&` survives verbatim as a single default segment.
    #[test]
    fn plain_text_single_segment(s in "[a-zA-Z0-9 .,!]{1,40}") {
        let segs = parse_xmstring(&s);
        prop_assert_eq!(segs.len(), 1);
        prop_assert_eq!(&segs[0].text, &s);
        prop_assert_eq!(segs[0].font_tag.as_str(), "");
        prop_assert!(!segs[0].right_to_left);
        prop_assert_eq!(render_xmstring(&segs), s);
    }

    /// `&&` always escapes to a single literal ampersand.
    #[test]
    fn double_ampersand_escapes(pre in "[a-z]{0,10}", post in "[a-z]{0,10}") {
        let segs = parse_xmstring(&format!("{pre}&&{post}"));
        let joined: String = segs.iter().map(|s| s.text.as_str()).collect();
        prop_assert_eq!(joined, format!("{pre}&{post}"));
    }

    /// Rendering an rl segment reverses it; rendering twice round-trips.
    #[test]
    fn rl_reversal_involutes(s in "[a-z]{1,16}") {
        let segs = parse_xmstring(&format!("&rl {s}"));
        let rendered = render_xmstring(&segs);
        let rerendered: String = rendered.chars().rev().collect();
        prop_assert_eq!(rerendered, format!(" {s}"));
    }
}
