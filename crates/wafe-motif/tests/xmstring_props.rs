//! Property tests for the XmString compound-string converter.

use wafe_motif::{parse_xmstring, render_xmstring};
use wafe_prop::cases;

/// Parsing never panics and never loses visible characters: the
/// total text length of the segments equals the input minus the
/// `&`-codes.
#[test]
fn parse_never_panics() {
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 &"
        .chars()
        .collect();
    cases(256, |rng| {
        let len = rng.range(0, 41);
        let s = rng.string_from(&alphabet, len);
        let segs = parse_xmstring(&s);
        for seg in &segs {
            assert!(!seg.text.is_empty());
        }
    });
}

/// Text without `&` survives verbatim as a single default segment.
#[test]
fn plain_text_single_segment() {
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,!"
        .chars()
        .collect();
    cases(256, |rng| {
        let len = rng.range(1, 41);
        let s = rng.string_from(&alphabet, len);
        let segs = parse_xmstring(&s);
        assert_eq!(segs.len(), 1);
        assert_eq!(&segs[0].text, &s);
        assert_eq!(segs[0].font_tag.as_str(), "");
        assert!(!segs[0].right_to_left);
        assert_eq!(render_xmstring(&segs), s);
    });
}

/// `&&` always escapes to a single literal ampersand.
#[test]
fn double_ampersand_escapes() {
    let alphabet: Vec<char> = ('a'..='z').collect();
    cases(256, |rng| {
        let pre_len = rng.range(0, 11);
        let pre = rng.string_from(&alphabet, pre_len);
        let post_len = rng.range(0, 11);
        let post = rng.string_from(&alphabet, post_len);
        let segs = parse_xmstring(&format!("{pre}&&{post}"));
        let joined: String = segs.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(joined, format!("{pre}&{post}"));
    });
}

/// Rendering an rl segment reverses it; rendering twice round-trips.
#[test]
fn rl_reversal_involutes() {
    let alphabet: Vec<char> = ('a'..='z').collect();
    cases(256, |rng| {
        let len = rng.range(1, 17);
        let s = rng.string_from(&alphabet, len);
        let segs = parse_xmstring(&format!("&rl {s}"));
        let rendered = render_xmstring(&segs);
        let rerendered: String = rendered.chars().rev().collect();
        assert_eq!(rerendered, format!(" {s}"));
    });
}
