//! Ops-plane exporters: Prometheus text exposition and Chrome
//! trace-event JSON, both hand-rolled (the workspace is zero-dep).

use crate::span::SpanRecord;
use crate::Telemetry;

/// Flattens a telemetry store to key-sorted `(key, value)` pairs: every
/// counter and gauge by name, histograms as `.count/.p50Ns/.p90Ns/.p99Ns`,
/// plus journal and span occupancy under `trace.journal.*` /
/// `trace.spans.*`. This is the store-level subset of the Tcl-visible
/// `telemetry snapshot` (which adds interpreter- and widget-side stats
/// the store cannot see).
pub fn telemetry_pairs(tel: &Telemetry) -> Vec<(String, String)> {
    let snap = tel.snapshot();
    let mut pairs: Vec<(String, String)> = Vec::new();
    for (k, v) in &snap.counters {
        pairs.push((k.to_string(), v.to_string()));
    }
    for (k, v) in &snap.gauges {
        pairs.push((k.to_string(), v.to_string()));
    }
    for (k, h) in &snap.histograms {
        pairs.push((format!("{k}.count"), h.count.to_string()));
        pairs.push((format!("{k}.p50Ns"), h.p50_ns.to_string()));
        pairs.push((format!("{k}.p90Ns"), h.p90_ns.to_string()));
        pairs.push((format!("{k}.p99Ns"), h.p99_ns.to_string()));
    }
    let (retained, total, dropped, capacity) = tel.journal_stats();
    pairs.push(("trace.journal.retained".into(), retained.to_string()));
    pairs.push(("trace.journal.total".into(), total.to_string()));
    pairs.push(("trace.journal.dropped".into(), dropped.to_string()));
    pairs.push(("trace.journal.capacity".into(), capacity.to_string()));
    let spans = tel.span_stats();
    pairs.push(("trace.spans.retained".into(), spans.retained.to_string()));
    pairs.push(("trace.spans.total".into(), spans.total.to_string()));
    pairs.push(("trace.spans.dropped".into(), spans.dropped.to_string()));
    pairs.push(("trace.spans.capacity".into(), spans.capacity.to_string()));
    pairs.sort();
    pairs
}

/// Renders key-sorted pairs as Prometheus text exposition. Keys become
/// `wafe_`-prefixed metric names with every non-alphanumeric mapped to
/// `_`; the histogram percentile keys (`*.p50Ns` etc.) collapse to one
/// metric per histogram with a `quantile` label, and `*.count` keeps
/// its suffix, so `serve.dispatch.p90Ns` exports as
/// `wafe_serve_dispatch_ns{quantile="0.9"}`.
pub fn prometheus_text(pairs: &[(String, String)]) -> String {
    let mut out = String::new();
    for (key, value) in pairs {
        let (name, label) = match key
            .strip_suffix(".p50Ns")
            .map(|b| (b, "0.5"))
            .or_else(|| key.strip_suffix(".p90Ns").map(|b| (b, "0.9")))
            .or_else(|| key.strip_suffix(".p99Ns").map(|b| (b, "0.99")))
        {
            Some((base, q)) => (format!("{}_ns", metric_name(base)), Some(q)),
            None => (metric_name(key), None),
        };
        out.push_str("wafe_");
        out.push_str(&name);
        if let Some(q) = label {
            out.push_str("{quantile=\"");
            out.push_str(q);
            out.push_str("\"}");
        }
        out.push(' ');
        out.push_str(value);
        out.push('\n');
    }
    out
}

fn metric_name(key: &str) -> String {
    key.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Serializes finished spans as a Chrome trace-event JSON document
/// (complete `"ph":"X"` events with virtual-tick timestamps), loadable
/// directly in `chrome://tracing` / Perfetto as a flamegraph.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"wafe\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":1,\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\
             \"detail\":{}}}}}",
            json_string(s.kind),
            s.begin_tick,
            s.end_tick.saturating_sub(s.begin_tick),
            json_string(&s.trace.to_string()),
            s.id,
            s.parent,
            json_string(&s.detail),
        ));
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string encoder (quotes, backslashes, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceId;

    #[test]
    fn prometheus_names_and_quantiles() {
        let pairs = vec![
            ("serve.dispatch.count".to_string(), "7".to_string()),
            ("serve.dispatch.p50Ns".to_string(), "120".to_string()),
            ("serve.dispatch.p90Ns".to_string(), "400".to_string()),
            ("serve.dispatch.p99Ns".to_string(), "900".to_string()),
            ("tcl.evals".to_string(), "42".to_string()),
        ];
        let text = prometheus_text(&pairs);
        assert_eq!(
            text,
            "wafe_serve_dispatch_count 7\n\
             wafe_serve_dispatch_ns{quantile=\"0.5\"} 120\n\
             wafe_serve_dispatch_ns{quantile=\"0.9\"} 400\n\
             wafe_serve_dispatch_ns{quantile=\"0.99\"} 900\n\
             wafe_tcl_evals 42\n"
        );
    }

    #[test]
    fn telemetry_pairs_are_sorted_and_complete() {
        let tel = Telemetry::new();
        tel.set_enabled(true);
        tel.count("b.two");
        tel.count("a.one");
        tel.set_gauge("g.mid", 5);
        let pairs = telemetry_pairs(&tel);
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "pairs must come out key-sorted");
        assert!(keys.contains(&"a.one"));
        assert!(keys.contains(&"trace.journal.dropped"));
        assert!(keys.contains(&"trace.spans.capacity"));
    }

    #[test]
    fn chrome_trace_shape_and_escaping() {
        let spans = vec![SpanRecord {
            id: 1,
            parent: 0,
            trace: TraceId {
                generation: 1,
                serial: 1,
            },
            kind: "tcl.eval",
            detail: "say \"hi\"\n".to_string(),
            begin_tick: 1,
            end_tick: 4,
        }];
        let json = chrome_trace(&spans);
        assert_eq!(
            json,
            "{\"traceEvents\":[{\"name\":\"tcl.eval\",\"cat\":\"wafe\",\"ph\":\"X\",\
             \"ts\":1,\"dur\":3,\"pid\":1,\"tid\":1,\"args\":{\"trace\":\"1:1\",\
             \"span\":1,\"parent\":0,\"detail\":\"say \\\"hi\\\"\\n\"}}]}"
        );
    }

    #[test]
    fn chrome_trace_empty() {
        assert_eq!(chrome_trace(&[]), "{\"traceEvents\":[]}");
    }
}
