//! The bounded ring-buffer event journal.

/// One journaled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic sequence number (1-based, never reused, survives
    /// wraparound — the gap between the oldest retained `seq` and 1 is
    /// how many events were dropped).
    pub seq: u64,
    /// Microseconds since the telemetry handle was created.
    pub at_us: u64,
    /// Event kind, e.g. `widget.create` (a fixed vocabulary, see
    /// `docs/telemetry.md`).
    pub kind: &'static str,
    /// Free-form detail text.
    pub detail: String,
}

/// Default number of events retained.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 256;

/// A bounded ring buffer of [`EventRecord`]s: pushing at capacity
/// overwrites the oldest entry.
#[derive(Debug)]
pub struct Journal {
    buf: Vec<EventRecord>,
    capacity: usize,
    /// Index of the slot the next push writes (only meaningful once the
    /// buffer is full).
    head: usize,
    next_seq: u64,
    /// Events overwritten by wraparound.
    dropped: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl Journal {
    /// An empty journal retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Journal {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            next_seq: 1,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest once full. Returns the
    /// event's sequence number.
    pub fn push(&mut self, at_us: u64, kind: &'static str, detail: String) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let rec = EventRecord {
            seq,
            at_us,
            kind,
            detail,
        };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
        seq
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed (retained or dropped).
    pub fn total_pushed(&self) -> u64 {
        self.next_seq - 1
    }

    /// Events overwritten by ring wraparound — a non-zero value means
    /// the journal is a truncated view of what actually happened.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recent `n` events, oldest first. `n >= len()` returns
    /// everything retained.
    pub fn recent(&self, n: usize) -> Vec<EventRecord> {
        let take = n.min(self.buf.len());
        let mut out = Vec::with_capacity(take);
        // Chronological order starts at `head` once the ring has wrapped.
        let len = self.buf.len();
        let start_logical = len - take;
        for i in 0..take {
            let logical = start_logical + i;
            let physical = if len < self.capacity {
                logical
            } else {
                (self.head + logical) % self.capacity
            };
            out.push(self.buf[physical].clone());
        }
        out
    }

    /// Drops all retained events; sequence numbers keep counting.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(j: &mut Journal, n: usize) {
        for k in 0..n {
            j.push(k as u64, "test.event", format!("event-{k}"));
        }
    }

    #[test]
    fn fills_then_wraps_keeping_most_recent() {
        let mut j = Journal::new(4);
        push_n(&mut j, 10);
        assert_eq!(j.len(), 4);
        assert_eq!(j.total_pushed(), 10);
        assert_eq!(j.dropped(), 6, "overwrites are counted, not silent");
        let recent = j.recent(10);
        let seqs: Vec<u64> = recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        assert_eq!(recent[0].detail, "event-6");
        assert_eq!(recent[3].detail, "event-9");
    }

    #[test]
    fn recent_n_returns_newest_in_order() {
        let mut j = Journal::new(8);
        push_n(&mut j, 5);
        let two = j.recent(2);
        assert_eq!(
            two.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![4, 5],
            "most recent two, oldest first"
        );
    }

    #[test]
    fn wrap_boundary_exact_capacity() {
        let mut j = Journal::new(3);
        push_n(&mut j, 3);
        assert_eq!(
            j.recent(3).iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        j.push(99, "test.event", "one more".into());
        assert_eq!(
            j.recent(3).iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn clear_keeps_sequence_counting() {
        let mut j = Journal::new(4);
        push_n(&mut j, 3);
        j.clear();
        assert!(j.is_empty());
        let seq = j.push(0, "test.event", "after clear".into());
        assert_eq!(seq, 4, "sequence numbers never restart");
    }

    #[test]
    fn dropped_stays_zero_until_wrap() {
        let mut j = Journal::new(3);
        push_n(&mut j, 3);
        assert_eq!(j.dropped(), 0);
        j.push(99, "test.event", "wrap".into());
        assert_eq!(j.dropped(), 1);
        j.clear();
        assert_eq!(j.dropped(), 1, "clear does not forget past drops");
    }
}
