//! Fixed-bucket latency histograms with percentile extraction.

/// Upper bounds (inclusive, nanoseconds) of the histogram buckets: a
/// 1-2-5 ladder from 100 ns to 1 s. Samples above the last bound land in
/// an overflow bucket. The bounds are part of the telemetry contract and
/// documented in `docs/telemetry.md`; keep the two in sync.
pub const BUCKET_BOUNDS_NS: [u64; 22] = [
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
];

/// Number of buckets including the overflow bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_NS.len() + 1;

/// A latency histogram over the fixed [`BUCKET_BOUNDS_NS`] ladder.
///
/// Recording is O(buckets) worst case (a linear scan over 22 bounds) and
/// allocation-free; percentile extraction interpolates linearly inside
/// the bucket holding the requested rank.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKET_COUNT],
    total: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKET_COUNT],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64; BUCKET_COUNT] {
        &self.counts
    }

    /// The `p`-th percentile (0 < p <= 100) in nanoseconds, linearly
    /// interpolated within the winning bucket. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate between the bucket's bounds; the exact
                // min/max trim the first/last bucket to observed values.
                let lower = if idx == 0 {
                    0
                } else {
                    BUCKET_BOUNDS_NS[idx - 1]
                };
                let upper = if idx < BUCKET_BOUNDS_NS.len() {
                    BUCKET_BOUNDS_NS[idx]
                } else {
                    self.max_ns
                };
                let lower = lower.max(self.min_ns.min(upper));
                let upper = upper.min(self.max_ns);
                let within = (rank - seen) as f64 / c as f64;
                return lower + ((upper.saturating_sub(lower)) as f64 * within) as u64;
            }
            seen += c;
        }
        self.max_ns
    }

    /// A point-in-time summary of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.total,
            sum_ns: self.sum_ns,
            min_ns: if self.total == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            p50_ns: self.percentile(50.0),
            p90_ns: self.percentile(90.0),
            p99_ns: self.percentile(99.0),
        }
    }
}

/// An immutable summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn bounds_are_strictly_increasing() {
        for w in BUCKET_BOUNDS_NS.windows(2) {
            assert!(w[0] < w[1], "bounds must increase: {} {}", w[0], w[1]);
        }
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for ns in [50u64, 150, 900, 1_500, 4_000, 9_000, 40_000, 2_000_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.min_ns, 50);
        assert_eq!(s.max_ns, 2_000_000);
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.max_ns);
        assert!(s.p50_ns >= s.min_ns);
    }

    #[test]
    fn overflow_bucket_takes_huge_samples() {
        let mut h = Histogram::new();
        h.record(10_000_000_000); // 10 s: above the last bound.
        assert_eq!(h.bucket_counts()[BUCKET_COUNT - 1], 1);
        assert_eq!(h.snapshot().p99_ns, 10_000_000_000);
    }

    #[test]
    fn single_bucket_interpolation_stays_inside_observed_range() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(150); // all in the (100, 200] bucket
        }
        let s = h.snapshot();
        assert!(s.p50_ns >= 100 && s.p50_ns <= 200, "p50 = {}", s.p50_ns);
        assert!(s.p99_ns <= 200);
    }

    #[test]
    fn empty_percentiles_at_every_rank() {
        let h = Histogram::new();
        for p in [0.001, 1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 0, "empty histogram, p{p}");
        }
    }

    #[test]
    fn single_sample_every_percentile_is_that_sample() {
        let mut h = Histogram::new();
        h.record(4_321);
        let s = h.snapshot();
        assert_eq!(s.min_ns, 4_321);
        assert_eq!(s.max_ns, 4_321);
        // min/max trim the interpolation range to the observed value,
        // so every percentile collapses to it.
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 4_321, "single sample, p{p}");
        }
        assert_eq!(s.sum_ns, 4_321);
    }

    #[test]
    fn top_bucket_saturation_uses_observed_max() {
        let mut h = Histogram::new();
        // Everything above the 1 s bound: the overflow bucket has no
        // upper bound of its own, so interpolation must use min/max.
        h.record(2_000_000_000);
        h.record(4_000_000_000);
        h.record(8_000_000_000);
        assert_eq!(h.bucket_counts()[BUCKET_COUNT - 1], 3);
        let s = h.snapshot();
        assert!(
            s.p50_ns >= 2_000_000_000 && s.p50_ns <= 8_000_000_000,
            "p50 = {}",
            s.p50_ns
        );
        assert_eq!(h.percentile(100.0), 8_000_000_000);
        assert_eq!(s.min_ns, 2_000_000_000);
        assert_eq!(s.max_ns, 8_000_000_000);
    }

    #[test]
    fn ladder_boundary_values_land_inclusive() {
        // Bounds are inclusive upper edges: a sample exactly on a bound
        // lands in that bucket, one past it in the next.
        for (i, &bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
            let mut h = Histogram::new();
            h.record(bound);
            assert_eq!(h.bucket_counts()[i], 1, "bound {bound} on its bucket");
            let mut h = Histogram::new();
            h.record(bound + 1);
            assert_eq!(
                h.bucket_counts()[i + 1],
                1,
                "bound {bound}+1 in the next bucket"
            );
        }
    }

    #[test]
    fn zero_sample_lands_in_first_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.bucket_counts()[0], 1);
        let s = h.snapshot();
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.p50_ns, 0, "interpolation clamps to the observed max");
    }
}
