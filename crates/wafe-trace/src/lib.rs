//! Unified telemetry for the Wafe stack.
//!
//! The paper's formula —
//! `Wafe = Tcl + (Intrinsics + Widgets + Converters + Ext) + (Memory
//! Management + Communication)` — names exactly the seams a production
//! frontend must be able to observe: command evaluation, callback/action
//! dispatch, and the duplex pipe protocol. This crate provides the three
//! primitives those seams share:
//!
//! * **monotonic counters** (and settable gauges) keyed by static names,
//! * **fixed-bucket latency histograms** with p50/p90/p99 extraction
//!   ([`histogram`]), and
//! * a **bounded ring-buffer event journal** ([`journal`]),
//!
//! behind a cloneable [`Telemetry`] handle. The handle is near-free when
//! disabled: every recording entry point is one load of the enabled flag
//! — no allocation, no formatting, no clock read. Journal detail strings
//! are built through closures so the formatting cost is only paid when a
//! record is actually retained.
//!
//! The handle is deliberately single-threaded (`Rc` + interior
//! mutability), matching the rest of the Wafe stack; one handle is
//! created by the session and shared by the interpreter, the toolkit and
//! the pipe protocol so `telemetry snapshot` sees every layer at once.
//!
//! # Examples
//!
//! ```
//! use wafe_trace::Telemetry;
//!
//! let t = Telemetry::new();
//! t.count("demo.ticks"); // disabled: a no-op
//! t.set_enabled(true);
//! t.count("demo.ticks");
//! t.add("demo.bytes", 128);
//! t.observe_ns("demo.latency", 1_500);
//! t.event("demo.start", || "hello".to_string());
//! let snap = t.snapshot();
//! assert_eq!(snap.counter("demo.ticks"), Some(1));
//! assert_eq!(snap.counter("demo.bytes"), Some(128));
//! assert_eq!(t.journal_recent(10).len(), 1);
//! ```

pub mod export;
pub mod histogram;
pub mod journal;
pub mod span;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

pub use histogram::{Histogram, HistogramSnapshot, BUCKET_BOUNDS_NS, BUCKET_COUNT};
pub use journal::{EventRecord, Journal, DEFAULT_JOURNAL_CAPACITY};
pub use span::{SpanRecord, SpanStats, SpanStore, TraceId, DEFAULT_SPAN_CAPACITY};

/// The environment variable that enables telemetry at startup.
pub const TELEMETRY_ENV_VAR: &str = "WAFE_TELEMETRY";

/// The environment variable that enables span recording at startup
/// (independent of `WAFE_TELEMETRY`: spans carry per-request cost, so
/// they get their own switch).
pub const SPANS_ENV_VAR: &str = "WAFE_SPANS";

struct Inner {
    enabled: Cell<bool>,
    counters: RefCell<BTreeMap<&'static str, u64>>,
    gauges: RefCell<BTreeMap<&'static str, u64>>,
    histograms: RefCell<BTreeMap<&'static str, Histogram>>,
    journal: RefCell<Journal>,
    spans_enabled: Cell<bool>,
    spans: RefCell<SpanStore>,
    epoch: Instant,
}

/// A cloneable handle onto one telemetry store (clones share the store).
#[derive(Clone)]
pub struct Telemetry {
    inner: Rc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A fresh, **disabled** store.
    pub fn new() -> Self {
        Telemetry {
            inner: Rc::new(Inner {
                enabled: Cell::new(false),
                counters: RefCell::new(BTreeMap::new()),
                gauges: RefCell::new(BTreeMap::new()),
                histograms: RefCell::new(BTreeMap::new()),
                journal: RefCell::new(Journal::default()),
                spans_enabled: Cell::new(false),
                spans: RefCell::new(SpanStore::default()),
                epoch: Instant::now(),
            }),
        }
    }

    /// A fresh store, enabled when the `WAFE_TELEMETRY` environment
    /// variable is set to anything but `0` or the empty string; span
    /// recording is armed the same way by `WAFE_SPANS`.
    pub fn from_env() -> Self {
        let t = Self::new();
        let armed = |var: &str| matches!(std::env::var(var), Ok(v) if !v.is_empty() && v != "0");
        if armed(TELEMETRY_ENV_VAR) {
            t.set_enabled(true);
        }
        if armed(SPANS_ENV_VAR) {
            t.set_spans_enabled(true);
        }
        t
    }

    /// Whether recording is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Turns recording on or off. Accumulated data is kept either way.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.set(on);
    }

    // ----- counters and gauges ---------------------------------------

    /// Increments a counter by one.
    #[inline]
    pub fn count(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments a counter by `delta`.
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if !self.enabled() {
            return;
        }
        *self.inner.counters.borrow_mut().entry(name).or_insert(0) += delta;
    }

    /// Sets a gauge to an absolute value (recorded even while a counter
    /// with the same name would be suppressed — gauges describe current
    /// state, so the last write wins).
    #[inline]
    pub fn set_gauge(&self, name: &'static str, value: u64) {
        if !self.enabled() {
            return;
        }
        self.inner.gauges.borrow_mut().insert(name, value);
    }

    // ----- latency histograms ----------------------------------------

    /// Starts a latency measurement: `None` when disabled, so the clock
    /// is only read while recording.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes a measurement started with [`Telemetry::timer`]. A
    /// `None` start (telemetry was disabled at start time) records
    /// nothing, even if telemetry has been enabled in between.
    #[inline]
    pub fn observe_since(&self, name: &'static str, started: Option<Instant>) {
        if let Some(t0) = started {
            if self.enabled() {
                self.observe_ns(name, t0.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Records one latency sample in nanoseconds.
    #[inline]
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        if !self.enabled() {
            return;
        }
        self.inner
            .histograms
            .borrow_mut()
            .entry(name)
            .or_default()
            .record(ns);
    }

    // ----- journal ----------------------------------------------------

    /// Journals an event. The detail closure runs only when enabled.
    #[inline]
    pub fn event<F: FnOnce() -> String>(&self, kind: &'static str, detail: F) {
        if !self.enabled() {
            return;
        }
        let at_us = self.inner.epoch.elapsed().as_micros() as u64;
        self.inner.journal.borrow_mut().push(at_us, kind, detail());
    }

    /// The most recent `n` journal entries, oldest first.
    pub fn journal_recent(&self, n: usize) -> Vec<EventRecord> {
        self.inner.journal.borrow().recent(n)
    }

    /// `(retained, total_pushed, dropped, capacity)` of the journal.
    pub fn journal_stats(&self) -> (usize, u64, u64, usize) {
        let j = self.inner.journal.borrow();
        (j.len(), j.total_pushed(), j.dropped(), j.capacity())
    }

    /// Replaces the journal with an empty one of the given capacity.
    pub fn set_journal_capacity(&self, capacity: usize) {
        *self.inner.journal.borrow_mut() = Journal::new(capacity);
    }

    // ----- spans ------------------------------------------------------

    /// Whether span recording is active (independent of the counter /
    /// histogram / journal flag — spans carry per-request allocation
    /// cost, so they get their own switch).
    #[inline]
    pub fn spans_enabled(&self) -> bool {
        self.inner.spans_enabled.get()
    }

    /// Turns span recording on or off. Open spans are abandoned in
    /// **both** directions: a begin recorded under one setting must
    /// never pair with an end issued under the other.
    pub fn set_spans_enabled(&self, on: bool) {
        self.inner.spans_enabled.set(on);
        self.inner.spans.borrow_mut().clear_open();
    }

    /// Opens a span as a child of the current innermost span (or as a
    /// fresh trace root when none is open). Returns whether a span was
    /// actually pushed — the caller must gate the matching
    /// [`span_end`](Self::span_end) on it, so a toggle between begin
    /// and end cannot unbalance the stack. The detail closure runs only
    /// when recording.
    #[inline]
    pub fn span_begin<F: FnOnce() -> String>(&self, kind: &'static str, detail: F) -> bool {
        if !self.spans_enabled() {
            return false;
        }
        self.inner.spans.borrow_mut().begin(kind, detail());
        true
    }

    /// Opens the root span of a fresh trace regardless of nesting — the
    /// per-dispatched-command entry point. Same contract as
    /// [`span_begin`](Self::span_begin).
    #[inline]
    pub fn span_begin_root<F: FnOnce() -> String>(&self, kind: &'static str, detail: F) -> bool {
        if !self.spans_enabled() {
            return false;
        }
        self.inner.spans.borrow_mut().begin_root(kind, detail());
        true
    }

    /// Closes the innermost open span.
    #[inline]
    pub fn span_end(&self) {
        self.inner.spans.borrow_mut().end();
    }

    /// Opens a detached span — one that outlives the stack discipline,
    /// like a backend roundtrip closed by a later reply. It is
    /// attributed to the active trace (innermost open span, else the
    /// most recent root). Returns a token for
    /// [`span_end_detached`](Self::span_end_detached), or 0 when
    /// disabled (0 is never a valid token).
    #[inline]
    pub fn span_begin_detached<F: FnOnce() -> String>(&self, kind: &'static str, detail: F) -> u64 {
        if !self.spans_enabled() {
            return 0;
        }
        self.inner.spans.borrow_mut().begin_detached(kind, detail())
    }

    /// Closes a detached span by its token; unknown tokens (including
    /// 0) are a no-op.
    #[inline]
    pub fn span_end_detached(&self, token: u64) {
        if token != 0 {
            self.inner.spans.borrow_mut().end_detached(token);
        }
    }

    /// The trace the next event would be attributed to, if any.
    pub fn current_trace(&self) -> Option<TraceId> {
        if !self.spans_enabled() {
            return None;
        }
        self.inner.spans.borrow().active_trace()
    }

    /// `" trace=G:S"` for the active trace, or the empty string — the
    /// ready-to-append form journal details use to tag supervisor
    /// events with their causing command.
    pub fn trace_note(&self) -> String {
        match self.current_trace() {
            Some(t) => format!(" trace={t}"),
            None => String::new(),
        }
    }

    /// The most recent `n` finished spans, oldest first.
    pub fn spans_recent(&self, n: usize) -> Vec<SpanRecord> {
        self.inner.spans.borrow().recent(n)
    }

    /// Occupancy counters of the span ring.
    pub fn span_stats(&self) -> SpanStats {
        self.inner.spans.borrow().stats()
    }

    /// Drops all open and finished spans (serials and the generation
    /// keep counting).
    pub fn spans_clear(&self) {
        self.inner.spans.borrow_mut().clear();
    }

    /// Replaces the span ring with an empty one of the given capacity.
    pub fn set_span_capacity(&self, capacity: usize) {
        self.inner.spans.borrow_mut().set_capacity(capacity);
    }

    // ----- snapshot and reset ----------------------------------------

    /// A point-in-time copy of every counter, gauge and histogram.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .inner
                .counters
                .borrow()
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
            gauges: self
                .inner
                .gauges
                .borrow()
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
            histograms: self
                .inner
                .histograms
                .borrow()
                .iter()
                .map(|(&k, h)| (k, h.snapshot()))
                .collect(),
        }
    }

    /// A summary of one histogram, if it has been recorded to.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner
            .histograms
            .borrow()
            .get(name)
            .map(Histogram::snapshot)
    }

    /// Clears counters, gauges, histograms and the journal. The enabled
    /// flag is **not** touched: `telemetry reset` re-arms measurement, it
    /// does not stop it.
    pub fn reset(&self) {
        self.inner.counters.borrow_mut().clear();
        self.inner.gauges.borrow_mut().clear();
        self.inner.histograms.borrow_mut().clear();
        // A full reset starts the journal over, sequence numbers
        // included (unlike Journal::clear, which preserves them).
        let mut journal = self.inner.journal.borrow_mut();
        *journal = Journal::new(journal.capacity());
        // Spans restart too, but under a bumped generation so trace IDs
        // issued before the reset can never collide with new ones.
        self.inner.spans.borrow_mut().reset();
    }
}

/// A point-in-time copy of a [`Telemetry`] store, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: Vec<(&'static str, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histogram summaries.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// All counters under a dotted prefix (e.g. `ipc.supervisor.`),
    /// sorted by name — the supervisor's introspection surface.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .copied()
            .collect();
        out.sort();
        out
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::new();
        assert!(!t.enabled());
        t.count("x");
        t.add("x", 10);
        t.set_gauge("g", 5);
        t.observe_ns("h", 100);
        t.event("e", || panic!("detail closure must not run while disabled"));
        let s = t.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
        assert_eq!(t.journal_recent(10).len(), 0);
        assert!(t.timer().is_none());
    }

    #[test]
    fn enabled_records_and_clones_share() {
        let t = Telemetry::new();
        t.set_enabled(true);
        let t2 = t.clone();
        t.count("evals");
        t2.count("evals");
        t2.observe_ns("lat", 1_000);
        assert_eq!(t.snapshot().counter("evals"), Some(2));
        assert_eq!(t.histogram("lat").unwrap().count, 1);
    }

    #[test]
    fn timer_started_while_disabled_never_records() {
        let t = Telemetry::new();
        let started = t.timer();
        t.set_enabled(true);
        t.observe_since("lat", started);
        assert!(t.histogram("lat").is_none());
    }

    #[test]
    fn reset_clears_data_but_not_enabled() {
        let t = Telemetry::new();
        t.set_enabled(true);
        t.count("c");
        t.set_gauge("g", 1);
        t.observe_ns("h", 10);
        t.event("e", || "d".into());
        t.reset();
        assert!(t.enabled(), "reset must not disable");
        let s = t.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty());
        assert_eq!(t.journal_recent(100).len(), 0);
    }

    #[test]
    fn from_env_respects_variable() {
        // Avoid mutating the real environment: exercise only the
        // documented "unset means disabled" default here.
        std::env::remove_var(TELEMETRY_ENV_VAR);
        assert!(!Telemetry::from_env().enabled());
    }

    #[test]
    fn spans_disabled_are_free_and_closures_do_not_run() {
        let t = Telemetry::new();
        assert!(!t.spans_enabled());
        let pushed = t.span_begin("x", || panic!("detail closure must not run while disabled"));
        assert!(!pushed);
        assert_eq!(
            t.span_begin_detached("y", || panic!("detail closure must not run while disabled")),
            0
        );
        t.span_end();
        t.span_end_detached(0);
        assert_eq!(t.span_stats().total, 0);
        assert!(t.current_trace().is_none());
        assert_eq!(t.trace_note(), "");
    }

    #[test]
    fn span_toggle_mid_scope_cannot_unbalance() {
        let t = Telemetry::new();
        t.set_spans_enabled(true);
        let outer = t.span_begin("outer", String::new);
        assert!(outer);
        // Disabled mid-scope: the open span is abandoned, and the
        // caller's guarded end must hit an empty stack harmlessly.
        t.set_spans_enabled(false);
        let inner = t.span_begin("inner", String::new);
        assert!(!inner);
        t.span_end(); // outer's guarded end
        assert_eq!(t.span_stats().total, 0, "abandoned spans never finish");
        assert_eq!(t.span_stats().open, 0);
    }

    #[test]
    fn trace_note_names_the_active_trace() {
        let t = Telemetry::new();
        t.set_spans_enabled(true);
        t.span_begin_root("cmd", String::new);
        assert_eq!(t.trace_note(), " trace=1:1");
        t.span_end();
        // The root is remembered so late events still attribute.
        assert_eq!(t.trace_note(), " trace=1:1");
    }

    #[test]
    fn reset_bumps_span_generation() {
        let t = Telemetry::new();
        t.set_spans_enabled(true);
        t.span_begin_root("a", String::new);
        t.span_end();
        t.reset();
        assert!(t.spans_enabled(), "reset must not disable spans");
        assert!(t.spans_recent(10).is_empty());
        t.span_begin_root("b", String::new);
        t.span_end();
        assert_eq!(t.spans_recent(1)[0].trace.to_string(), "2:1");
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let t = Telemetry::new();
        t.set_enabled(true);
        t.count("zzz");
        t.count("aaa");
        t.count("mmm");
        let names: Vec<&str> = t.snapshot().counters.iter().map(|&(k, _)| k).collect();
        assert_eq!(names, vec!["aaa", "mmm", "zzz"]);
    }
}
