//! Unified telemetry for the Wafe stack.
//!
//! The paper's formula —
//! `Wafe = Tcl + (Intrinsics + Widgets + Converters + Ext) + (Memory
//! Management + Communication)` — names exactly the seams a production
//! frontend must be able to observe: command evaluation, callback/action
//! dispatch, and the duplex pipe protocol. This crate provides the three
//! primitives those seams share:
//!
//! * **monotonic counters** (and settable gauges) keyed by static names,
//! * **fixed-bucket latency histograms** with p50/p90/p99 extraction
//!   ([`histogram`]), and
//! * a **bounded ring-buffer event journal** ([`journal`]),
//!
//! behind a cloneable [`Telemetry`] handle. The handle is near-free when
//! disabled: every recording entry point is one load of the enabled flag
//! — no allocation, no formatting, no clock read. Journal detail strings
//! are built through closures so the formatting cost is only paid when a
//! record is actually retained.
//!
//! The handle is deliberately single-threaded (`Rc` + interior
//! mutability), matching the rest of the Wafe stack; one handle is
//! created by the session and shared by the interpreter, the toolkit and
//! the pipe protocol so `telemetry snapshot` sees every layer at once.
//!
//! # Examples
//!
//! ```
//! use wafe_trace::Telemetry;
//!
//! let t = Telemetry::new();
//! t.count("demo.ticks"); // disabled: a no-op
//! t.set_enabled(true);
//! t.count("demo.ticks");
//! t.add("demo.bytes", 128);
//! t.observe_ns("demo.latency", 1_500);
//! t.event("demo.start", || "hello".to_string());
//! let snap = t.snapshot();
//! assert_eq!(snap.counter("demo.ticks"), Some(1));
//! assert_eq!(snap.counter("demo.bytes"), Some(128));
//! assert_eq!(t.journal_recent(10).len(), 1);
//! ```

pub mod histogram;
pub mod journal;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

pub use histogram::{Histogram, HistogramSnapshot, BUCKET_BOUNDS_NS, BUCKET_COUNT};
pub use journal::{EventRecord, Journal, DEFAULT_JOURNAL_CAPACITY};

/// The environment variable that enables telemetry at startup.
pub const TELEMETRY_ENV_VAR: &str = "WAFE_TELEMETRY";

struct Inner {
    enabled: Cell<bool>,
    counters: RefCell<BTreeMap<&'static str, u64>>,
    gauges: RefCell<BTreeMap<&'static str, u64>>,
    histograms: RefCell<BTreeMap<&'static str, Histogram>>,
    journal: RefCell<Journal>,
    epoch: Instant,
}

/// A cloneable handle onto one telemetry store (clones share the store).
#[derive(Clone)]
pub struct Telemetry {
    inner: Rc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A fresh, **disabled** store.
    pub fn new() -> Self {
        Telemetry {
            inner: Rc::new(Inner {
                enabled: Cell::new(false),
                counters: RefCell::new(BTreeMap::new()),
                gauges: RefCell::new(BTreeMap::new()),
                histograms: RefCell::new(BTreeMap::new()),
                journal: RefCell::new(Journal::default()),
                epoch: Instant::now(),
            }),
        }
    }

    /// A fresh store, enabled when the `WAFE_TELEMETRY` environment
    /// variable is set to anything but `0` or the empty string.
    pub fn from_env() -> Self {
        let t = Self::new();
        if let Ok(v) = std::env::var(TELEMETRY_ENV_VAR) {
            if !v.is_empty() && v != "0" {
                t.set_enabled(true);
            }
        }
        t
    }

    /// Whether recording is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Turns recording on or off. Accumulated data is kept either way.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.set(on);
    }

    // ----- counters and gauges ---------------------------------------

    /// Increments a counter by one.
    #[inline]
    pub fn count(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increments a counter by `delta`.
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if !self.enabled() {
            return;
        }
        *self.inner.counters.borrow_mut().entry(name).or_insert(0) += delta;
    }

    /// Sets a gauge to an absolute value (recorded even while a counter
    /// with the same name would be suppressed — gauges describe current
    /// state, so the last write wins).
    #[inline]
    pub fn set_gauge(&self, name: &'static str, value: u64) {
        if !self.enabled() {
            return;
        }
        self.inner.gauges.borrow_mut().insert(name, value);
    }

    // ----- latency histograms ----------------------------------------

    /// Starts a latency measurement: `None` when disabled, so the clock
    /// is only read while recording.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes a measurement started with [`Telemetry::timer`]. A
    /// `None` start (telemetry was disabled at start time) records
    /// nothing, even if telemetry has been enabled in between.
    #[inline]
    pub fn observe_since(&self, name: &'static str, started: Option<Instant>) {
        if let Some(t0) = started {
            if self.enabled() {
                self.observe_ns(name, t0.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Records one latency sample in nanoseconds.
    #[inline]
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        if !self.enabled() {
            return;
        }
        self.inner
            .histograms
            .borrow_mut()
            .entry(name)
            .or_default()
            .record(ns);
    }

    // ----- journal ----------------------------------------------------

    /// Journals an event. The detail closure runs only when enabled.
    #[inline]
    pub fn event<F: FnOnce() -> String>(&self, kind: &'static str, detail: F) {
        if !self.enabled() {
            return;
        }
        let at_us = self.inner.epoch.elapsed().as_micros() as u64;
        self.inner.journal.borrow_mut().push(at_us, kind, detail());
    }

    /// The most recent `n` journal entries, oldest first.
    pub fn journal_recent(&self, n: usize) -> Vec<EventRecord> {
        self.inner.journal.borrow().recent(n)
    }

    /// `(retained, total_pushed, capacity)` of the journal.
    pub fn journal_stats(&self) -> (usize, u64, usize) {
        let j = self.inner.journal.borrow();
        (j.len(), j.total_pushed(), j.capacity())
    }

    /// Replaces the journal with an empty one of the given capacity.
    pub fn set_journal_capacity(&self, capacity: usize) {
        *self.inner.journal.borrow_mut() = Journal::new(capacity);
    }

    // ----- snapshot and reset ----------------------------------------

    /// A point-in-time copy of every counter, gauge and histogram.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .inner
                .counters
                .borrow()
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
            gauges: self
                .inner
                .gauges
                .borrow()
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
            histograms: self
                .inner
                .histograms
                .borrow()
                .iter()
                .map(|(&k, h)| (k, h.snapshot()))
                .collect(),
        }
    }

    /// A summary of one histogram, if it has been recorded to.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner
            .histograms
            .borrow()
            .get(name)
            .map(Histogram::snapshot)
    }

    /// Clears counters, gauges, histograms and the journal. The enabled
    /// flag is **not** touched: `telemetry reset` re-arms measurement, it
    /// does not stop it.
    pub fn reset(&self) {
        self.inner.counters.borrow_mut().clear();
        self.inner.gauges.borrow_mut().clear();
        self.inner.histograms.borrow_mut().clear();
        // A full reset starts the journal over, sequence numbers
        // included (unlike Journal::clear, which preserves them).
        let mut journal = self.inner.journal.borrow_mut();
        *journal = Journal::new(journal.capacity());
    }
}

/// A point-in-time copy of a [`Telemetry`] store, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: Vec<(&'static str, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histogram summaries.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// All counters under a dotted prefix (e.g. `ipc.supervisor.`),
    /// sorted by name — the supervisor's introspection surface.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .copied()
            .collect();
        out.sort();
        out
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::new();
        assert!(!t.enabled());
        t.count("x");
        t.add("x", 10);
        t.set_gauge("g", 5);
        t.observe_ns("h", 100);
        t.event("e", || panic!("detail closure must not run while disabled"));
        let s = t.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
        assert_eq!(t.journal_recent(10).len(), 0);
        assert!(t.timer().is_none());
    }

    #[test]
    fn enabled_records_and_clones_share() {
        let t = Telemetry::new();
        t.set_enabled(true);
        let t2 = t.clone();
        t.count("evals");
        t2.count("evals");
        t2.observe_ns("lat", 1_000);
        assert_eq!(t.snapshot().counter("evals"), Some(2));
        assert_eq!(t.histogram("lat").unwrap().count, 1);
    }

    #[test]
    fn timer_started_while_disabled_never_records() {
        let t = Telemetry::new();
        let started = t.timer();
        t.set_enabled(true);
        t.observe_since("lat", started);
        assert!(t.histogram("lat").is_none());
    }

    #[test]
    fn reset_clears_data_but_not_enabled() {
        let t = Telemetry::new();
        t.set_enabled(true);
        t.count("c");
        t.set_gauge("g", 1);
        t.observe_ns("h", 10);
        t.event("e", || "d".into());
        t.reset();
        assert!(t.enabled(), "reset must not disable");
        let s = t.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty());
        assert_eq!(t.journal_recent(100).len(), 0);
    }

    #[test]
    fn from_env_respects_variable() {
        // Avoid mutating the real environment: exercise only the
        // documented "unset means disabled" default here.
        std::env::remove_var(TELEMETRY_ENV_VAR);
        assert!(!Telemetry::from_env().enabled());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let t = Telemetry::new();
        t.set_enabled(true);
        t.count("zzz");
        t.count("aaa");
        t.count("mmm");
        let names: Vec<&str> = t.snapshot().counters.iter().map(|&(k, _)| k).collect();
        assert_eq!(names, vec!["aaa", "mmm", "zzz"]);
    }
}
