//! Causal spans: begin/end scopes with parent links and trace IDs.
//!
//! A span is one timed scope on the request path (a dispatched server
//! command, one `eval`, one proc body, one bytecode run, one backend
//! roundtrip). Spans nest through a per-store stack — the store itself
//! is single-threaded like the [`crate::Telemetry`] handle that owns
//! it, so each server worker's sessions get their own stacks for free —
//! and every span carries the [`TraceId`] of the root that opened its
//! trace, which is how a slow backend reply is attributed to the exact
//! session command that caused it.
//!
//! Timestamps are **virtual ticks**: a monotonic counter bumped once
//! per begin and once per end. Tick values order and nest spans exactly
//! like wall time would, but are deterministic by construction — the
//! span-causality tests assert whole trees verbatim. (Wall durations
//! stay the business of the latency histograms; spans answer *why*,
//! histograms answer *how long*.)
//!
//! Finished spans land in a bounded ring like the journal's: pushing at
//! capacity overwrites the oldest and counts it as dropped, so a
//! truncated trace is detectable instead of silent.

use std::fmt;

/// Default number of finished spans retained.
pub const DEFAULT_SPAN_CAPACITY: usize = 512;

/// A generation-stamped trace identifier, displayed `generation:serial`
/// — the same scheme as the server's `slot:generation` session IDs: the
/// generation bumps on every telemetry reset, so a trace ID from before
/// a reset can never collide with one issued after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId {
    /// Store generation (bumped by reset).
    pub generation: u32,
    /// Serial within the generation (1-based).
    pub serial: u64,
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.generation, self.serial)
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span serial (1-based, monotonic per store, never reused).
    pub id: u64,
    /// The enclosing span's id, or 0 for a trace root.
    pub parent: u64,
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// Scope kind, e.g. `serve.command`, `tcl.eval`, `ipc.roundtrip` (a
    /// fixed vocabulary, see `docs/telemetry.md`).
    pub kind: &'static str,
    /// Free-form detail (the command line, the proc name, …).
    pub detail: String,
    /// Virtual tick at begin.
    pub begin_tick: u64,
    /// Virtual tick at end.
    pub end_tick: u64,
}

/// Occupancy counters of a [`SpanStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Finished spans currently retained.
    pub retained: usize,
    /// Finished spans ever recorded (retained or dropped).
    pub total: u64,
    /// Finished spans overwritten by ring wraparound.
    pub dropped: u64,
    /// Ring capacity.
    pub capacity: usize,
    /// Spans currently open (stacked + detached).
    pub open: usize,
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: u64,
    trace: TraceId,
    kind: &'static str,
    detail: String,
    begin_tick: u64,
}

/// The span substrate: the active stack, the detached-span set and the
/// bounded ring of finished spans. Owned by a `Telemetry` store.
#[derive(Debug)]
pub struct SpanStore {
    ring: Vec<SpanRecord>,
    capacity: usize,
    /// Index the next overwrite lands on (meaningful once full).
    head: usize,
    total: u64,
    dropped: u64,
    stack: Vec<OpenSpan>,
    /// Spans that outlive the stack discipline (backend roundtrips):
    /// opened in one scope, closed by a later event.
    detached: Vec<OpenSpan>,
    tick: u64,
    next_span: u64,
    next_trace: u64,
    generation: u32,
    /// The most recent trace root (id + trace), kept after it closes so
    /// late events (a backend reply) can still attach to their cause.
    last_root: Option<(u64, TraceId)>,
}

impl Default for SpanStore {
    fn default() -> Self {
        SpanStore::new(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanStore {
    /// An empty store retaining at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Self {
        SpanStore {
            ring: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            total: 0,
            dropped: 0,
            stack: Vec::new(),
            detached: Vec::new(),
            tick: 0,
            next_span: 1,
            next_trace: 1,
            generation: 1,
            last_root: None,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn new_trace(&mut self) -> TraceId {
        let t = TraceId {
            generation: self.generation,
            serial: self.next_trace,
        };
        self.next_trace += 1;
        t
    }

    /// Opens a span as a child of the current stack top, or as the root
    /// of a fresh trace when the stack is empty. Returns the span id.
    pub fn begin(&mut self, kind: &'static str, detail: String) -> u64 {
        let (parent, trace) = match self.stack.last() {
            Some(top) => (top.id, top.trace),
            None => (0, self.new_trace()),
        };
        self.open(parent, trace, kind, detail, false)
    }

    /// Opens the root span of a fresh trace regardless of the stack
    /// (the per-dispatched-command entry point). Returns the span id.
    pub fn begin_root(&mut self, kind: &'static str, detail: String) -> u64 {
        let trace = self.new_trace();
        self.open(0, trace, kind, detail, false)
    }

    /// Opens a detached span attributed to the *active* trace: the stack
    /// top when one is open, else the most recent root (the command that
    /// just finished is what caused this roundtrip). Returns a token for
    /// [`end_detached`](Self::end_detached).
    pub fn begin_detached(&mut self, kind: &'static str, detail: String) -> u64 {
        let (parent, trace) = match self.stack.last() {
            Some(top) => (top.id, top.trace),
            None => match self.last_root {
                Some((id, trace)) => (id, trace),
                None => (0, self.new_trace()),
            },
        };
        self.open(parent, trace, kind, detail, true)
    }

    fn open(
        &mut self,
        parent: u64,
        trace: TraceId,
        kind: &'static str,
        detail: String,
        detached: bool,
    ) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        let begin_tick = self.next_tick();
        let span = OpenSpan {
            id,
            parent,
            trace,
            kind,
            detail,
            begin_tick,
        };
        if detached {
            self.detached.push(span);
        } else {
            if parent == 0 {
                self.last_root = Some((id, trace));
            }
            self.stack.push(span);
        }
        id
    }

    /// Closes the innermost open stacked span. A no-op on an empty
    /// stack (ends are unbalanced only across an enable/disable toggle,
    /// which clears the stack).
    pub fn end(&mut self) {
        if let Some(span) = self.stack.pop() {
            let end_tick = self.next_tick();
            self.finish(span, end_tick);
        }
    }

    /// Closes a detached span by its token. Unknown tokens (cleared by
    /// a toggle or reset) are a no-op.
    pub fn end_detached(&mut self, token: u64) {
        if let Some(i) = self.detached.iter().position(|s| s.id == token) {
            let span = self.detached.swap_remove(i);
            let end_tick = self.next_tick();
            self.finish(span, end_tick);
        }
    }

    fn finish(&mut self, span: OpenSpan, end_tick: u64) {
        let rec = SpanRecord {
            id: span.id,
            parent: span.parent,
            trace: span.trace,
            kind: span.kind,
            detail: span.detail,
            begin_tick: span.begin_tick,
            end_tick,
        };
        self.total += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// The trace of the innermost open span, or of the most recent root.
    pub fn active_trace(&self) -> Option<TraceId> {
        self.stack
            .last()
            .map(|s| s.trace)
            .or(self.last_root.map(|(_, t)| t))
    }

    /// The most recent `n` finished spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let take = n.min(self.ring.len());
        let len = self.ring.len();
        let start_logical = len - take;
        (0..take)
            .map(|i| {
                let logical = start_logical + i;
                let physical = if len < self.capacity {
                    logical
                } else {
                    (self.head + logical) % self.capacity
                };
                self.ring[physical].clone()
            })
            .collect()
    }

    /// Occupancy counters.
    pub fn stats(&self) -> SpanStats {
        SpanStats {
            retained: self.ring.len(),
            total: self.total,
            dropped: self.dropped,
            capacity: self.capacity,
            open: self.stack.len() + self.detached.len(),
        }
    }

    /// Drops every open and finished span (counters keep counting).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.head = 0;
        self.stack.clear();
        self.detached.clear();
        self.last_root = None;
    }

    /// Abandons open spans only (an enable/disable toggle: spans begun
    /// under the other setting must not pair with future ends).
    pub fn clear_open(&mut self) {
        self.stack.clear();
        self.detached.clear();
    }

    /// A full reset: everything cleared, ticks and serials restarted,
    /// and the generation bumped so pre-reset trace IDs stay unique.
    pub fn reset(&mut self) {
        let generation = self.generation + 1;
        *self = SpanStore::new(self.capacity);
        self.generation = generation;
    }

    /// Replaces the ring with an empty one of the given capacity.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.ring.clear();
        self.head = 0;
        self.capacity = capacity.max(1);
    }
}

/// Renders finished spans as an indented causal tree, two spaces per
/// nesting level, each line `kind trace [begin,end] detail` (the detail
/// is omitted when empty). Spans whose parent is not in the set —
/// dropped by the ring, or still open — render at top level. Children
/// are ordered by span id, i.e. chronologically.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut roots: Vec<usize> = Vec::new();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let index_of = |id: u64| spans.iter().position(|s| s.id == id);
    for (i, s) in spans.iter().enumerate() {
        match index_of(s.parent) {
            Some(p) if s.parent != 0 => children[p].push(i),
            _ => roots.push(i),
        }
    }
    let by_id = |list: &mut Vec<usize>| list.sort_by_key(|&i| spans[i].id);
    by_id(&mut roots);
    for list in &mut children {
        by_id(list);
    }
    fn emit(
        out: &mut String,
        spans: &[SpanRecord],
        children: &[Vec<usize>],
        i: usize,
        depth: usize,
    ) {
        let s = &spans[i];
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!(
            "{} {} [{},{}]",
            s.kind, s.trace, s.begin_tick, s.end_tick
        ));
        if !s.detail.is_empty() {
            out.push(' ');
            out.push_str(&s.detail);
        }
        out.push('\n');
        for &c in &children[i] {
            emit(out, spans, children, c, depth + 1);
        }
    }
    let mut out = String::new();
    for r in roots {
        emit(&mut out, spans, &children, r, 0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_parents_and_ticks() {
        let mut s = SpanStore::new(16);
        s.begin_root("root", "cmd".into());
        s.begin("inner", String::new());
        s.end();
        s.end();
        let spans = s.recent(10);
        assert_eq!(spans.len(), 2);
        // Oldest-first: the inner span finished first.
        assert_eq!(spans[0].kind, "inner");
        assert_eq!(spans[0].parent, 1);
        assert_eq!(spans[1].kind, "root");
        assert_eq!(spans[1].parent, 0);
        assert_eq!(spans[0].trace, spans[1].trace, "children share the trace");
        assert_eq!(
            (
                spans[1].begin_tick,
                spans[0].begin_tick,
                spans[0].end_tick,
                spans[1].end_tick
            ),
            (1, 2, 3, 4),
            "ticks nest like wall time"
        );
    }

    #[test]
    fn begin_root_always_opens_a_fresh_trace() {
        let mut s = SpanStore::new(16);
        s.begin_root("a", String::new());
        s.end();
        s.begin_root("b", String::new());
        s.end();
        let spans = s.recent(10);
        assert_eq!(spans[0].trace.serial, 1);
        assert_eq!(spans[1].trace.serial, 2);
    }

    #[test]
    fn detached_span_attaches_to_last_root_after_it_closed() {
        let mut s = SpanStore::new(16);
        s.begin_root("cmd", String::new());
        s.end();
        let token = s.begin_detached("roundtrip", String::new());
        s.end_detached(token);
        let spans = s.recent(10);
        assert_eq!(spans[1].kind, "roundtrip");
        assert_eq!(spans[1].parent, spans[0].id, "parented to the closed root");
        assert_eq!(spans[1].trace, spans[0].trace, "shares the trace id");
    }

    #[test]
    fn ring_overwrites_and_counts_dropped() {
        let mut s = SpanStore::new(2);
        for _ in 0..4 {
            s.begin_root("x", String::new());
            s.end();
        }
        let stats = s.stats();
        assert_eq!(stats.retained, 2);
        assert_eq!(stats.total, 4);
        assert_eq!(stats.dropped, 2);
        let ids: Vec<u64> = s.recent(10).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 4], "most recent survive, oldest first");
    }

    #[test]
    fn reset_bumps_generation() {
        let mut s = SpanStore::new(4);
        s.begin_root("a", String::new());
        s.end();
        assert_eq!(s.recent(1)[0].trace.to_string(), "1:1");
        s.reset();
        assert!(s.recent(10).is_empty());
        s.begin_root("b", String::new());
        s.end();
        assert_eq!(s.recent(1)[0].trace.to_string(), "2:1");
    }

    #[test]
    fn unbalanced_end_is_a_no_op() {
        let mut s = SpanStore::new(4);
        s.end();
        s.end_detached(99);
        assert_eq!(s.stats().total, 0);
    }

    #[test]
    fn tree_renders_verbatim() {
        let mut s = SpanStore::new(16);
        s.begin_root("serve.command", "0:1 %echo hi".into());
        s.begin("tcl.eval", "echo hi".into());
        s.end();
        s.end();
        let tree = render_tree(&s.recent(10));
        assert_eq!(
            tree,
            "serve.command 1:1 [1,4] 0:1 %echo hi\n  tcl.eval 1:1 [2,3] echo hi\n"
        );
    }

    #[test]
    fn orphans_render_at_top_level() {
        let mut s = SpanStore::new(1);
        s.begin_root("root", String::new());
        s.begin("a", String::new());
        s.end();
        s.begin("b", String::new());
        s.end();
        s.end();
        // Capacity 1: only the root survives; a and b were overwritten.
        let tree = render_tree(&s.recent(10));
        assert_eq!(tree, "root 1:1 [1,6]\n");
    }
}
