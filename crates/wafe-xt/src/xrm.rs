//! The Xrm resource database.
//!
//! Specification lines look like `*Font: fixed` or
//! `wafe.topLevel.form.label.foreground: blue`. Each component matches a
//! widget's instance *name* or its *class*; a loose binding (`*`) skips
//! any number of levels. Queries resolve by the X precedence rules:
//! more-specific entries win, tight beats loose, name beats class, and
//! among equal matches the latest insertion wins (which is what makes
//! `mergeResources` an override mechanism).

/// Binding preceding a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// `.` — exactly one level.
    Tight,
    /// `*` — any number of levels.
    Loose,
}

#[derive(Debug, Clone)]
struct Entry {
    components: Vec<(Binding, String)>,
    value: String,
    serial: u64,
}

/// The resource database.
#[derive(Debug, Default, Clone)]
pub struct XrmDb {
    entries: Vec<Entry>,
    next_serial: u64,
}

impl XrmDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of specification lines stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no specifications are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses and inserts one specification line (`binding-list: value`).
    ///
    /// Returns false for malformed lines (no colon, empty key).
    pub fn insert_line(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('!') {
            return false;
        }
        let colon = match line.find(':') {
            Some(c) => c,
            None => return false,
        };
        let (key, value) = line.split_at(colon);
        let value = value[1..].trim().to_string();
        let components = match parse_key(key.trim()) {
            Some(c) if !c.is_empty() => c,
            _ => return false,
        };
        self.entries.push(Entry {
            components,
            value,
            serial: self.next_serial,
        });
        self.next_serial += 1;
        true
    }

    /// Inserts a key/value with an explicit pre-parsed key, e.g.
    /// `("*", "Font")` pairs. Convenience for tests.
    pub fn insert(&mut self, key: &str, value: &str) -> bool {
        self.insert_line(&format!("{key}: {value}"))
    }

    /// Merges a multi-line resource text (resource-file format).
    /// Returns how many lines were accepted.
    pub fn merge_text(&mut self, text: &str) -> usize {
        let mut n = 0;
        for line in text.lines() {
            if self.insert_line(line) {
                n += 1;
            }
        }
        n
    }

    /// Renders every stored specification back to its `key: value` line
    /// form, in insertion order. Replaying the lines through
    /// [`insert_line`](Self::insert_line) rebuilds an equivalent
    /// database (serials are assigned by insertion order, so precedence
    /// ties resolve identically) — this is what the session checkpoint
    /// serializes.
    pub fn lines(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| {
                let mut key = String::new();
                for (i, (binding, comp)) in e.components.iter().enumerate() {
                    match binding {
                        Binding::Loose => key.push('*'),
                        Binding::Tight if i > 0 => key.push('.'),
                        Binding::Tight => {}
                    }
                    key.push_str(comp);
                }
                format!("{key}: {}", e.value)
            })
            .collect()
    }

    /// Looks up the value for a widget described by its full instance
    /// name path and class path, plus the resource name and class.
    ///
    /// `names` and `classes` run from the application shell down to the
    /// widget itself and must have equal length. The resource name/class
    /// forms the final component of the query.
    pub fn query(
        &self,
        names: &[&str],
        classes: &[&str],
        res_name: &str,
        res_class: &str,
    ) -> Option<String> {
        debug_assert_eq!(names.len(), classes.len());
        let mut qnames: Vec<&str> = names.to_vec();
        qnames.push(res_name);
        let mut qclasses: Vec<&str> = classes.to_vec();
        qclasses.push(res_class);
        let mut best: Option<(Vec<u8>, u64, &str)> = None;
        for e in &self.entries {
            if let Some(score) = match_entry(&e.components, &qnames, &qclasses) {
                let candidate = (score, e.serial, e.value.as_str());
                best = Some(match best {
                    None => candidate,
                    Some(b) => {
                        // Higher score wins; ties resolved by later serial.
                        if candidate.0 > b.0 || (candidate.0 == b.0 && candidate.1 > b.1) {
                            candidate
                        } else {
                            b
                        }
                    }
                });
            }
        }
        best.map(|(_, _, v)| v.to_string())
    }
}

/// Parses the key part: components separated by `.` or `*`.
fn parse_key(key: &str) -> Option<Vec<(Binding, String)>> {
    let mut out = Vec::new();
    let mut binding = Binding::Tight;
    let mut cur = String::new();
    for c in key.chars() {
        match c {
            '.' | '*' => {
                if !cur.is_empty() {
                    out.push((binding, std::mem::take(&mut cur)));
                }
                binding = if c == '*' {
                    Binding::Loose
                } else {
                    Binding::Tight
                };
                // `**` or `*.` collapse to loose.
                if c == '*' {
                    binding = Binding::Loose;
                }
            }
            c if c.is_whitespace() => return None,
            c => cur.push(c),
        }
    }
    if cur.is_empty() {
        return None;
    }
    out.push((binding, cur));
    Some(out)
}

/// Matches entry components against the query levels; on success returns
/// a per-level score vector (lexicographically comparable, more-specific
/// wins). Per level: 3 = name match via tight binding, 2 = class match
/// via tight binding, 1 = matched via loose skip path.
fn match_entry(
    components: &[(Binding, String)],
    names: &[&str],
    classes: &[&str],
) -> Option<Vec<u8>> {
    fn rec(
        comps: &[(Binding, String)],
        names: &[&str],
        classes: &[&str],
        level: usize,
        score: &mut Vec<u8>,
        best: &mut Option<Vec<u8>>,
    ) {
        if comps.is_empty() {
            if level == names.len() {
                let cand = score.clone();
                if best.as_ref().map(|b| &cand > b).unwrap_or(true) {
                    *best = Some(cand);
                }
            }
            return;
        }
        if level >= names.len() {
            return;
        }
        let (binding, comp) = &comps[0];
        // Try to match this component at the current level.
        let name_hit = comp == names[level] || comp == "?";
        let class_hit = comp == classes[level];
        if name_hit || class_hit {
            let pts = if name_hit { 3 } else { 2 };
            score.push(pts);
            rec(&comps[1..], names, classes, level + 1, score, best);
            score.pop();
        }
        // Loose binding may also skip this level entirely.
        if *binding == Binding::Loose {
            score.push(1);
            rec(comps, names, classes, level + 1, score, best);
            score.pop();
        }
    }
    // The first component's binding is conceptually preceded by the root:
    // a tight first binding must match level 0; loose may skip.
    let mut best = None;
    let mut score = Vec::new();
    rec(components, names, classes, 0, &mut score, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(db: &XrmDb, path: &str, classes: &str, res: &str, res_class: &str) -> Option<String> {
        let names: Vec<&str> = path.split('.').collect();
        let cls: Vec<&str> = classes.split('.').collect();
        db.query(&names, &cls, res, res_class)
    }

    #[test]
    fn loose_binding_matches_any_depth() {
        let mut db = XrmDb::new();
        db.insert("*Font", "fixed");
        assert_eq!(
            q(
                &db,
                "wafe.topLevel.form.label",
                "Wafe.TopLevelShell.Form.Label",
                "font",
                "Font"
            ),
            Some("fixed".into())
        );
        assert_eq!(q(&db, "wafe", "Wafe", "font", "Font"), Some("fixed".into()));
    }

    #[test]
    fn paper_merge_resources_example() {
        // The paper: *Font fixed, *foreground blue, *background red apply
        // to every widget created in the application.
        let mut db = XrmDb::new();
        db.merge_text("*Font: fixed\n*foreground: blue\n*background: red");
        assert_eq!(db.len(), 3);
        for widget in ["wafe.topLevel.hello", "wafe.topLevel.form.deep.label"] {
            let classes = "Wafe.TopLevelShell.Label";
            let _ = classes;
            let names: Vec<&str> = widget.split('.').collect();
            let cls: Vec<&str> = names.iter().map(|_| "Any").collect();
            assert_eq!(
                db.query(&names, &cls, "foreground", "Foreground"),
                Some("blue".into())
            );
            assert_eq!(
                db.query(&names, &cls, "background", "Background"),
                Some("red".into())
            );
        }
    }

    #[test]
    fn instance_beats_class() {
        let mut db = XrmDb::new();
        db.insert("*Label.foreground", "classval");
        db.insert("*mylabel.foreground", "nameval");
        assert_eq!(
            q(
                &db,
                "app.top.mylabel",
                "App.Shell.Label",
                "foreground",
                "Foreground"
            ),
            Some("nameval".into())
        );
    }

    #[test]
    fn more_specific_beats_less_specific() {
        let mut db = XrmDb::new();
        db.insert("*foreground", "loose");
        db.insert("app.top.l.foreground", "tight");
        assert_eq!(
            q(
                &db,
                "app.top.l",
                "App.Shell.Label",
                "foreground",
                "Foreground"
            ),
            Some("tight".into())
        );
    }

    #[test]
    fn later_insertion_wins_ties() {
        let mut db = XrmDb::new();
        db.insert("*background", "first");
        db.insert("*background", "second");
        assert_eq!(
            q(&db, "app.w", "App.Widget", "background", "Background"),
            Some("second".into())
        );
    }

    #[test]
    fn tight_binding_must_match_level() {
        let mut db = XrmDb::new();
        db.insert("app.label.foreground", "v");
        // Path has an extra level: tight chain cannot skip it.
        assert_eq!(
            q(
                &db,
                "app.box.label",
                "App.Box.Label",
                "foreground",
                "Foreground"
            ),
            None
        );
        assert_eq!(
            q(&db, "app.label", "App.Label", "foreground", "Foreground"),
            Some("v".into())
        );
    }

    #[test]
    fn resource_class_matching() {
        let mut db = XrmDb::new();
        db.insert("*Foreground", "viaclass");
        assert_eq!(
            q(&db, "app.l", "App.Label", "foreground", "Foreground"),
            Some("viaclass".into())
        );
    }

    #[test]
    fn question_mark_matches_any_name() {
        let mut db = XrmDb::new();
        db.insert("app.?.foreground", "v");
        assert_eq!(
            q(&db, "app.anything", "App.Label", "foreground", "Foreground"),
            Some("v".into())
        );
    }

    #[test]
    fn malformed_lines_rejected() {
        let mut db = XrmDb::new();
        assert!(!db.insert_line("no colon here"));
        assert!(!db.insert_line(": novalue"));
        assert!(!db.insert_line(""));
        assert!(!db.insert_line("! comment: line"));
        assert!(db.is_empty());
    }

    #[test]
    fn no_match_returns_none() {
        let mut db = XrmDb::new();
        db.insert("*font", "fixed");
        assert_eq!(q(&db, "a.b", "A.B", "foreground", "Foreground"), None);
    }

    #[test]
    fn value_with_spaces_kept() {
        let mut db = XrmDb::new();
        db.insert_line("*label: Hello World ");
        assert_eq!(
            q(&db, "a.l", "A.Label", "label", "Label"),
            Some("Hello World".into())
        );
    }
}
