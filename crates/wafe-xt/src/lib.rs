//! A reimplementation of the X Toolkit Intrinsics (Xt).
//!
//! Wafe sits directly on the X11R5 Intrinsics; this crate rebuilds the
//! Intrinsics model the paper depends on:
//!
//! * **Widget classes** with flattened resource lists, class methods
//!   (initialize / redisplay / layout / preferred size) and class action
//!   tables ([`widget`]).
//! * **The resource manager**: typed resource values with per-widget
//!   storage and Wafe's memory-accounting discipline ("every time a
//!   string resource, a callback - or other objects larger than one word
//!   - are updated, the old value is freed") ([`resource`], [`memstats`]).
//! * **The Xrm database** with tight/loose bindings, class vs instance
//!   components and precedence — what `mergeResources` and resource
//!   files merge into ([`xrm`]).
//! * **Type converters** from string to every resource type, extensible
//!   exactly like `XtAppAddConverter` ([`converter`]).
//! * **The translation manager**: parsing of translation tables
//!   (`<EnterWindow>: PopupMenu()`), override/augment/replace merging and
//!   event matching ([`translation`]).
//! * **Actions and callback lists**, including the predefined popup
//!   callbacks of the paper's table (none/exclusive/nonexclusive/
//!   popdown/position/positionCursor) ([`action`], [`callback`]).
//! * **The application context** tying widget tree, displays, realize,
//!   geometry management, popups with grab kinds, and the event dispatch
//!   loop together ([`app`]).
//!
//! Application-level code (Tcl scripts in Wafe) is invoked through a
//! host-call queue: actions and callbacks that belong to the embedding
//! are queued as [`app::HostCall`]s, which the Wafe layer drains and
//! hands to its interpreter — the analogue of Xt calling back into C
//! application code.

pub mod action;
pub mod app;
pub mod callback;
pub mod converter;
pub mod dnd;
pub mod memstats;
pub mod resource;
pub mod translation;
pub mod widget;
pub mod xrm;

pub use app::{HostCall, XtApp, XtError};
pub use callback::{CallbackItem, PredefinedCallback};
pub use memstats::MemStats;
pub use resource::{ResType, ResourceSpec, ResourceValue};
pub use translation::{MergeMode, TranslationTable};
pub use widget::{WidgetClass, WidgetId, WidgetOps};
pub use xrm::XrmDb;
