//! Action procedures.
//!
//! Actions are named procedures bound by translation tables. The X
//! Toolkit has per-class action tables plus a global application table
//! (`XtAppAddActions`); lookup tries the widget's class first, then the
//! global table — Wafe registers its `exec` action globally.

use std::rc::Rc;

use wafe_xproto::Event;

use crate::app::XtApp;
use crate::widget::WidgetId;

/// Signature of an action procedure (the analogue of `XtActionProc`).
pub type ActionFn = Rc<dyn Fn(&mut XtApp, WidgetId, &Event, &[String])>;

/// A table of named actions.
#[derive(Default, Clone)]
pub struct ActionTable {
    entries: Vec<(String, ActionFn)>,
}

impl ActionTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) an action.
    pub fn add<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&mut XtApp, WidgetId, &Event, &[String]) + 'static,
    {
        self.add_rc(name, Rc::new(f));
    }

    /// Adds an already-shared action procedure.
    pub fn add_rc(&mut self, name: &str, f: ActionFn) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 = f;
        } else {
            self.entries.push((name.to_string(), f));
        }
    }

    /// Looks up an action by name.
    pub fn get(&self, name: &str) -> Option<ActionFn> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f.clone())
    }

    /// Names of all registered actions.
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for ActionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActionTable")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_replace() {
        let mut t = ActionTable::new();
        assert!(t.is_empty());
        t.add("beep", |_, _, _, _| {});
        assert_eq!(t.len(), 1);
        assert!(t.get("beep").is_some());
        assert!(t.get("nope").is_none());
        t.add("beep", |_, _, _, _| {});
        assert_eq!(t.len(), 1, "replace, not duplicate");
        assert_eq!(t.names(), vec!["beep"]);
    }
}
