//! Typed resource values and per-class resource specifications.

use std::rc::Rc;

use wafe_xproto::font::FontId;
use wafe_xproto::pixmap::Pixmap;
use wafe_xproto::Pixel;

use crate::callback::CallbackItem;
use crate::translation::TranslationTable;

/// The type of a resource, from the widget class's resource list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResType {
    /// `XtRString`.
    String,
    /// `XtRInt`.
    Int,
    /// `XtRDimension` (unsigned widths/heights).
    Dimension,
    /// `XtRPosition` (signed coordinates).
    Position,
    /// `XtRBoolean`.
    Boolean,
    /// `XtRPixel` (a colour).
    Pixel,
    /// `XtRFontStruct` / `XtRFont`.
    Font,
    /// `XtRJustify` (left/center/right).
    Justify,
    /// `XtROrientation` (horizontal/vertical).
    Orientation,
    /// `XtRCallback` — a callback list (Wafe's callback converter).
    Callback,
    /// `XtRTranslationTable`.
    Translations,
    /// `XtRBitmap`/`XtRPixmap` (Wafe's extended XBM/XPM converter).
    Pixmap,
    /// A list of strings (the Athena List widget's items).
    StringList,
    /// A compound string (Motif `XmString`, Wafe's `&`-code converter).
    Compound,
    /// A cursor name.
    Cursor,
    /// A widget reference by name (Form constraints `fromVert` etc.).
    Widget,
}

/// Text justification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Justify {
    /// Flush left.
    Left,
    /// Centered.
    Center,
    /// Flush right.
    Right,
}

/// Layout orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Side by side.
    Horizontal,
    /// Stacked.
    Vertical,
}

/// One segment of a compound string (Motif `XmString`).
#[derive(Debug, Clone, PartialEq)]
pub struct CompoundSegment {
    /// The text of the segment.
    pub text: String,
    /// The font-list tag selecting the segment's font (empty = default).
    pub font_tag: String,
    /// True if this segment renders right-to-left (`&rl` in Wafe's
    /// converter syntax).
    pub right_to_left: bool,
}

/// A typed resource value.
#[derive(Debug, Clone, PartialEq)]
pub enum ResourceValue {
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A dimension (width/height).
    Dim(u32),
    /// A position (x/y).
    Pos(i32),
    /// A boolean.
    Bool(bool),
    /// A colour pixel.
    Pixel(Pixel),
    /// A resolved font.
    Font(FontId),
    /// Justification.
    Justify(Justify),
    /// Orientation.
    Orientation(Orientation),
    /// A callback list.
    Callback(Vec<CallbackItem>),
    /// A parsed translation table.
    Translations(TranslationTable),
    /// A decoded pixmap.
    Pixmap(Rc<Pixmap>),
    /// A list of strings.
    StrList(Vec<String>),
    /// A compound string.
    Compound(Vec<CompoundSegment>),
    /// A named cursor.
    Cursor(String),
    /// A widget reference by name (empty = none).
    Widget(String),
}

impl ResourceValue {
    /// The logical heap size used for memory accounting — "objects larger
    /// than one word" carry their payload size; word-sized values are 0.
    pub fn tracked_size(&self) -> usize {
        match self {
            ResourceValue::Str(s) => s.len(),
            ResourceValue::Callback(items) => items.iter().map(|c| c.tracked_size()).sum(),
            ResourceValue::Translations(t) => t.tracked_size(),
            ResourceValue::Pixmap(p) => p.data.len() * 4,
            ResourceValue::StrList(l) => l.iter().map(String::len).sum(),
            ResourceValue::Compound(segs) => segs.iter().map(|s| s.text.len()).sum(),
            ResourceValue::Cursor(s) => s.len(),
            ResourceValue::Widget(s) => s.len(),
            _ => 0,
        }
    }

    /// Renders the value back to its string form — the reverse conversion
    /// Wafe's `getValues` performs (the paper: "Opposite to the X Toolkit
    /// it is possible in Wafe to obtain the value of a callback
    /// resource").
    pub fn to_display_string(&self) -> String {
        match self {
            ResourceValue::Str(s) => s.clone(),
            ResourceValue::Int(v) => v.to_string(),
            ResourceValue::Dim(v) => v.to_string(),
            ResourceValue::Pos(v) => v.to_string(),
            ResourceValue::Bool(v) => if *v { "True" } else { "False" }.into(),
            ResourceValue::Pixel(p) => format!("#{p:06x}"),
            ResourceValue::Font(f) => format!("font-{}", f.0),
            ResourceValue::Justify(Justify::Left) => "left".into(),
            ResourceValue::Justify(Justify::Center) => "center".into(),
            ResourceValue::Justify(Justify::Right) => "right".into(),
            ResourceValue::Orientation(Orientation::Horizontal) => "horizontal".into(),
            ResourceValue::Orientation(Orientation::Vertical) => "vertical".into(),
            ResourceValue::Callback(items) => items
                .iter()
                .map(CallbackItem::to_display_string)
                .collect::<Vec<_>>()
                .join("\n"),
            ResourceValue::Translations(t) => t.to_display_string(),
            ResourceValue::Pixmap(p) => format!("pixmap-{}x{}", p.width, p.height),
            ResourceValue::StrList(l) => l.join(","),
            ResourceValue::Compound(segs) => segs.iter().map(|s| s.text.as_str()).collect(),
            ResourceValue::Cursor(s) => s.clone(),
            ResourceValue::Widget(s) => s.clone(),
        }
    }

    /// The value's type tag.
    pub fn res_type(&self) -> ResType {
        match self {
            ResourceValue::Str(_) => ResType::String,
            ResourceValue::Int(_) => ResType::Int,
            ResourceValue::Dim(_) => ResType::Dimension,
            ResourceValue::Pos(_) => ResType::Position,
            ResourceValue::Bool(_) => ResType::Boolean,
            ResourceValue::Pixel(_) => ResType::Pixel,
            ResourceValue::Font(_) => ResType::Font,
            ResourceValue::Justify(_) => ResType::Justify,
            ResourceValue::Orientation(_) => ResType::Orientation,
            ResourceValue::Callback(_) => ResType::Callback,
            ResourceValue::Translations(_) => ResType::Translations,
            ResourceValue::Pixmap(_) => ResType::Pixmap,
            ResourceValue::StrList(_) => ResType::StringList,
            ResourceValue::Compound(_) => ResType::Compound,
            ResourceValue::Cursor(_) => ResType::Cursor,
            ResourceValue::Widget(_) => ResType::Widget,
        }
    }
}

/// One entry of a widget class's resource list (`XtResource`).
#[derive(Debug, Clone)]
pub struct ResourceSpec {
    /// Instance name, e.g. `borderWidth`.
    pub name: &'static str,
    /// Class name, e.g. `BorderWidth`.
    pub class: &'static str,
    /// The resource's type.
    pub ty: ResType,
    /// Default value in string form, converted at initialisation.
    pub default: &'static str,
}

impl ResourceSpec {
    /// Shorthand constructor.
    pub const fn new(
        name: &'static str,
        class: &'static str,
        ty: ResType,
        default: &'static str,
    ) -> Self {
        ResourceSpec {
            name,
            class,
            ty,
            default,
        }
    }
}

/// The Core resource list shared by all widgets (X11R5 core + the
/// accelerators slot), 18 entries.
pub fn core_resources() -> Vec<ResourceSpec> {
    use ResType::*;
    vec![
        ResourceSpec::new("destroyCallback", "Callback", Callback, ""),
        ResourceSpec::new("x", "Position", Position, "0"),
        ResourceSpec::new("y", "Position", Position, "0"),
        ResourceSpec::new("width", "Width", Dimension, "0"),
        ResourceSpec::new("height", "Height", Dimension, "0"),
        ResourceSpec::new("borderWidth", "BorderWidth", Dimension, "1"),
        ResourceSpec::new("borderColor", "BorderColor", Pixel, "black"),
        ResourceSpec::new("borderPixmap", "Pixmap", ResType::Pixmap, ""),
        ResourceSpec::new("background", "Background", Pixel, "white"),
        ResourceSpec::new("backgroundPixmap", "Pixmap", ResType::Pixmap, ""),
        ResourceSpec::new("colormap", "Colormap", Int, "0"),
        ResourceSpec::new("depth", "Depth", Int, "24"),
        ResourceSpec::new("screen", "Screen", Int, "0"),
        ResourceSpec::new("sensitive", "Sensitive", Boolean, "true"),
        ResourceSpec::new("ancestorSensitive", "Sensitive", Boolean, "true"),
        ResourceSpec::new("mappedWhenManaged", "MappedWhenManaged", Boolean, "true"),
        ResourceSpec::new("translations", "Translations", Translations, ""),
        ResourceSpec::new("accelerators", "Accelerators", Translations, ""),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_sizes() {
        assert_eq!(ResourceValue::Str("hello".into()).tracked_size(), 5);
        assert_eq!(ResourceValue::Int(5).tracked_size(), 0);
        assert_eq!(ResourceValue::Bool(true).tracked_size(), 0);
        assert_eq!(
            ResourceValue::StrList(vec!["ab".into(), "cde".into()]).tracked_size(),
            5
        );
    }

    #[test]
    fn display_strings() {
        assert_eq!(ResourceValue::Bool(true).to_display_string(), "True");
        assert_eq!(ResourceValue::Dim(42).to_display_string(), "42");
        assert_eq!(
            ResourceValue::Pixel(0xff0000).to_display_string(),
            "#ff0000"
        );
        assert_eq!(
            ResourceValue::Justify(Justify::Center).to_display_string(),
            "center"
        );
    }

    #[test]
    fn core_list_is_18() {
        let core = core_resources();
        assert_eq!(core.len(), 18);
        assert!(core.iter().any(|r| r.name == "destroyCallback"));
        assert!(core.iter().any(|r| r.name == "ancestorSensitive"));
        // No duplicate names.
        let mut names: Vec<_> = core.iter().map(|r| r.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn res_type_tags() {
        assert_eq!(ResourceValue::Str("x".into()).res_type(), ResType::String);
        assert_eq!(ResourceValue::Pixel(0).res_type(), ResType::Pixel);
        assert_eq!(
            ResourceValue::Callback(vec![]).res_type(),
            ResType::Callback
        );
    }
}
