//! Resource type converters.
//!
//! "Converters are an Intrinsics based concept which is used to implement
//! conversion for the resources of a widget. In Wafe, a converter always
//! converts a string to a certain target data type; the X Toolkit
//! provides easy mechanisms to provide additional converters." —
//! the registry here is that mechanism: every [`ResType`] has a default
//! converter, and the embedding can register replacements
//! (`XtAppAddConverter`), which is how Wafe installs its Callback,
//! Pixmap and XmString converters.

use std::collections::HashMap;
use std::rc::Rc;

use wafe_xproto::font::FontDb;
use wafe_xproto::pixmap::{parse_xbm, parse_xpm};

use crate::callback::CallbackItem;
use crate::resource::{CompoundSegment, Justify, Orientation, ResType, ResourceValue};
use crate::translation::TranslationTable;

/// Context available to converters.
pub struct ConvertCtx<'a> {
    /// The display's font database.
    pub fonts: &'a FontDb,
}

/// A converter procedure: string to typed value, or an error message.
pub type ConverterFn = Rc<dyn Fn(&str, &ConvertCtx<'_>) -> Result<ResourceValue, String>>;

/// The converter registry.
#[derive(Clone)]
pub struct ConverterRegistry {
    converters: HashMap<ResType, ConverterFn>,
    /// How many converters were registered beyond the defaults — the
    /// "additional converter procedures" the paper counts as Wafe's own.
    additional: usize,
}

impl Default for ConverterRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ConverterRegistry {
    /// Creates a registry with the standard Xt converters installed.
    pub fn new() -> Self {
        let mut r = ConverterRegistry {
            converters: HashMap::new(),
            additional: 0,
        };
        r.install_defaults();
        r.additional = 0;
        r
    }

    fn install_defaults(&mut self) {
        self.register(ResType::String, |s, _| {
            Ok(ResourceValue::Str(s.to_string()))
        });
        self.register(ResType::Int, |s, _| {
            s.trim()
                .parse::<i64>()
                .map(ResourceValue::Int)
                .map_err(|_| format!("Cannot convert string \"{s}\" to type Int"))
        });
        self.register(ResType::Dimension, |s, _| {
            s.trim()
                .parse::<u32>()
                .map(ResourceValue::Dim)
                .map_err(|_| format!("Cannot convert string \"{s}\" to type Dimension"))
        });
        self.register(ResType::Position, |s, _| {
            s.trim()
                .parse::<i32>()
                .map(ResourceValue::Pos)
                .map_err(|_| format!("Cannot convert string \"{s}\" to type Position"))
        });
        self.register(ResType::Boolean, |s, _| {
            match s.trim().to_lowercase().as_str() {
                "true" | "yes" | "on" | "1" => Ok(ResourceValue::Bool(true)),
                "false" | "no" | "off" | "0" => Ok(ResourceValue::Bool(false)),
                _ => Err(format!("Cannot convert string \"{s}\" to type Boolean")),
            }
        });
        self.register(ResType::Pixel, |s, _| {
            wafe_xproto::lookup_color(s)
                .map(ResourceValue::Pixel)
                .ok_or_else(|| format!("Cannot convert string \"{s}\" to type Pixel"))
        });
        self.register(ResType::Font, |s, ctx| {
            ctx.fonts
                .resolve(s)
                .map(ResourceValue::Font)
                .ok_or_else(|| format!("Cannot convert string \"{s}\" to type FontStruct"))
        });
        self.register(ResType::Justify, |s, _| {
            match s.trim().to_lowercase().as_str() {
                "left" => Ok(ResourceValue::Justify(Justify::Left)),
                "center" | "centre" => Ok(ResourceValue::Justify(Justify::Center)),
                "right" => Ok(ResourceValue::Justify(Justify::Right)),
                _ => Err(format!("Cannot convert string \"{s}\" to type Justify")),
            }
        });
        self.register(ResType::Orientation, |s, _| {
            match s.trim().to_lowercase().as_str() {
                "horizontal" => Ok(ResourceValue::Orientation(Orientation::Horizontal)),
                "vertical" => Ok(ResourceValue::Orientation(Orientation::Vertical)),
                _ => Err(format!("Cannot convert string \"{s}\" to type Orientation")),
            }
        });
        // Wafe's callback converter: "the callback converter is used to
        // bind the execution of a Wafe command to a widget's callback
        // resource". An empty string is an empty callback list.
        self.register(ResType::Callback, |s, _| {
            if s.is_empty() {
                Ok(ResourceValue::Callback(Vec::new()))
            } else {
                Ok(ResourceValue::Callback(vec![CallbackItem::Script(
                    s.to_string(),
                )]))
            }
        });
        self.register(ResType::Translations, |s, _| {
            TranslationTable::parse(s)
                .map(ResourceValue::Translations)
                .map_err(|e| format!("translation table conversion failed: {e}"))
        });
        // Wafe's extended String-to-Bitmap converter: try XBM, fall back
        // to XPM (the paper's documented behaviour). The string may be a
        // file path or inline image text; an empty string is "no pixmap",
        // represented as a 0x0 image.
        self.register(ResType::Pixmap, |s, _| {
            if s.is_empty() {
                return Ok(ResourceValue::Pixmap(Rc::new(wafe_xproto::Pixmap {
                    width: 0,
                    height: 0,
                    data: Vec::new(),
                    mask: Vec::new(),
                })));
            }
            let text = match std::fs::read_to_string(s) {
                Ok(t) => t,
                Err(_) => s.to_string(),
            };
            parse_xbm(&text, 0x000000, 0xffffff)
                .or_else(|| parse_xpm(&text))
                .map(|p| ResourceValue::Pixmap(Rc::new(p)))
                .ok_or_else(|| format!("Cannot convert string \"{s}\" to type Pixmap"))
        });
        self.register(ResType::StringList, |s, _| {
            if s.is_empty() {
                Ok(ResourceValue::StrList(Vec::new()))
            } else {
                Ok(ResourceValue::StrList(
                    s.split(',').map(|e| e.trim().to_string()).collect(),
                ))
            }
        });
        // Plain-compound default: one segment, default font. The Motif
        // layer replaces this with the full `&`-code converter.
        self.register(ResType::Compound, |s, _| {
            Ok(ResourceValue::Compound(vec![CompoundSegment {
                text: s.to_string(),
                font_tag: String::new(),
                right_to_left: false,
            }]))
        });
        self.register(ResType::Cursor, |s, _| {
            Ok(ResourceValue::Cursor(s.to_string()))
        });
        self.register(ResType::Widget, |s, _| {
            Ok(ResourceValue::Widget(s.to_string()))
        });
    }

    /// Registers (or replaces) the converter for a type
    /// (`XtAppAddConverter`).
    pub fn register<F>(&mut self, ty: ResType, f: F)
    where
        F: Fn(&str, &ConvertCtx<'_>) -> Result<ResourceValue, String> + 'static,
    {
        self.converters.insert(ty, Rc::new(f));
        self.additional += 1;
    }

    /// Converts a string to the given type.
    pub fn convert(
        &self,
        ty: ResType,
        value: &str,
        ctx: &ConvertCtx<'_>,
    ) -> Result<ResourceValue, String> {
        match self.converters.get(&ty) {
            Some(f) => f(value, ctx),
            None => Err(format!("No converter registered for type {ty:?}")),
        }
    }

    /// How many converters have been registered beyond the defaults.
    pub fn additional_count(&self) -> usize {
        self.additional
    }

    /// Total number of registered converters.
    pub fn len(&self) -> usize {
        self.converters.len()
    }

    /// True if the registry is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.converters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_fonts() -> FontDb {
        FontDb::new()
    }

    fn conv(ty: ResType, s: &str) -> Result<ResourceValue, String> {
        let fonts = ctx_fonts();
        let reg = ConverterRegistry::new();
        reg.convert(ty, s, &ConvertCtx { fonts: &fonts })
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(conv(ResType::Int, "42").unwrap(), ResourceValue::Int(42));
        assert_eq!(
            conv(ResType::Dimension, "100").unwrap(),
            ResourceValue::Dim(100)
        );
        assert_eq!(
            conv(ResType::Position, "-5").unwrap(),
            ResourceValue::Pos(-5)
        );
        assert_eq!(
            conv(ResType::Boolean, "True").unwrap(),
            ResourceValue::Bool(true)
        );
        assert_eq!(
            conv(ResType::Boolean, "off").unwrap(),
            ResourceValue::Bool(false)
        );
        assert!(conv(ResType::Int, "xyz").is_err());
        assert!(conv(ResType::Dimension, "-1").is_err());
        assert!(conv(ResType::Boolean, "maybe").is_err());
    }

    #[test]
    fn pixel_conversion_uses_color_db() {
        assert_eq!(
            conv(ResType::Pixel, "red").unwrap(),
            ResourceValue::Pixel(0xff0000)
        );
        assert_eq!(
            conv(ResType::Pixel, "tomato").unwrap(),
            ResourceValue::Pixel(0xff6347)
        );
        assert_eq!(
            conv(ResType::Pixel, "#0f0").unwrap(),
            ResourceValue::Pixel(0x00ff00)
        );
        assert!(conv(ResType::Pixel, "nocolor").is_err());
    }

    #[test]
    fn font_conversion() {
        assert!(matches!(
            conv(ResType::Font, "fixed").unwrap(),
            ResourceValue::Font(_)
        ));
        assert!(conv(ResType::Font, "*nope*").is_err());
    }

    #[test]
    fn justify_orientation() {
        assert_eq!(
            conv(ResType::Justify, "center").unwrap(),
            ResourceValue::Justify(Justify::Center)
        );
        assert_eq!(
            conv(ResType::Orientation, "vertical").unwrap(),
            ResourceValue::Orientation(Orientation::Vertical)
        );
        assert!(conv(ResType::Justify, "diagonal").is_err());
    }

    #[test]
    fn callback_converter_wraps_script() {
        let v = conv(ResType::Callback, "echo hello world").unwrap();
        assert_eq!(
            v,
            ResourceValue::Callback(vec![CallbackItem::Script("echo hello world".into())])
        );
        assert_eq!(
            conv(ResType::Callback, "").unwrap(),
            ResourceValue::Callback(vec![])
        );
    }

    #[test]
    fn translations_converter() {
        let v = conv(ResType::Translations, "<Key>Return: exec(go)").unwrap();
        match v {
            ResourceValue::Translations(t) => assert_eq!(t.entries.len(), 1),
            _ => panic!("wrong type"),
        }
        assert!(conv(ResType::Translations, "<Nope>: x()").is_err());
    }

    #[test]
    fn pixmap_converter_inline_fallback_chain() {
        let xbm = "#define i_width 8\n#define i_height 1\nstatic char i_bits[] = {0xff};";
        assert!(matches!(
            conv(ResType::Pixmap, xbm).unwrap(),
            ResourceValue::Pixmap(_)
        ));
        let xpm = "\"1 1 1 1\",\"x c red\",\"x\"";
        assert!(matches!(
            conv(ResType::Pixmap, xpm).unwrap(),
            ResourceValue::Pixmap(_)
        ));
        assert!(conv(ResType::Pixmap, "neither format").is_err());
        // Empty string is the "no pixmap" sentinel.
        assert!(
            matches!(conv(ResType::Pixmap, "").unwrap(), ResourceValue::Pixmap(p) if p.width == 0)
        );
    }

    #[test]
    fn string_list_split() {
        assert_eq!(
            conv(ResType::StringList, "a, b ,c").unwrap(),
            ResourceValue::StrList(vec!["a".into(), "b".into(), "c".into()])
        );
        assert_eq!(
            conv(ResType::StringList, "").unwrap(),
            ResourceValue::StrList(vec![])
        );
    }

    #[test]
    fn custom_converter_overrides() {
        let mut reg = ConverterRegistry::new();
        let before = reg.additional_count();
        reg.register(ResType::Cursor, |s, _| {
            Ok(ResourceValue::Cursor(format!("X_{s}")))
        });
        assert_eq!(reg.additional_count(), before + 1);
        let fonts = ctx_fonts();
        let v = reg
            .convert(ResType::Cursor, "arrow", &ConvertCtx { fonts: &fonts })
            .unwrap();
        assert_eq!(v, ResourceValue::Cursor("X_arrow".into()));
    }
}
