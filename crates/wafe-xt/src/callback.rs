//! Callback lists and the predefined callback functions.
//!
//! A widget's callback resource holds a list of callback items. In Wafe a
//! callback is either an arbitrary Tcl script (installed through the
//! callback *converter*) or one of the six predefined functions of the
//! paper's table, which all "concern the handling of popup shells":
//!
//! | name            | behaviour                          |
//! |-----------------|------------------------------------|
//! | `none`          | realize shell, grab none           |
//! | `exclusive`     | realize shell, grab exclusive      |
//! | `nonexclusive`  | realize shell, grab nonexclusive   |
//! | `popdown`       | unrealize shell                    |
//! | `position`      | position shell                     |
//! | `positionCursor`| position shell under pointer       |

/// One of the predefined popup-handling callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredefinedCallback {
    /// Realize (pop up) the shell with no grab.
    None,
    /// Realize the shell with an exclusive grab.
    Exclusive,
    /// Realize the shell with a nonexclusive grab.
    Nonexclusive,
    /// Unrealize (pop down) the shell.
    Popdown,
    /// Position the shell near the invoking widget, then pop it up.
    Position,
    /// Position the shell under the pointer, then pop it up.
    PositionCursor,
}

impl PredefinedCallback {
    /// Parses the Wafe `callback` command's function-name argument.
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "none" => PredefinedCallback::None,
            "exclusive" => PredefinedCallback::Exclusive,
            "nonexclusive" => PredefinedCallback::Nonexclusive,
            "popdown" => PredefinedCallback::Popdown,
            "position" => PredefinedCallback::Position,
            "positionCursor" => PredefinedCallback::PositionCursor,
            _ => return None,
        })
    }

    /// The Wafe-visible name.
    pub fn name(&self) -> &'static str {
        match self {
            PredefinedCallback::None => "none",
            PredefinedCallback::Exclusive => "exclusive",
            PredefinedCallback::Nonexclusive => "nonexclusive",
            PredefinedCallback::Popdown => "popdown",
            PredefinedCallback::Position => "position",
            PredefinedCallback::PositionCursor => "positionCursor",
        }
    }

    /// All six, in the paper's table order.
    pub fn all() -> [PredefinedCallback; 6] {
        [
            PredefinedCallback::None,
            PredefinedCallback::Exclusive,
            PredefinedCallback::Nonexclusive,
            PredefinedCallback::Popdown,
            PredefinedCallback::Position,
            PredefinedCallback::PositionCursor,
        ]
    }
}

/// One item of a callback list.
#[derive(Debug, Clone, PartialEq)]
pub enum CallbackItem {
    /// An arbitrary host-language (Tcl) script, run by the embedding.
    Script(String),
    /// A predefined popup callback targeting the named shell widget.
    Predefined {
        /// Which predefined function.
        kind: PredefinedCallback,
        /// The name of the popup shell it manipulates.
        shell: String,
    },
}

impl CallbackItem {
    /// Logical size for memory accounting.
    pub fn tracked_size(&self) -> usize {
        match self {
            CallbackItem::Script(s) => s.len(),
            CallbackItem::Predefined { shell, .. } => shell.len() + 8,
        }
    }

    /// String rendering — what `gV widget callback` returns; scripts
    /// round-trip verbatim, which the paper's c1/c2 example depends on.
    pub fn to_display_string(&self) -> String {
        match self {
            CallbackItem::Script(s) => s.clone(),
            CallbackItem::Predefined { kind, shell } => format!("{} {shell}", kind.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_predefined_names() {
        for p in PredefinedCallback::all() {
            assert_eq!(PredefinedCallback::parse(p.name()), Some(p));
        }
        assert_eq!(PredefinedCallback::parse("bogus"), None);
    }

    #[test]
    fn script_roundtrips_verbatim() {
        let c = CallbackItem::Script("echo i am %w.".into());
        assert_eq!(c.to_display_string(), "echo i am %w.");
        assert_eq!(c.tracked_size(), 13);
    }

    #[test]
    fn predefined_display() {
        let c = CallbackItem::Predefined {
            kind: PredefinedCallback::Exclusive,
            shell: "popup".into(),
        };
        assert_eq!(c.to_display_string(), "exclusive popup");
    }
}
