//! An Rdd-style drag-and-drop library.
//!
//! The paper lists the Rdd drag-and-drop library among the Xt-based
//! extensions Wafe picked up easily ("it was easy to extend Wafe with
//! other Xt based widgets, widget sets or libraries such as Xpm or for
//! example a drag and drop library (Rdd)"). This module is that
//! extension: any widget can become a drag *source* (carrying a string
//! value) or a drop *target* (running a host script with the dropped
//! value as the `%v` percent code).
//!
//! Protocol: button 2 pressed on a source picks its value up; button 2
//! released over a target drops it there.

use std::collections::HashMap;

use crate::app::{HostCall, HostCallKind, XtApp};
use crate::translation::{MergeMode, TranslationTable};
use crate::widget::WidgetId;

/// State key holding a source widget's drag value.
const SOURCE_VALUE: &str = "rdd_value";
/// State key holding a target widget's drop script.
const TARGET_SCRIPT: &str = "rdd_script";

/// Installs the Rdd actions into the application's global action table.
/// Idempotent; called by the registration helpers below.
pub fn install(app: &mut XtApp) {
    if app.global_actions.get("RddStartDrag").is_some() {
        return;
    }
    app.global_actions
        .add("RddStartDrag", |app, w, _event, _args| {
            let value = app.state(w, SOURCE_VALUE);
            app.dnd_payload = if value.is_empty() { None } else { Some(value) };
        });
    app.global_actions.add("RddDrop", |app, w, _event, _args| {
        let payload = match app.dnd_payload.take() {
            Some(p) => p,
            None => return,
        };
        let script = app.state(w, TARGET_SCRIPT);
        if script.is_empty() {
            return;
        }
        let mut data = HashMap::new();
        data.insert('v', payload);
        let widget_name = app.widget(w).name.clone();
        app.queue_host_call(HostCall {
            widget: w,
            widget_name,
            script,
            event: None,
            data,
            kind: HostCallKind::Callback("rddDrop".into()),
        });
    });
}

/// Makes a widget a drag source carrying `value`.
pub fn make_drag_source(app: &mut XtApp, w: WidgetId, value: &str) {
    install(app);
    app.set_state(w, SOURCE_VALUE, value);
    let t = TranslationTable::parse("<Btn2Down>: RddStartDrag()").expect("static translation");
    app.merge_translations(w, t, MergeMode::Augment);
}

/// Makes a widget a drop target running `script` (with `%v`) on drop.
pub fn make_drop_target(app: &mut XtApp, w: WidgetId, script: &str) {
    install(app);
    app.set_state(w, TARGET_SCRIPT, script);
    let t = TranslationTable::parse("<Btn2Up>: RddDrop()").expect("static translation");
    app.merge_translations(w, t, MergeMode::Augment);
}

/// The value currently in flight, if a drag is active.
pub fn current_payload(app: &XtApp) -> Option<&str> {
    app.dnd_payload.as_deref()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widget::core_class;

    fn app_with_widgets() -> (XtApp, WidgetId, WidgetId) {
        let mut app = XtApp::new();
        app.register_class(core_class("Shell", true, true));
        app.register_class(core_class("Core", false, false));
        let top = app
            .create_widget(
                "top",
                "Shell",
                None,
                0,
                &[
                    ("width".into(), "400".into()),
                    ("height".into(), "300".into()),
                ],
                true,
            )
            .unwrap();
        let src = app
            .create_widget(
                "src",
                "Core",
                Some(top),
                0,
                &[
                    ("width".into(), "50".into()),
                    ("height".into(), "20".into()),
                ],
                true,
            )
            .unwrap();
        let dst = app
            .create_widget(
                "dst",
                "Core",
                Some(top),
                0,
                &[
                    ("x".into(), "100".into()),
                    ("width".into(), "50".into()),
                    ("height".into(), "20".into()),
                ],
                true,
            )
            .unwrap();
        app.realize(top);
        app.dispatch_pending();
        (app, src, dst)
    }

    fn center(app: &XtApp, w: WidgetId) -> (i32, i32) {
        let abs = app.displays[0].abs_rect(app.widget(w).window.unwrap());
        (abs.x + abs.w as i32 / 2, abs.y + abs.h as i32 / 2)
    }

    #[test]
    fn drag_and_drop_delivers_value() {
        let (mut app, src, dst) = app_with_widgets();
        make_drag_source(&mut app, src, "file.txt");
        make_drop_target(&mut app, dst, "echo dropped %v on %w");
        let (sx, sy) = center(&app, src);
        let (dx, dy) = center(&app, dst);
        app.displays[0].inject_pointer_move(sx, sy);
        app.displays[0].inject_button(2, true);
        app.dispatch_pending();
        assert_eq!(current_payload(&app), Some("file.txt"));
        app.displays[0].inject_pointer_move(dx, dy);
        app.displays[0].inject_button(2, false);
        app.dispatch_pending();
        let calls = app.take_host_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].script, "echo dropped %v on %w");
        assert_eq!(
            calls[0].data.get(&'v').map(String::as_str),
            Some("file.txt")
        );
        assert_eq!(calls[0].widget_name, "dst");
        assert_eq!(current_payload(&app), None, "payload consumed by the drop");
    }

    #[test]
    fn drop_without_drag_is_noop() {
        let (mut app, _src, dst) = app_with_widgets();
        make_drop_target(&mut app, dst, "echo dropped %v");
        let (dx, dy) = center(&app, dst);
        app.displays[0].inject_pointer_move(dx, dy);
        app.displays[0].inject_button(2, true);
        app.displays[0].inject_button(2, false);
        app.dispatch_pending();
        assert!(app.take_host_calls().is_empty());
    }

    #[test]
    fn release_outside_target_keeps_quiet_and_next_drag_resets() {
        let (mut app, src, dst) = app_with_widgets();
        make_drag_source(&mut app, src, "first");
        make_drop_target(&mut app, dst, "echo %v");
        let (sx, sy) = center(&app, src);
        app.displays[0].inject_pointer_move(sx, sy);
        app.displays[0].inject_button(2, true);
        // Release over the shell background: no target, nothing fires.
        app.displays[0].inject_pointer_move(sx, sy + 100);
        app.displays[0].inject_button(2, false);
        app.dispatch_pending();
        assert!(app.take_host_calls().is_empty());
        // A new drag replaces the stale payload.
        app.set_state(src, SOURCE_VALUE, "second");
        app.displays[0].inject_pointer_move(sx, sy);
        app.displays[0].inject_button(2, true);
        app.dispatch_pending();
        assert_eq!(current_payload(&app), Some("second"));
    }

    #[test]
    fn install_is_idempotent() {
        let (mut app, src, _) = app_with_widgets();
        install(&mut app);
        install(&mut app);
        make_drag_source(&mut app, src, "v");
        assert!(app.global_actions.get("RddStartDrag").is_some());
        assert!(app.global_actions.get("RddDrop").is_some());
    }
}
