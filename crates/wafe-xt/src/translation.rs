//! The translation manager.
//!
//! Translation tables bind event descriptions to action sequences:
//!
//! ```text
//! <EnterWindow>: PopupMenu()
//! Shift<Key>Return: exec(echo [gV input string])
//! <Btn1Down>: set() notify()
//! ```
//!
//! Tables merge with the three Xt modes (override/augment/replace), and
//! events match first-hit in table order — override prepends, so newly
//! overridden bindings win.

use wafe_xproto::{Event, EventKind};

/// How a new table combines with a widget's existing one (`XtAugment...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// New bindings take precedence (`#override`).
    Override,
    /// Existing bindings take precedence (`#augment`).
    Augment,
    /// The new table replaces the old entirely (`#replace`).
    Replace,
}

impl MergeMode {
    /// Parses the Wafe `action` command's mode argument.
    pub fn parse(s: &str) -> Option<MergeMode> {
        match s {
            "override" => Some(MergeMode::Override),
            "augment" => Some(MergeMode::Augment),
            "replace" => Some(MergeMode::Replace),
            _ => None,
        }
    }
}

/// The event pattern of one translation line.
#[derive(Debug, Clone, PartialEq)]
pub enum EventMatcher {
    /// `<BtnDown>` / `<Btn1Down>` with optional button detail.
    ButtonPress(Option<u8>),
    /// `<BtnUp>` / `<Btn1Up>`.
    ButtonRelease(Option<u8>),
    /// `<Key>` / `<KeyPress>` with optional keysym detail.
    KeyPress(Option<String>),
    /// `<KeyUp>` / `<KeyRelease>`.
    KeyRelease(Option<String>),
    /// `<EnterWindow>` / `<Enter>`.
    Enter,
    /// `<LeaveWindow>` / `<Leave>`.
    Leave,
    /// `<Motion>` / `<PtrMoved>`.
    Motion,
    /// `<Expose>`.
    Expose,
    /// `<ConfigureNotify>`.
    Configure,
}

/// Modifier requirements of a translation line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModifierReq {
    /// Shift must be down.
    pub shift: bool,
    /// Ctrl must be down.
    pub ctrl: bool,
    /// Meta must be down.
    pub meta: bool,
    /// If true (`None<...>`), no modifiers may be down; otherwise extra
    /// modifiers are ignored, like Xt's default "don't care" matching.
    pub exact_none: bool,
}

/// One parsed translation: pattern plus action invocations.
#[derive(Debug, Clone, PartialEq)]
pub struct Translation {
    /// Modifier requirements.
    pub modifiers: ModifierReq,
    /// The event pattern.
    pub matcher: EventMatcher,
    /// Actions to fire: `(name, args)` in sequence.
    pub actions: Vec<(String, Vec<String>)>,
}

/// A widget's translation table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationTable {
    /// The translations, first match wins.
    pub entries: Vec<Translation>,
}

impl TranslationTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses a translation table from its textual form. Lines are
    /// separated by newlines; a leading `#override`/`#augment`/`#replace`
    /// directive line is permitted and ignored here (the merge mode comes
    /// from the caller). Malformed lines produce an error naming the line.
    pub fn parse(text: &str) -> Result<TranslationTable, String> {
        let mut entries = Vec::new();
        for raw in text.lines() {
            let line = raw.trim().trim_end_matches("\\n\\").trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('!') {
                continue;
            }
            entries.push(parse_line(line)?);
        }
        Ok(TranslationTable { entries })
    }

    /// Merges `new` into `self` with the given mode.
    pub fn merge(&mut self, new: TranslationTable, mode: MergeMode) {
        match mode {
            MergeMode::Replace => *self = new,
            MergeMode::Override => {
                // New entries take precedence: prepend, and drop old
                // entries with an identical pattern.
                let mut merged = new.entries;
                for old in self.entries.drain(..) {
                    if !merged
                        .iter()
                        .any(|n| n.matcher == old.matcher && n.modifiers == old.modifiers)
                    {
                        merged.push(old);
                    }
                }
                self.entries = merged;
            }
            MergeMode::Augment => {
                for n in new.entries {
                    if !self
                        .entries
                        .iter()
                        .any(|o| o.matcher == n.matcher && o.modifiers == n.modifiers)
                    {
                        self.entries.push(n);
                    }
                }
            }
        }
    }

    /// Finds the actions bound to an event, if any.
    pub fn lookup(&self, event: &Event) -> Option<&[(String, Vec<String>)]> {
        self.entries
            .iter()
            .find(|t| matches(t, event))
            .map(|t| t.actions.as_slice())
    }

    /// Logical size for memory accounting.
    pub fn tracked_size(&self) -> usize {
        self.entries
            .iter()
            .map(|t| {
                t.actions
                    .iter()
                    .map(|(n, a)| n.len() + a.iter().map(String::len).sum::<usize>())
                    .sum::<usize>()
                    + 16
            })
            .sum()
    }

    /// Renders the table back to text (for `getValues translations`).
    pub fn to_display_string(&self) -> String {
        self.entries
            .iter()
            .map(|t| {
                let ev = match &t.matcher {
                    EventMatcher::ButtonPress(None) => "<BtnDown>".to_string(),
                    EventMatcher::ButtonPress(Some(b)) => format!("<Btn{b}Down>"),
                    EventMatcher::ButtonRelease(None) => "<BtnUp>".to_string(),
                    EventMatcher::ButtonRelease(Some(b)) => format!("<Btn{b}Up>"),
                    EventMatcher::KeyPress(None) => "<Key>".to_string(),
                    EventMatcher::KeyPress(Some(k)) => format!("<Key>{k}"),
                    EventMatcher::KeyRelease(None) => "<KeyUp>".to_string(),
                    EventMatcher::KeyRelease(Some(k)) => format!("<KeyUp>{k}"),
                    EventMatcher::Enter => "<EnterWindow>".to_string(),
                    EventMatcher::Leave => "<LeaveWindow>".to_string(),
                    EventMatcher::Motion => "<Motion>".to_string(),
                    EventMatcher::Expose => "<Expose>".to_string(),
                    EventMatcher::Configure => "<Configure>".to_string(),
                };
                let mods = {
                    let mut m = String::new();
                    if t.modifiers.exact_none {
                        m.push_str("None");
                    }
                    if t.modifiers.shift {
                        m.push_str("Shift");
                    }
                    if t.modifiers.ctrl {
                        m.push_str("Ctrl");
                    }
                    if t.modifiers.meta {
                        m.push_str("Meta");
                    }
                    m
                };
                let acts = t
                    .actions
                    .iter()
                    .map(|(n, a)| format!("{n}({})", a.join(",")))
                    .collect::<Vec<_>>()
                    .join(" ");
                format!("{mods}{ev}: {acts}")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn matches(t: &Translation, e: &Event) -> bool {
    let mods_ok = {
        let m = e.modifiers;
        if t.modifiers.exact_none {
            !m.shift && !m.control && !m.meta
        } else {
            (!t.modifiers.shift || m.shift)
                && (!t.modifiers.ctrl || m.control)
                && (!t.modifiers.meta || m.meta)
        }
    };
    if !mods_ok {
        return false;
    }
    match (&t.matcher, e.kind) {
        (EventMatcher::ButtonPress(det), EventKind::ButtonPress) => {
            det.map(|d| d == e.button).unwrap_or(true)
        }
        (EventMatcher::ButtonRelease(det), EventKind::ButtonRelease) => {
            det.map(|d| d == e.button).unwrap_or(true)
        }
        (EventMatcher::KeyPress(det), EventKind::KeyPress) => det
            .as_ref()
            .map(|d| d.eq_ignore_ascii_case(&e.keysym))
            .unwrap_or(true),
        (EventMatcher::KeyRelease(det), EventKind::KeyRelease) => det
            .as_ref()
            .map(|d| d.eq_ignore_ascii_case(&e.keysym))
            .unwrap_or(true),
        (EventMatcher::Enter, EventKind::EnterNotify) => true,
        (EventMatcher::Leave, EventKind::LeaveNotify) => true,
        (EventMatcher::Motion, EventKind::MotionNotify) => true,
        (EventMatcher::Expose, EventKind::Expose) => true,
        (EventMatcher::Configure, EventKind::ConfigureNotify) => true,
        _ => false,
    }
}

/// Parses one `mods<Event>detail: actions` line.
fn parse_line(line: &str) -> Result<Translation, String> {
    let lt = line
        .find('<')
        .ok_or_else(|| format!("translation line has no event: \"{line}\""))?;
    let gt = line[lt..]
        .find('>')
        .map(|i| i + lt)
        .ok_or_else(|| format!("unterminated event in \"{line}\""))?;
    let mods_text = line[..lt].trim();
    let event_name = &line[lt + 1..gt];
    let rest = &line[gt + 1..];
    let colon = rest
        .find(':')
        .ok_or_else(|| format!("translation line has no colon: \"{line}\""))?;
    let detail = rest[..colon].trim();
    let actions_text = rest[colon + 1..].trim();

    let mut modifiers = ModifierReq::default();
    for tok in mods_text
        .split(|c: char| c.is_whitespace() || c == '~')
        .filter(|t| !t.is_empty())
    {
        match tok {
            "Shift" => modifiers.shift = true,
            "Ctrl" | "Control" => modifiers.ctrl = true,
            "Meta" | "Alt" | "Mod1" => modifiers.meta = true,
            "None" => modifiers.exact_none = true,
            "Any" => {}
            other => return Err(format!("unknown modifier \"{other}\" in \"{line}\"")),
        }
    }

    let matcher = match event_name {
        "BtnDown" | "ButtonPress" => EventMatcher::ButtonPress(parse_button_detail(detail)),
        "Btn1Down" => EventMatcher::ButtonPress(Some(1)),
        "Btn2Down" => EventMatcher::ButtonPress(Some(2)),
        "Btn3Down" => EventMatcher::ButtonPress(Some(3)),
        "Btn4Down" => EventMatcher::ButtonPress(Some(4)),
        "Btn5Down" => EventMatcher::ButtonPress(Some(5)),
        "BtnUp" | "ButtonRelease" => EventMatcher::ButtonRelease(parse_button_detail(detail)),
        "Btn1Up" => EventMatcher::ButtonRelease(Some(1)),
        "Btn2Up" => EventMatcher::ButtonRelease(Some(2)),
        "Btn3Up" => EventMatcher::ButtonRelease(Some(3)),
        "Key" | "KeyPress" | "KeyDown" => EventMatcher::KeyPress(if detail.is_empty() {
            None
        } else {
            Some(detail.to_string())
        }),
        "KeyUp" | "KeyRelease" => EventMatcher::KeyRelease(if detail.is_empty() {
            None
        } else {
            Some(detail.to_string())
        }),
        "EnterWindow" | "Enter" | "EnterNotify" => EventMatcher::Enter,
        "LeaveWindow" | "Leave" | "LeaveNotify" => EventMatcher::Leave,
        "Motion" | "MotionNotify" | "PtrMoved" | "BtnMotion" => EventMatcher::Motion,
        "Expose" => EventMatcher::Expose,
        "Configure" | "ConfigureNotify" => EventMatcher::Configure,
        other => return Err(format!("unknown event type \"<{other}>\" in \"{line}\"")),
    };

    let actions = parse_actions(actions_text)?;
    if actions.is_empty() {
        return Err(format!("translation line has no actions: \"{line}\""));
    }
    Ok(Translation {
        modifiers,
        matcher,
        actions,
    })
}

fn parse_button_detail(detail: &str) -> Option<u8> {
    let d = detail.trim();
    if d.is_empty() {
        None
    } else {
        d.parse().ok()
    }
}

/// Parses `name1(args) name2() name3(a, b)`. Arguments split on
/// top-level commas only, so `exec(echo %k %a %s)` keeps its one
/// argument intact.
fn parse_actions(text: &str) -> Result<Vec<(String, Vec<String>)>, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < chars.len() {
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i >= chars.len() {
            break;
        }
        let start = i;
        while i < chars.len() && chars[i] != '(' && !chars[i].is_whitespace() {
            i += 1;
        }
        let name: String = chars[start..i].iter().collect();
        if name.is_empty() {
            return Err(format!("malformed action list \"{text}\""));
        }
        let mut args = Vec::new();
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        if i < chars.len() && chars[i] == '(' {
            i += 1;
            let mut depth = 1usize;
            let mut cur = String::new();
            let mut any = false;
            while i < chars.len() && depth > 0 {
                match chars[i] {
                    '(' => {
                        depth += 1;
                        cur.push('(');
                    }
                    ')' => {
                        depth -= 1;
                        if depth > 0 {
                            cur.push(')');
                        }
                    }
                    ',' if depth == 1 => {
                        args.push(cur.trim().to_string());
                        any = true;
                        cur.clear();
                    }
                    c => cur.push(c),
                }
                i += 1;
            }
            if depth != 0 {
                return Err(format!("missing \")\" in action list \"{text}\""));
            }
            let last = cur.trim().to_string();
            if !last.is_empty() || any {
                args.push(last);
            }
        }
        out.push((name, args));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafe_xproto::{Modifiers, WindowId};

    fn ev(kind: EventKind) -> Event {
        Event::new(kind, WindowId(1))
    }

    #[test]
    fn parse_enter_window_popup_menu() {
        // Straight from the paper's MenuButton example.
        let t = TranslationTable::parse("<EnterWindow>: PopupMenu()").unwrap();
        assert_eq!(t.entries.len(), 1);
        assert_eq!(t.entries[0].matcher, EventMatcher::Enter);
        assert_eq!(
            t.entries[0].actions,
            vec![("PopupMenu".to_string(), vec![])]
        );
        assert!(t.lookup(&ev(EventKind::EnterNotify)).is_some());
        assert!(t.lookup(&ev(EventKind::LeaveNotify)).is_none());
    }

    #[test]
    fn parse_exec_with_percent_codes() {
        // The paper's xev example: {<KeyPress>: exec(echo %k %a %s)}.
        let t = TranslationTable::parse("<KeyPress>: exec(echo %k %a %s)").unwrap();
        let a = &t.entries[0].actions[0];
        assert_eq!(a.0, "exec");
        assert_eq!(a.1, vec!["echo %k %a %s".to_string()]);
    }

    #[test]
    fn parse_key_detail() {
        // The paper's prime-factors example: <Key>Return.
        let t = TranslationTable::parse("<Key>Return: exec(echo [gV input string])").unwrap();
        assert_eq!(
            t.entries[0].matcher,
            EventMatcher::KeyPress(Some("Return".into()))
        );
        let mut e = ev(EventKind::KeyPress);
        e.keysym = "Return".into();
        assert!(t.lookup(&e).is_some());
        e.keysym = "a".into();
        assert!(t.lookup(&e).is_none());
    }

    #[test]
    fn parse_multiple_actions_and_lines() {
        let t = TranslationTable::parse("<Btn1Down>: set() notify()\n<Btn1Up>: unset()").unwrap();
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.entries[0].actions.len(), 2);
        let mut e = ev(EventKind::ButtonPress);
        e.button = 1;
        assert_eq!(t.lookup(&e).unwrap().len(), 2);
        e.button = 2;
        assert!(t.lookup(&e).is_none());
    }

    #[test]
    fn modifiers() {
        let t = TranslationTable::parse("Shift<Key>Return: exec(shifted)").unwrap();
        let mut e = ev(EventKind::KeyPress);
        e.keysym = "Return".into();
        assert!(t.lookup(&e).is_none());
        e.modifiers = Modifiers::SHIFT;
        assert!(t.lookup(&e).is_some());
        // Ctrl+Meta.
        let t2 = TranslationTable::parse("Ctrl Meta<Key>x: exec(cm)").unwrap();
        let mut e2 = ev(EventKind::KeyPress);
        e2.keysym = "x".into();
        e2.modifiers = Modifiers {
            shift: false,
            control: true,
            meta: true,
        };
        assert!(t2.lookup(&e2).is_some());
        e2.modifiers = Modifiers {
            shift: false,
            control: true,
            meta: false,
        };
        assert!(t2.lookup(&e2).is_none());
    }

    #[test]
    fn none_modifier_requires_exactly_none() {
        let t = TranslationTable::parse("None<Key>a: exec(plain)").unwrap();
        let mut e = ev(EventKind::KeyPress);
        e.keysym = "a".into();
        assert!(t.lookup(&e).is_some());
        e.modifiers = Modifiers::SHIFT;
        assert!(t.lookup(&e).is_none());
    }

    #[test]
    fn merge_override() {
        let mut base = TranslationTable::parse("<Btn1Down>: old()\n<Btn2Down>: keep()").unwrap();
        let new = TranslationTable::parse("<Btn1Down>: new()").unwrap();
        base.merge(new, MergeMode::Override);
        let mut e = ev(EventKind::ButtonPress);
        e.button = 1;
        assert_eq!(base.lookup(&e).unwrap()[0].0, "new");
        e.button = 2;
        assert_eq!(base.lookup(&e).unwrap()[0].0, "keep");
    }

    #[test]
    fn merge_augment_keeps_existing() {
        let mut base = TranslationTable::parse("<Btn1Down>: old()").unwrap();
        let new = TranslationTable::parse("<Btn1Down>: new()\n<Btn3Down>: add()").unwrap();
        base.merge(new, MergeMode::Augment);
        let mut e = ev(EventKind::ButtonPress);
        e.button = 1;
        assert_eq!(base.lookup(&e).unwrap()[0].0, "old");
        e.button = 3;
        assert_eq!(base.lookup(&e).unwrap()[0].0, "add");
    }

    #[test]
    fn merge_replace() {
        let mut base = TranslationTable::parse("<Btn1Down>: old()").unwrap();
        let new = TranslationTable::parse("<Btn2Down>: only()").unwrap();
        base.merge(new, MergeMode::Replace);
        let mut e = ev(EventKind::ButtonPress);
        e.button = 1;
        assert!(base.lookup(&e).is_none());
    }

    #[test]
    fn parse_errors() {
        assert!(TranslationTable::parse("no event here: act()").is_err());
        assert!(TranslationTable::parse("<NoSuchEvent>: act()").is_err());
        assert!(TranslationTable::parse("<Key>x act()").is_err());
        assert!(TranslationTable::parse("<Key>x:").is_err());
        assert!(TranslationTable::parse("<Key>x: act(unclosed").is_err());
        assert!(TranslationTable::parse("Bogus<Key>x: act()").is_err());
    }

    #[test]
    fn comment_and_directive_lines_skipped() {
        let t = TranslationTable::parse("#override\n! comment\n<Key>a: x()").unwrap();
        assert_eq!(t.entries.len(), 1);
    }

    #[test]
    fn args_with_commas_split() {
        let t = TranslationTable::parse("<Key>a: move(1, 2, 3)").unwrap();
        assert_eq!(t.entries[0].actions[0].1, vec!["1", "2", "3"]);
    }

    #[test]
    fn empty_parens_no_args() {
        let t = TranslationTable::parse("<Key>a: fire()").unwrap();
        assert!(t.entries[0].actions[0].1.is_empty());
    }

    #[test]
    fn first_match_wins() {
        let t = TranslationTable::parse("<Key>Return: special()\n<Key>: generic()").unwrap();
        let mut e = ev(EventKind::KeyPress);
        e.keysym = "Return".into();
        assert_eq!(t.lookup(&e).unwrap()[0].0, "special");
        e.keysym = "q".into();
        assert_eq!(t.lookup(&e).unwrap()[0].0, "generic");
    }

    #[test]
    fn display_string_roundtrip() {
        let t = TranslationTable::parse("Shift<Key>Return: exec(x) beep()").unwrap();
        let s = t.to_display_string();
        let t2 = TranslationTable::parse(&s).unwrap();
        assert_eq!(t, t2);
    }
}
