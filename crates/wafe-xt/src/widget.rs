//! Widget classes and instance records.

use std::collections::HashMap;
use std::rc::Rc;

use wafe_xproto::framebuffer::DrawOp;
use wafe_xproto::WindowId;

use crate::action::ActionTable;
use crate::app::XtApp;
use crate::resource::{ResourceSpec, ResourceValue};
use crate::translation::TranslationTable;

/// Identifies a widget instance within an [`XtApp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WidgetId(pub u32);

/// Class methods — the analogue of the Xt class record's procedure
/// pointers. Implementations take the application context plus the
/// instance id (the crate is id-based to satisfy the borrow checker the
/// way Xt satisfies C's aliasing: one mutable world, names for parts).
pub trait WidgetOps {
    /// Called after the instance's resources are initialised.
    fn initialize(&self, _app: &mut XtApp, _w: WidgetId) {}

    /// The size the widget wants, given its current resources. Called
    /// during geometry negotiation when `width`/`height` are 0.
    fn preferred_size(&self, app: &XtApp, w: WidgetId) -> (u32, u32) {
        let width = app.dim_resource(w, "width").max(16);
        let height = app.dim_resource(w, "height").max(16);
        (width, height)
    }

    /// Positions and sizes children (composite classes only).
    fn layout(&self, _app: &mut XtApp, _w: WidgetId) {}

    /// Produces the retained drawing for the widget's window.
    fn redisplay(&self, _app: &XtApp, _w: WidgetId) -> Vec<DrawOp> {
        Vec::new()
    }

    /// Called after `setValues` changed the named resources.
    fn set_values(&self, _app: &mut XtApp, _w: WidgetId, _changed: &[String]) {}

    /// Called before the instance is torn down.
    fn destroy(&self, _app: &mut XtApp, _w: WidgetId) {}
}

/// A widget class record.
pub struct WidgetClass {
    /// Class name, e.g. `Label` (used in Xrm class paths).
    pub name: String,
    /// Flattened resource list (superclass chain already folded in).
    pub resources: Vec<ResourceSpec>,
    /// Constraint resources this class imposes on its *children*
    /// (only for constraint composites like Form).
    pub constraint_resources: Vec<ResourceSpec>,
    /// Class action table.
    pub actions: ActionTable,
    /// Default translations installed on every new instance.
    pub default_translations: TranslationTable,
    /// Class methods.
    pub ops: Rc<dyn WidgetOps>,
    /// True for shells (popup/application/top-level).
    pub is_shell: bool,
    /// True if instances may have children.
    pub is_composite: bool,
}

impl WidgetClass {
    /// Looks up a resource spec by instance name.
    pub fn resource(&self, name: &str) -> Option<&ResourceSpec> {
        self.resources.iter().find(|r| r.name == name)
    }

    /// Looks up a constraint resource spec by instance name.
    pub fn constraint(&self, name: &str) -> Option<&ResourceSpec> {
        self.constraint_resources.iter().find(|r| r.name == name)
    }
}

impl std::fmt::Debug for WidgetClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WidgetClass")
            .field("name", &self.name)
            .field("resources", &self.resources.len())
            .field("is_shell", &self.is_shell)
            .field("is_composite", &self.is_composite)
            .finish()
    }
}

/// A widget instance.
pub struct WidgetRec {
    /// Instance id.
    pub id: WidgetId,
    /// Instance name (`label1`, `quit` …) — Wafe's handle for the widget.
    pub name: String,
    /// The class record.
    pub class: Rc<WidgetClass>,
    /// Parent widget (None for shells created on a display root).
    pub parent: Option<WidgetId>,
    /// Normal children, in creation order.
    pub children: Vec<WidgetId>,
    /// Popup children (shells popped up from this widget's tree).
    pub popups: Vec<WidgetId>,
    /// Typed resource storage.
    pub resources: HashMap<&'static str, ResourceValue>,
    /// Constraint resource storage (imposed by the parent's class).
    pub constraints: HashMap<&'static str, ResourceValue>,
    /// The widget's merged translation table.
    pub translations: TranslationTable,
    /// True once managed (`XtManageChild` — widget creation commands
    /// create managed widgets unless the optional argument says not to).
    pub managed: bool,
    /// True once a window exists.
    pub realized: bool,
    /// The server-side window, if realized.
    pub window: Option<WindowId>,
    /// Index of the display this widget lives on.
    pub display_idx: usize,
    /// For shells: currently popped up.
    pub popped_up: bool,
    /// Class-private instance state (text cursor position, toggle state,
    /// list selection …) — the analogue of the instance-record fields a C
    /// widget adds below its superclass part.
    pub state: HashMap<String, String>,
    /// Accelerators installed onto this widget (`XtInstallAccelerators`):
    /// each entry is a source widget's accelerator table; matching events
    /// here run the actions *on the source widget*.
    pub accelerators_installed: Vec<(TranslationTable, WidgetId)>,
}

impl WidgetRec {
    /// Reads a typed resource.
    pub fn resource(&self, name: &str) -> Option<&ResourceValue> {
        self.resources.get(name)
    }
}

impl std::fmt::Debug for WidgetRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WidgetRec")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("class", &self.class.name)
            .field("managed", &self.managed)
            .field("realized", &self.realized)
            .finish()
    }
}

/// A plain leaf class with no behaviour — the base for tests and for
/// simple widgets.
pub struct CoreOps;

impl WidgetOps for CoreOps {}

/// Builds a minimal class (Core semantics) for tests and shells.
pub fn core_class(name: &str, is_shell: bool, is_composite: bool) -> WidgetClass {
    WidgetClass {
        name: name.to_string(),
        resources: crate::resource::core_resources(),
        constraint_resources: Vec::new(),
        actions: ActionTable::new(),
        default_translations: TranslationTable::new(),
        ops: Rc::new(CoreOps),
        is_shell,
        is_composite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_class_shape() {
        let c = core_class("Core", false, false);
        assert_eq!(c.name, "Core");
        assert_eq!(c.resources.len(), 18);
        assert!(c.resource("background").is_some());
        assert!(c.resource("nosuch").is_none());
        assert!(!c.is_shell);
    }
}
