//! The application context: widget tree, realize, popups, event dispatch.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use wafe_trace::Telemetry;
use wafe_xproto::display::{Display, GrabKind, WindowAttributes};
use wafe_xproto::font::{FontDb, FontId};
use wafe_xproto::geometry::Rect;
use wafe_xproto::{Event, EventKind, Pixel, WindowId};

use crate::action::ActionTable;
use crate::callback::{CallbackItem, PredefinedCallback};
use crate::converter::{ConvertCtx, ConverterRegistry};
use crate::memstats::MemStats;
use crate::resource::ResourceValue;
use crate::translation::{MergeMode, TranslationTable};
use crate::widget::{WidgetClass, WidgetId, WidgetRec};
use crate::xrm::XrmDb;

/// Logical per-widget record overhead for memory accounting.
const WIDGET_OVERHEAD: usize = 64;

/// Errors from toolkit operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XtError {
    /// No class registered under this name.
    UnknownClass(String),
    /// No widget with this name/id.
    UnknownWidget(String),
    /// A widget with this name already exists.
    DuplicateName(String),
    /// A resource conversion failed.
    Conversion {
        /// The resource being converted.
        resource: String,
        /// The converter's message.
        message: String,
    },
    /// Attempt to give children to a non-composite widget.
    NotComposite(String),
    /// The class has no resource of this name.
    NoSuchResource {
        /// Widget name.
        widget: String,
        /// Resource name.
        resource: String,
    },
}

impl std::fmt::Display for XtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XtError::UnknownClass(c) => write!(f, "unknown widget class \"{c}\""),
            XtError::UnknownWidget(w) => write!(f, "unknown widget \"{w}\""),
            XtError::DuplicateName(n) => write!(f, "widget name \"{n}\" already in use"),
            XtError::Conversion { resource, message } => {
                write!(
                    f,
                    "conversion failed for resource \"{resource}\": {message}"
                )
            }
            XtError::NotComposite(w) => write!(f, "widget \"{w}\" is not composite"),
            XtError::NoSuchResource { widget, resource } => {
                write!(f, "widget \"{widget}\" has no resource \"{resource}\"")
            }
        }
    }
}

impl std::error::Error for XtError {}

/// Why the host (the Wafe/Tcl layer) is being called back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostCallKind {
    /// A callback list fired; carries the resource name.
    Callback(String),
    /// The global `exec`-style action fired.
    Action,
}

/// A deferred invocation of host-language code — the analogue of Xt
/// calling an application's C callback function.
#[derive(Debug, Clone)]
pub struct HostCall {
    /// The invoking widget.
    pub widget: WidgetId,
    /// The invoking widget's name (for `%w`).
    pub widget_name: String,
    /// The script to run (still containing percent codes).
    pub script: String,
    /// The triggering event, if any (actions always have one).
    pub event: Option<Event>,
    /// Class-specific clientData percent payload (e.g. List: `i`, `s`).
    pub data: HashMap<char, String>,
    /// What fired.
    pub kind: HostCallKind,
}

/// The Xt application context.
pub struct XtApp {
    /// Open displays; index 0 is the default display.
    pub displays: Vec<Display>,
    widgets: HashMap<u32, WidgetRec>,
    by_name: HashMap<String, WidgetId>,
    classes: HashMap<String, Rc<WidgetClass>>,
    /// The converter registry.
    pub converters: ConverterRegistry,
    /// Application-wide actions (`XtAppAddActions`).
    pub global_actions: ActionTable,
    /// The resource database.
    pub resource_db: XrmDb,
    /// Memory accounting.
    pub memstats: MemStats,
    /// Telemetry store shared with the embedding (disabled by default).
    pub telemetry: Telemetry,
    host_calls: VecDeque<HostCall>,
    window_map: HashMap<(usize, WindowId), WidgetId>,
    next_id: u32,
    warnings: Vec<String>,
    /// The value in flight during an Rdd drag (see [`crate::dnd`]).
    pub dnd_payload: Option<String>,
}

impl XtApp {
    /// Creates an application context with one display (`:0`).
    pub fn new() -> Self {
        XtApp {
            displays: vec![Display::open(":0")],
            widgets: HashMap::new(),
            by_name: HashMap::new(),
            classes: HashMap::new(),
            converters: ConverterRegistry::new(),
            global_actions: ActionTable::new(),
            resource_db: XrmDb::new(),
            memstats: MemStats::new(),
            telemetry: Telemetry::new(),
            host_calls: VecDeque::new(),
            window_map: HashMap::new(),
            next_id: 1,
            warnings: Vec::new(),
            dnd_payload: None,
        }
    }

    /// Opens an additional display (`applicationShell top2 dec4:0`) and
    /// returns its index.
    pub fn open_display(&mut self, name: &str) -> usize {
        self.displays.push(Display::open(name));
        self.displays.len() - 1
    }

    // ----- classes ------------------------------------------------------

    /// Registers a widget class.
    pub fn register_class(&mut self, class: WidgetClass) {
        self.classes.insert(class.name.clone(), Rc::new(class));
    }

    /// Looks up a registered class.
    pub fn class(&self, name: &str) -> Option<Rc<WidgetClass>> {
        self.classes.get(name).cloned()
    }

    /// Names of all registered classes, sorted.
    pub fn class_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.classes.keys().cloned().collect();
        v.sort();
        v
    }

    /// `XtGetResourceList`: the resource names of a widget's class, in
    /// class order.
    pub fn get_resource_list(&self, w: WidgetId) -> Vec<String> {
        let rec = &self.widgets[&w.0];
        rec.class
            .resources
            .iter()
            .map(|r| r.name.to_string())
            .collect()
    }

    // ----- widget tree ----------------------------------------------------

    /// Creates a widget.
    ///
    /// Resource precedence matches Xt: creation `init` arguments override
    /// the resource database, which overrides class defaults. Constraint
    /// resources are drawn from the parent class's constraint list.
    pub fn create_widget(
        &mut self,
        name: &str,
        class_name: &str,
        parent: Option<WidgetId>,
        display_idx: usize,
        init: &[(String, String)],
        managed: bool,
    ) -> Result<WidgetId, XtError> {
        let class = self
            .class(class_name)
            .ok_or_else(|| XtError::UnknownClass(class_name.to_string()))?;
        if self.by_name.contains_key(name) {
            return Err(XtError::DuplicateName(name.to_string()));
        }
        if let Some(p) = parent {
            let prec = self
                .widgets
                .get(&p.0)
                .ok_or_else(|| XtError::UnknownWidget(format!("#{}", p.0)))?;
            if !prec.class.is_composite {
                return Err(XtError::NotComposite(prec.name.clone()));
            }
        }
        let id = WidgetId(self.next_id);
        self.next_id += 1;
        let display_idx = parent
            .map(|p| self.widgets[&p.0].display_idx)
            .unwrap_or(display_idx);

        // Build the instance name/class paths for Xrm queries.
        let (mut names, mut classes) = match parent {
            Some(p) => self.widget_path(p),
            None => (Vec::new(), Vec::new()),
        };
        names.push(name.to_string());
        classes.push(class.name.clone());
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let class_refs: Vec<&str> = classes.iter().map(String::as_str).collect();

        let mut resources: HashMap<&'static str, ResourceValue> = HashMap::new();
        let mut tracked = WIDGET_OVERHEAD;
        for spec in &class.resources {
            let explicit = init
                .iter()
                .find(|(n, _)| n == spec.name)
                .map(|(_, v)| v.clone());
            let from_db = if explicit.is_none() {
                self.resource_db
                    .query(&name_refs, &class_refs, spec.name, spec.class)
            } else {
                None
            };
            let source_is_explicit = explicit.is_some();
            let text = explicit
                .or(from_db)
                .unwrap_or_else(|| spec.default.to_string());
            let fonts = &self.displays[display_idx].fonts;
            let value = match self
                .converters
                .convert(spec.ty, &text, &ConvertCtx { fonts })
            {
                Ok(v) => v,
                Err(message) => {
                    if source_is_explicit {
                        return Err(XtError::Conversion {
                            resource: spec.name.to_string(),
                            message,
                        });
                    }
                    // Bad database value: warn and fall back to the default.
                    self.warnings.push(format!(
                        "Xt warning: {message} (resource {} of {name}); using default",
                        spec.name
                    ));
                    self.converters
                        .convert(spec.ty, spec.default, &ConvertCtx { fonts })
                        .map_err(|message| XtError::Conversion {
                            resource: spec.name.to_string(),
                            message,
                        })?
                }
            };
            tracked += value.tracked_size();
            resources.insert(spec.name, value);
        }

        // Constraint resources come from the parent's class.
        let mut constraints: HashMap<&'static str, ResourceValue> = HashMap::new();
        if let Some(p) = parent {
            let pclass = self.widgets[&p.0].class.clone();
            for spec in &pclass.constraint_resources {
                let explicit = init
                    .iter()
                    .find(|(n, _)| n == spec.name)
                    .map(|(_, v)| v.clone());
                let text = explicit.unwrap_or_else(|| spec.default.to_string());
                let fonts = &self.displays[display_idx].fonts;
                let value = self
                    .converters
                    .convert(spec.ty, &text, &ConvertCtx { fonts })
                    .map_err(|message| XtError::Conversion {
                        resource: spec.name.to_string(),
                        message,
                    })?;
                tracked += value.tracked_size();
                constraints.insert(spec.name, value);
            }
        }

        // Translations: class defaults merged with any instance value.
        let mut translations = class.default_translations.clone();
        if let Some(ResourceValue::Translations(t)) = resources.get("translations") {
            if !t.entries.is_empty() {
                translations.merge(t.clone(), MergeMode::Override);
            }
        }

        let rec = WidgetRec {
            id,
            name: name.to_string(),
            class: class.clone(),
            parent,
            children: Vec::new(),
            popups: Vec::new(),
            resources,
            constraints,
            translations,
            managed,
            realized: false,
            window: None,
            display_idx,
            popped_up: false,
            state: HashMap::new(),
            accelerators_installed: Vec::new(),
        };
        self.memstats.alloc(tracked);
        self.telemetry.count("xt.widget.creates");
        self.telemetry
            .event("widget.create", || format!("{name} {}", class.name));
        self.widgets.insert(id.0, rec);
        self.by_name.insert(name.to_string(), id);
        if let Some(p) = parent {
            self.widgets.get_mut(&p.0).unwrap().children.push(id);
        }
        let ops = class.ops.clone();
        ops.initialize(self, id);

        // If the parent is already realized, realize the new widget into
        // the live tree (Wafe lets applications grow the tree at runtime).
        if let Some(p) = parent {
            if self.widgets[&p.0].realized {
                let pwin = self.widgets[&p.0].window.unwrap();
                self.do_layout(self.root_of(p));
                self.create_windows(id, pwin);
                self.redisplay_tree(self.root_of(p));
                self.sync_geometry(self.root_of(p));
            }
        }
        Ok(id)
    }

    /// Destroys a widget and its subtree; fires `destroyCallback`s,
    /// releases windows, names and tracked memory.
    pub fn destroy_widget(&mut self, w: WidgetId) {
        if !self.widgets.contains_key(&w.0) {
            return;
        }
        // Fire the destroy callback before teardown, like Xt phase one.
        self.call_callbacks(w, "destroyCallback", HashMap::new());
        let (children, popups) = {
            let rec = &self.widgets[&w.0];
            (rec.children.clone(), rec.popups.clone())
        };
        for c in popups {
            self.destroy_widget(c);
        }
        for c in children {
            self.destroy_widget(c);
        }
        let ops = self.widgets[&w.0].class.ops.clone();
        ops.destroy(self, w);
        let rec = self.widgets.remove(&w.0).unwrap();
        let mut tracked = WIDGET_OVERHEAD;
        tracked += rec
            .resources
            .values()
            .map(ResourceValue::tracked_size)
            .sum::<usize>();
        tracked += rec
            .constraints
            .values()
            .map(ResourceValue::tracked_size)
            .sum::<usize>();
        self.memstats.free(tracked);
        self.telemetry.count("xt.widget.destroys");
        self.telemetry.event("widget.destroy", || {
            format!("{} {}", rec.name, rec.class.name)
        });
        self.by_name.remove(&rec.name);
        if let Some(p) = rec.parent {
            if let Some(prec) = self.widgets.get_mut(&p.0) {
                prec.children.retain(|&c| c != w);
                prec.popups.retain(|&c| c != w);
            }
        }
        if let Some(win) = rec.window {
            self.window_map.remove(&(rec.display_idx, win));
            // Destroy the window only if an ancestor's window teardown
            // has not already taken it.
            self.displays[rec.display_idx].destroy_window(win);
        }
    }

    /// Looks up a widget by its Wafe name.
    pub fn lookup(&self, name: &str) -> Option<WidgetId> {
        self.by_name.get(name).copied()
    }

    /// The widget record (panics on stale id — internal use).
    pub fn widget(&self, w: WidgetId) -> &WidgetRec {
        &self.widgets[&w.0]
    }

    /// True if the id refers to a live widget.
    pub fn is_alive(&self, w: WidgetId) -> bool {
        self.widgets.contains_key(&w.0)
    }

    /// Mutable widget record.
    pub fn widget_mut(&mut self, w: WidgetId) -> &mut WidgetRec {
        self.widgets.get_mut(&w.0).unwrap()
    }

    /// Number of live widgets.
    pub fn widget_count(&self) -> usize {
        self.widgets.len()
    }

    /// Names of all live widgets, sorted.
    pub fn widget_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.by_name.keys().cloned().collect();
        v.sort();
        v
    }

    /// Live widgets in creation order. Ids are allocated monotonically
    /// and never reused, so id order *is* creation order — parents
    /// always precede their children, which is what lets the session
    /// checkpoint rebuild the tree by replaying creation records.
    pub fn widgets_in_creation_order(&self) -> Vec<WidgetId> {
        let mut ids: Vec<u32> = self.widgets.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(WidgetId).collect()
    }

    /// The `(resource, value)` creation arguments that rebuild this
    /// widget's current resource state: every class (and parent
    /// constraint) resource whose display string differs from its
    /// default *and* converts back to an equal value. Resources whose
    /// display form is not re-convertible (resolved fonts, decoded
    /// pixmaps, merged translation tables) are skipped — the checkpoint
    /// only records what it can prove it can restore.
    pub fn snapshot_init_pairs(&self, w: WidgetId) -> Vec<(String, String)> {
        let rec = &self.widgets[&w.0];
        let fonts = &self.displays[rec.display_idx].fonts;
        let ctx = ConvertCtx { fonts };
        let mut pairs = Vec::new();
        {
            let mut consider = |spec: &crate::resource::ResourceSpec,
                                value: Option<&ResourceValue>| {
                let Some(value) = value else { return };
                let text = value.to_display_string();
                if text == spec.default {
                    return;
                }
                if let Ok(back) = self.converters.convert(spec.ty, &text, &ctx) {
                    if back.to_display_string() == text {
                        pairs.push((spec.name.to_string(), text));
                    }
                }
            };
            for spec in &rec.class.resources {
                if spec.name == "translations" {
                    continue; // A merged table, not re-settable text.
                }
                consider(spec, rec.resources.get(spec.name));
            }
            if let Some(p) = rec.parent {
                for spec in &self.widgets[&p.0].class.constraint_resources {
                    consider(spec, rec.constraints.get(spec.name));
                }
            }
        }
        pairs
    }

    /// The shell at the root of a widget's tree.
    pub fn root_of(&self, mut w: WidgetId) -> WidgetId {
        while let Some(p) = self.widgets[&w.0].parent {
            w = p;
        }
        w
    }

    /// The instance name path and class path from the root down to `w`.
    pub fn widget_path(&self, w: WidgetId) -> (Vec<String>, Vec<String>) {
        let mut names = Vec::new();
        let mut classes = Vec::new();
        let mut cur = Some(w);
        while let Some(c) = cur {
            let rec = &self.widgets[&c.0];
            names.push(rec.name.clone());
            classes.push(rec.class.name.clone());
            cur = rec.parent;
        }
        names.reverse();
        classes.reverse();
        (names, classes)
    }

    // ----- typed resource accessors (for widget implementations) ---------

    /// Reads a dimension resource (0 when absent).
    pub fn dim_resource(&self, w: WidgetId, name: &str) -> u32 {
        match self.widgets[&w.0].resources.get(name) {
            Some(ResourceValue::Dim(d)) => *d,
            Some(ResourceValue::Int(i)) => *i as u32,
            _ => 0,
        }
    }

    /// Reads a position resource (0 when absent).
    pub fn pos_resource(&self, w: WidgetId, name: &str) -> i32 {
        match self.widgets[&w.0].resources.get(name) {
            Some(ResourceValue::Pos(p)) => *p,
            Some(ResourceValue::Int(i)) => *i as i32,
            _ => 0,
        }
    }

    /// Reads a string resource (empty when absent).
    pub fn str_resource(&self, w: WidgetId, name: &str) -> String {
        match self.widgets[&w.0].resources.get(name) {
            Some(ResourceValue::Str(s)) => s.clone(),
            Some(other) => other.to_display_string(),
            None => String::new(),
        }
    }

    /// Reads a boolean resource (false when absent).
    pub fn bool_resource(&self, w: WidgetId, name: &str) -> bool {
        matches!(
            self.widgets[&w.0].resources.get(name),
            Some(ResourceValue::Bool(true))
        )
    }

    /// Reads a pixel resource (black when absent).
    pub fn pixel_resource(&self, w: WidgetId, name: &str) -> Pixel {
        match self.widgets[&w.0].resources.get(name) {
            Some(ResourceValue::Pixel(p)) => *p,
            _ => 0,
        }
    }

    /// Reads a font resource (the default font when absent).
    pub fn font_resource(&self, w: WidgetId, name: &str) -> FontId {
        match self.widgets[&w.0].resources.get(name) {
            Some(ResourceValue::Font(f)) => *f,
            _ => self.displays[self.widgets[&w.0].display_idx]
                .fonts
                .default_font(),
        }
    }

    /// Reads class-private instance state.
    pub fn state(&self, w: WidgetId, key: &str) -> String {
        self.widgets[&w.0]
            .state
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// Writes class-private instance state.
    pub fn set_state(&mut self, w: WidgetId, key: &str, value: impl Into<String>) {
        self.widgets
            .get_mut(&w.0)
            .unwrap()
            .state
            .insert(key.to_string(), value.into());
    }

    /// The font database of the widget's display.
    pub fn fonts_of(&self, w: WidgetId) -> &FontDb {
        &self.displays[self.widgets[&w.0].display_idx].fonts
    }

    /// Writes a typed resource directly (no conversion, no hooks) —
    /// used by layout code for geometry fields.
    pub fn put_resource(&mut self, w: WidgetId, name: &'static str, value: ResourceValue) {
        let rec = self.widgets.get_mut(&w.0).unwrap();
        let old = rec.resources.insert(name, value);
        let newsz = rec.resources[name].tracked_size();
        if let Some(o) = old {
            self.memstats.free(o.tracked_size());
        }
        self.memstats.alloc(newsz);
    }

    /// Writes a constraint resource directly.
    pub fn put_constraint(&mut self, w: WidgetId, name: &'static str, value: ResourceValue) {
        let rec = self.widgets.get_mut(&w.0).unwrap();
        let old = rec.constraints.insert(name, value);
        let newsz = rec.constraints[name].tracked_size();
        if let Some(o) = old {
            self.memstats.free(o.tracked_size());
        }
        self.memstats.alloc(newsz);
    }

    /// Reads a constraint resource.
    pub fn constraint(&self, w: WidgetId, name: &str) -> Option<&ResourceValue> {
        self.widgets[&w.0].constraints.get(name)
    }

    // ----- setValues / getValues ------------------------------------------

    /// `XtSetValues` for one resource, from its string form.
    ///
    /// Frees the old value's tracked memory (the paper's memory
    /// management discipline), converts and stores the new one, then
    /// lets the class react and refreshes geometry/display if realized.
    pub fn set_resource(&mut self, w: WidgetId, name: &str, text: &str) -> Result<(), XtError> {
        let rec = self
            .widgets
            .get(&w.0)
            .ok_or_else(|| XtError::UnknownWidget(format!("#{}", w.0)))?;
        let class = rec.class.clone();
        let display_idx = rec.display_idx;
        let (ty, key, is_constraint) = if let Some(spec) = class.resource(name) {
            (spec.ty, spec.name, false)
        } else if let Some(pspec) = rec
            .parent
            .and_then(|p| self.widgets[&p.0].class.constraint(name).cloned())
        {
            (pspec.ty, pspec.name, true)
        } else {
            return Err(XtError::NoSuchResource {
                widget: rec.name.clone(),
                resource: name.to_string(),
            });
        };
        let fonts = &self.displays[display_idx].fonts;
        let value = self
            .converters
            .convert(ty, text, &ConvertCtx { fonts })
            .map_err(|message| XtError::Conversion {
                resource: name.to_string(),
                message,
            })?;
        if is_constraint {
            self.put_constraint(w, key, value);
        } else {
            if key == "translations" {
                if let ResourceValue::Translations(t) = &value {
                    self.widgets.get_mut(&w.0).unwrap().translations = t.clone();
                }
            }
            self.put_resource(w, key, value);
        }
        let ops = class.ops.clone();
        ops.set_values(self, w, &[name.to_string()]);
        if self.widgets[&w.0].realized {
            let root = self.root_of(w);
            self.do_layout(root);
            self.sync_geometry(root);
            self.redisplay_tree(root);
            self.displays[display_idx].flush();
        }
        Ok(())
    }

    /// `XtGetValues` (extended): the display-string form of a resource or
    /// constraint — the paper notes Wafe can read back even callback
    /// resources.
    pub fn get_resource_string(&self, w: WidgetId, name: &str) -> Result<String, XtError> {
        let rec = self
            .widgets
            .get(&w.0)
            .ok_or_else(|| XtError::UnknownWidget(format!("#{}", w.0)))?;
        if name == "translations" {
            return Ok(rec.translations.to_display_string());
        }
        if let Some(v) = rec.resources.get(name) {
            return Ok(v.to_display_string());
        }
        if let Some(v) = rec.constraints.get(name) {
            return Ok(v.to_display_string());
        }
        Err(XtError::NoSuchResource {
            widget: rec.name.clone(),
            resource: name.to_string(),
        })
    }

    /// Merges a translation table into a widget (`XtOverrideTranslations`
    /// and friends — the Wafe `action` command).
    pub fn merge_translations(&mut self, w: WidgetId, table: TranslationTable, mode: MergeMode) {
        let rec = self.widgets.get_mut(&w.0).unwrap();
        rec.translations.merge(table, mode);
    }

    /// `XtInstallAccelerators`: events arriving at `dest` that match
    /// `src`'s `accelerators` resource run `src`'s actions.
    pub fn install_accelerators(&mut self, dest: WidgetId, src: WidgetId) {
        let table = match self.widgets[&src.0].resources.get("accelerators") {
            Some(ResourceValue::Translations(t)) if !t.entries.is_empty() => t.clone(),
            _ => return,
        };
        self.widgets
            .get_mut(&dest.0)
            .unwrap()
            .accelerators_installed
            .push((table, src));
    }

    /// `XtInstallAllAccelerators`: installs the accelerators of every
    /// widget in `root`'s subtree onto `dest`.
    pub fn install_all_accelerators(&mut self, dest: WidgetId, root: WidgetId) {
        let mut stack = vec![root];
        while let Some(w) = stack.pop() {
            self.install_accelerators(dest, w);
            stack.extend(self.widgets[&w.0].children.iter().copied());
            stack.extend(self.widgets[&w.0].popups.iter().copied());
        }
    }

    // ----- geometry and realize -------------------------------------------

    /// Runs the size pass (bottom-up preferred sizes) and layout pass
    /// (top-down placement) over a tree.
    pub fn do_layout(&mut self, w: WidgetId) {
        self.size_pass(w);
        self.place_pass(w);
    }

    fn size_pass(&mut self, w: WidgetId) {
        let children = self.widgets[&w.0].children.clone();
        for c in children {
            self.size_pass(c);
        }
        let ops = self.widgets[&w.0].class.ops.clone();
        let (pw, ph) = ops.preferred_size(self, w);
        if self.dim_resource(w, "width") == 0 {
            self.put_resource(w, "width", ResourceValue::Dim(pw));
        }
        if self.dim_resource(w, "height") == 0 {
            self.put_resource(w, "height", ResourceValue::Dim(ph));
        }
    }

    fn place_pass(&mut self, w: WidgetId) {
        let ops = self.widgets[&w.0].class.ops.clone();
        ops.layout(self, w);
        let children = self.widgets[&w.0].children.clone();
        for c in children {
            self.place_pass(c);
        }
    }

    /// `XtRealizeWidget`: computes layout, creates windows for the whole
    /// tree, maps managed widgets and paints.
    pub fn realize(&mut self, w: WidgetId) {
        if self.widgets[&w.0].realized {
            return;
        }
        self.do_layout(w);
        let display_idx = self.widgets[&w.0].display_idx;
        let root_win = self.displays[display_idx].root();
        self.create_windows(w, root_win);
        self.redisplay_tree(w);
        self.displays[display_idx].flush();
    }

    /// True if a widget has been realized.
    pub fn is_realized(&self, w: WidgetId) -> bool {
        self.widgets.get(&w.0).map(|r| r.realized).unwrap_or(false)
    }

    fn create_windows(&mut self, w: WidgetId, parent_window: WindowId) {
        let (rect, border, background, display_idx, managed, mapped_when_managed) = {
            let rec = &self.widgets[&w.0];
            (
                Rect::new(
                    self.pos_resource(w, "x"),
                    self.pos_resource(w, "y"),
                    self.dim_resource(w, "width").max(1),
                    self.dim_resource(w, "height").max(1),
                ),
                self.dim_resource(w, "borderWidth"),
                self.pixel_resource(w, "background"),
                rec.display_idx,
                rec.managed,
                self.bool_resource(w, "mappedWhenManaged"),
            )
        };
        let win = self.displays[display_idx].create_window(
            parent_window,
            WindowAttributes {
                rect,
                border_width: border,
                background,
                override_redirect: false,
            },
        );
        {
            let rec = self.widgets.get_mut(&w.0).unwrap();
            rec.window = Some(win);
            rec.realized = true;
        }
        self.window_map.insert((display_idx, win), w);
        if managed && mapped_when_managed {
            self.displays[display_idx].map_window(win);
        }
        let children = self.widgets[&w.0].children.clone();
        for c in children {
            self.create_windows(c, win);
        }
    }

    /// Pushes resource geometry down to the live windows after a layout.
    pub fn sync_geometry(&mut self, w: WidgetId) {
        let rec = &self.widgets[&w.0];
        let display_idx = rec.display_idx;
        if let Some(win) = rec.window {
            let rect = Rect::new(
                self.pos_resource(w, "x"),
                self.pos_resource(w, "y"),
                self.dim_resource(w, "width").max(1),
                self.dim_resource(w, "height").max(1),
            );
            let bg = self.pixel_resource(w, "background");
            let bc = self.pixel_resource(w, "borderColor");
            let bw = self.dim_resource(w, "borderWidth");
            self.displays[display_idx].configure_window(win, rect);
            self.displays[display_idx].set_window_attrs(win, Some(bg), Some(bc), Some(bw));
        }
        let children = self.widgets[&w.0].children.clone();
        for c in children {
            self.sync_geometry(c);
        }
    }

    /// Recomputes the retained drawing of a whole tree.
    pub fn redisplay_tree(&mut self, w: WidgetId) {
        self.redisplay_widget(w);
        let children = self.widgets[&w.0].children.clone();
        for c in children {
            self.redisplay_tree(c);
        }
    }

    /// Recomputes one widget's retained drawing.
    pub fn redisplay_widget(&mut self, w: WidgetId) {
        let rec = &self.widgets[&w.0];
        let (win, display_idx) = match rec.window {
            Some(win) => (win, rec.display_idx),
            None => return,
        };
        let ops = rec.class.ops.clone();
        let list = ops.redisplay(self, w);
        self.displays[display_idx].set_display_list(win, list);
    }

    /// Manages a child (maps it if realized) and relayouts the parent.
    pub fn manage_child(&mut self, w: WidgetId) {
        self.widgets.get_mut(&w.0).unwrap().managed = true;
        let rec = &self.widgets[&w.0];
        if let (Some(win), true) = (rec.window, self.bool_resource(w, "mappedWhenManaged")) {
            let di = rec.display_idx;
            self.displays[di].map_window(win);
        }
        if let Some(p) = self.widgets[&w.0].parent {
            let root = self.root_of(p);
            if self.widgets[&root.0].realized {
                self.do_layout(root);
                self.sync_geometry(root);
            }
        }
    }

    /// Unmanages a child (unmaps it if realized).
    pub fn unmanage_child(&mut self, w: WidgetId) {
        self.widgets.get_mut(&w.0).unwrap().managed = false;
        let rec = &self.widgets[&w.0];
        if let Some(win) = rec.window {
            let di = rec.display_idx;
            self.displays[di].unmap_window(win);
        }
    }

    // ----- popups -----------------------------------------------------------

    /// Registers `shell` as a popup child of `parent` (shells created
    /// with a widget parent become popups, like `XtCreatePopupShell`).
    pub fn add_popup(&mut self, parent: WidgetId, shell: WidgetId) {
        self.widgets.get_mut(&parent.0).unwrap().popups.push(shell);
        // Popup shells are not normal children for layout purposes.
        self.widgets
            .get_mut(&parent.0)
            .unwrap()
            .children
            .retain(|&c| c != shell);
        self.widgets.get_mut(&shell.0).unwrap().parent = Some(parent);
    }

    /// `XtPopup`: realizes the shell if needed, maps and raises it and
    /// installs the grab.
    pub fn popup(&mut self, shell: WidgetId, grab: GrabKind) {
        let display_idx = self.widgets[&shell.0].display_idx;
        if !self.widgets[&shell.0].realized {
            self.do_layout(shell);
            let root_win = self.displays[display_idx].root();
            self.create_windows_popup(shell, root_win);
            self.redisplay_tree(shell);
        }
        let win = self.widgets[&shell.0].window.unwrap();
        self.displays[display_idx].map_window(win);
        self.displays[display_idx].raise_window(win);
        self.displays[display_idx].add_grab(win, grab);
        self.widgets.get_mut(&shell.0).unwrap().popped_up = true;
        self.displays[display_idx].flush();
    }

    fn create_windows_popup(&mut self, w: WidgetId, root_win: WindowId) {
        // Like create_windows but the shell itself maps only on popup.
        let saved_managed = self.widgets[&w.0].managed;
        self.widgets.get_mut(&w.0).unwrap().managed = false;
        self.create_windows(w, root_win);
        self.widgets.get_mut(&w.0).unwrap().managed = saved_managed;
    }

    /// `XtPopdown`: unmaps the shell and releases its grab.
    pub fn popdown(&mut self, shell: WidgetId) {
        let rec = &self.widgets[&shell.0];
        let display_idx = rec.display_idx;
        if let Some(win) = rec.window {
            self.displays[display_idx].remove_grab(win);
            self.displays[display_idx].unmap_window(win);
        }
        self.widgets.get_mut(&shell.0).unwrap().popped_up = false;
        self.displays[display_idx].flush();
    }

    /// True if the shell is currently popped up.
    pub fn is_popped_up(&self, shell: WidgetId) -> bool {
        self.widgets
            .get(&shell.0)
            .map(|r| r.popped_up)
            .unwrap_or(false)
    }

    // ----- callbacks -----------------------------------------------------------

    /// `XtCallCallbacks`: runs a widget's callback list. Scripts become
    /// host calls; predefined callbacks execute natively.
    pub fn call_callbacks(&mut self, w: WidgetId, resource: &str, data: HashMap<char, String>) {
        let rec = match self.widgets.get(&w.0) {
            Some(r) => r,
            None => return,
        };
        let items = match rec.resources.get(resource) {
            Some(ResourceValue::Callback(items)) => items.clone(),
            _ => return,
        };
        let widget_name = rec.name.clone();
        for item in items {
            match item {
                CallbackItem::Script(script) => {
                    self.host_calls.push_back(HostCall {
                        widget: w,
                        widget_name: widget_name.clone(),
                        script,
                        event: None,
                        data: data.clone(),
                        kind: HostCallKind::Callback(resource.to_string()),
                    });
                }
                CallbackItem::Predefined { kind, shell } => {
                    self.run_predefined(w, kind, &shell);
                }
            }
        }
    }

    /// Executes one of the paper's predefined callbacks against a named
    /// shell.
    pub fn run_predefined(&mut self, invoking: WidgetId, kind: PredefinedCallback, shell: &str) {
        let shell_id = match self.lookup(shell) {
            Some(s) => s,
            None => {
                self.warnings
                    .push(format!("predefined callback: no shell named \"{shell}\""));
                return;
            }
        };
        match kind {
            PredefinedCallback::None => self.popup(shell_id, GrabKind::None),
            PredefinedCallback::Exclusive => self.popup(shell_id, GrabKind::Exclusive),
            PredefinedCallback::Nonexclusive => self.popup(shell_id, GrabKind::Nonexclusive),
            PredefinedCallback::Popdown => self.popdown(shell_id),
            PredefinedCallback::Position => {
                // Under the invoking widget.
                let di = self.widgets[&invoking.0].display_idx;
                if let Some(win) = self.widgets[&invoking.0].window {
                    let abs = self.displays[di].abs_rect(win);
                    self.put_resource(shell_id, "x", ResourceValue::Pos(abs.x));
                    self.put_resource(shell_id, "y", ResourceValue::Pos(abs.y + abs.h as i32));
                }
                self.popup(shell_id, GrabKind::None);
            }
            PredefinedCallback::PositionCursor => {
                let di = self.widgets[&invoking.0].display_idx;
                let p = self.displays[di].pointer();
                self.put_resource(shell_id, "x", ResourceValue::Pos(p.x));
                self.put_resource(shell_id, "y", ResourceValue::Pos(p.y));
                self.popup(shell_id, GrabKind::None);
            }
        }
    }

    /// Queues a host call directly (used by the global `exec` action).
    pub fn queue_host_call(&mut self, call: HostCall) {
        self.telemetry.count("xt.hostcalls.queued");
        self.host_calls.push_back(call);
    }

    /// Takes all pending host calls for the embedding to execute.
    pub fn take_host_calls(&mut self) -> Vec<HostCall> {
        self.host_calls.drain(..).collect()
    }

    /// Number of queued host calls.
    pub fn pending_host_calls(&self) -> usize {
        self.host_calls.len()
    }

    // ----- event dispatch ---------------------------------------------------

    /// Processes every pending event on every display; returns how many
    /// were dispatched.
    pub fn dispatch_pending(&mut self) -> usize {
        let mut n = 0;
        for di in 0..self.displays.len() {
            while let Some(e) = self.displays[di].next_event() {
                self.dispatch_event(di, e);
                n += 1;
            }
        }
        if n > 0 {
            self.telemetry.add("xt.events.dispatched", n as u64);
        }
        n
    }

    fn dispatch_event(&mut self, display_idx: usize, event: Event) {
        let w = match self.window_map.get(&(display_idx, event.window)) {
            Some(w) => *w,
            None => return,
        };
        if !self.widgets.contains_key(&w.0) {
            return;
        }
        match event.kind {
            EventKind::Expose => {
                self.redisplay_widget(w);
                self.displays[display_idx].flush();
            }
            EventKind::ConfigureNotify => {
                // Keep x/y resources in sync with the server.
                self.put_resource(w, "x", ResourceValue::Pos(event.x));
                self.put_resource(w, "y", ResourceValue::Pos(event.y));
            }
            EventKind::MapNotify
            | EventKind::UnmapNotify
            | EventKind::DestroyNotify
            | EventKind::ClientMessage => {}
            _ => {
                if !self.is_sensitive(w) {
                    return;
                }
                let actions = self.widgets[&w.0]
                    .translations
                    .lookup(&event)
                    .map(|a| a.to_vec());
                if let Some(actions) = actions {
                    for (name, args) in actions {
                        self.run_action(w, &name, &args, &event);
                    }
                    return;
                }
                // Accelerators: the event matches here, but the actions
                // run on the source widget (`XtInstallAccelerators`).
                let accel = self.widgets[&w.0]
                    .accelerators_installed
                    .iter()
                    .find_map(|(table, src)| table.lookup(&event).map(|a| (a.to_vec(), *src)));
                if let Some((actions, src)) = accel {
                    if self.widgets.contains_key(&src.0) && self.is_sensitive(src) {
                        for (name, args) in actions {
                            self.run_action(src, &name, &args, &event);
                        }
                    }
                }
            }
        }
    }

    /// True if the widget and all its ancestors are sensitive.
    pub fn is_sensitive(&self, w: WidgetId) -> bool {
        let mut cur = Some(w);
        while let Some(c) = cur {
            if !self.bool_resource(c, "sensitive") {
                return false;
            }
            cur = self.widgets[&c.0].parent;
        }
        true
    }

    /// Runs a named action: widget-class table first, then the global
    /// table, else a warning (Xt's "can't find action" warning).
    pub fn run_action(&mut self, w: WidgetId, name: &str, args: &[String], event: &Event) {
        let class_action = self.widgets[&w.0].class.actions.get(name);
        if let Some(f) = class_action {
            f(self, w, event, args);
            return;
        }
        if let Some(f) = self.global_actions.get(name) {
            f(self, w, event, args);
            return;
        }
        self.warnings.push(format!(
            "Xt warning: could not find action procedure \"{name}\" for widget \"{}\"",
            self.widgets[&w.0].name
        ));
    }

    /// Drains accumulated warnings.
    pub fn take_warnings(&mut self) -> Vec<String> {
        std::mem::take(&mut self.warnings)
    }

    /// Adds a warning (used by embedding layers).
    pub fn warn(&mut self, message: impl Into<String>) {
        self.warnings.push(message.into());
    }

    /// The widget owning a window, if any.
    pub fn widget_for_window(&self, display_idx: usize, win: WindowId) -> Option<WidgetId> {
        self.window_map.get(&(display_idx, win)).copied()
    }
}

impl Default for XtApp {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widget::core_class;

    fn app_with_core() -> XtApp {
        let mut app = XtApp::new();
        app.register_class(core_class("Shell", true, true));
        app.register_class(core_class("Core", false, false));
        app.register_class(core_class("Box", false, true));
        app
    }

    fn mk(app: &mut XtApp, name: &str, class: &str, parent: Option<WidgetId>) -> WidgetId {
        app.create_widget(name, class, parent, 0, &[], true)
            .unwrap()
    }

    #[test]
    fn create_and_lookup() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let c = mk(&mut app, "child", "Core", Some(top));
        assert_eq!(app.lookup("top"), Some(top));
        assert_eq!(app.lookup("child"), Some(c));
        assert_eq!(app.widget(c).parent, Some(top));
        assert_eq!(app.widget(top).children, vec![c]);
        assert_eq!(app.widget_count(), 2);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut app = app_with_core();
        mk(&mut app, "top", "Shell", None);
        let e = app
            .create_widget("top", "Shell", None, 0, &[], true)
            .unwrap_err();
        assert_eq!(e, XtError::DuplicateName("top".into()));
    }

    #[test]
    fn unknown_class_rejected() {
        let mut app = app_with_core();
        let e = app
            .create_widget("x", "Nope", None, 0, &[], true)
            .unwrap_err();
        assert_eq!(e, XtError::UnknownClass("Nope".into()));
    }

    #[test]
    fn children_of_leaf_rejected() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let leaf = mk(&mut app, "leaf", "Core", Some(top));
        let e = app
            .create_widget("sub", "Core", Some(leaf), 0, &[], true)
            .unwrap_err();
        assert_eq!(e, XtError::NotComposite("leaf".into()));
    }

    #[test]
    fn init_args_override_defaults() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = app
            .create_widget(
                "w",
                "Core",
                Some(top),
                0,
                &[
                    ("background".into(), "red".into()),
                    ("width".into(), "123".into()),
                ],
                true,
            )
            .unwrap();
        assert_eq!(app.pixel_resource(w, "background"), 0xff0000);
        assert_eq!(app.dim_resource(w, "width"), 123);
    }

    #[test]
    fn bad_init_arg_is_error() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let e = app
            .create_widget(
                "w",
                "Core",
                Some(top),
                0,
                &[("width".into(), "wide".into())],
                true,
            )
            .unwrap_err();
        assert!(matches!(e, XtError::Conversion { .. }));
    }

    #[test]
    fn resource_db_precedence() {
        let mut app = app_with_core();
        app.resource_db.insert("*background", "blue");
        let top = mk(&mut app, "top", "Shell", None);
        let a = mk(&mut app, "a", "Core", Some(top));
        assert_eq!(app.pixel_resource(a, "background"), 0x0000ff);
        // Explicit argument still wins over the database.
        let b = app
            .create_widget(
                "b",
                "Core",
                Some(top),
                0,
                &[("background".into(), "red".into())],
                true,
            )
            .unwrap();
        assert_eq!(app.pixel_resource(b, "background"), 0xff0000);
    }

    #[test]
    fn bad_db_value_warns_and_uses_default() {
        let mut app = app_with_core();
        app.resource_db.insert("*background", "nocolorofthisname");
        let top = mk(&mut app, "top", "Shell", None);
        let a = mk(&mut app, "a", "Core", Some(top));
        assert_eq!(app.pixel_resource(a, "background"), 0xffffff);
        assert!(!app.take_warnings().is_empty());
    }

    #[test]
    fn set_get_resource_roundtrip() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = mk(&mut app, "w", "Core", Some(top));
        app.set_resource(w, "background", "tomato").unwrap();
        assert_eq!(app.get_resource_string(w, "background").unwrap(), "#ff6347");
        assert!(app.set_resource(w, "nosuch", "x").is_err());
        assert!(app.get_resource_string(w, "nosuch").is_err());
    }

    #[test]
    fn memory_accounting_balances_on_destroy() {
        let mut app = app_with_core();
        let before = app.memstats.current();
        let top = mk(&mut app, "top", "Shell", None);
        for i in 0..10 {
            let w = mk(&mut app, &format!("w{i}"), "Core", Some(top));
            app.set_resource(w, "background", "red").unwrap();
        }
        assert!(app.memstats.current() > before);
        app.destroy_widget(top);
        assert_eq!(
            app.memstats.current(),
            before,
            "destroy must free all tracked memory"
        );
        assert_eq!(app.widget_count(), 0);
    }

    #[test]
    fn memory_update_frees_old_value() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = mk(&mut app, "w", "Core", Some(top));
        app.put_resource(w, "accel_dummy", ResourceValue::Str("0123456789".into()));
        let with_long = app.memstats.current();
        app.put_resource(w, "accel_dummy", ResourceValue::Str("x".into()));
        assert_eq!(app.memstats.current(), with_long - 9);
    }

    #[test]
    fn realize_creates_and_maps_windows() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = app
            .create_widget(
                "w",
                "Core",
                Some(top),
                0,
                &[
                    ("width".into(), "50".into()),
                    ("height".into(), "20".into()),
                ],
                true,
            )
            .unwrap();
        app.realize(top);
        assert!(app.is_realized(top));
        assert!(app.is_realized(w));
        let win = app.widget(w).window.unwrap();
        assert!(app.displays[0].is_viewable(win));
        assert_eq!(app.widget_for_window(0, win), Some(w));
    }

    #[test]
    fn unmanaged_widget_not_mapped() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = app
            .create_widget("w", "Core", Some(top), 0, &[], false)
            .unwrap();
        app.realize(top);
        let win = app.widget(w).window.unwrap();
        assert!(!app.displays[0].is_viewable(win));
        app.manage_child(w);
        assert!(app.displays[0].is_viewable(win));
        app.unmanage_child(w);
        assert!(!app.displays[0].is_viewable(win));
    }

    #[test]
    fn create_into_realized_tree() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        app.realize(top);
        let w = mk(&mut app, "late", "Core", Some(top));
        assert!(app.is_realized(w));
        assert!(app.displays[0].is_viewable(app.widget(w).window.unwrap()));
    }

    #[test]
    fn popup_popdown_with_grabs() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        app.realize(top);
        let shell = mk(&mut app, "menu", "Shell", None);
        let e = app
            .create_widget("entry", "Core", Some(shell), 0, &[], true)
            .unwrap();
        let _ = e;
        app.popup(shell, GrabKind::Exclusive);
        assert!(app.is_popped_up(shell));
        assert_eq!(app.displays[0].grab_depth(), 1);
        app.popdown(shell);
        assert!(!app.is_popped_up(shell));
        assert_eq!(app.displays[0].grab_depth(), 0);
    }

    #[test]
    fn predefined_callbacks_drive_popups() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let button = app
            .create_widget(
                "b",
                "Core",
                Some(top),
                0,
                &[
                    ("width".into(), "40".into()),
                    ("height".into(), "20".into()),
                ],
                true,
            )
            .unwrap();
        app.realize(top);
        let shell = mk(&mut app, "popup", "Shell", None);
        mk(&mut app, "inner", "Core", Some(shell));
        // none: up with no grab.
        app.run_predefined(button, PredefinedCallback::None, "popup");
        assert!(app.is_popped_up(shell));
        assert_eq!(app.displays[0].grab_depth(), 0);
        app.run_predefined(button, PredefinedCallback::Popdown, "popup");
        assert!(!app.is_popped_up(shell));
        // exclusive: up with grab.
        app.run_predefined(button, PredefinedCallback::Exclusive, "popup");
        assert_eq!(app.displays[0].grab_depth(), 1);
        app.run_predefined(button, PredefinedCallback::Popdown, "popup");
        // position: shell placed under the button.
        app.run_predefined(button, PredefinedCallback::Position, "popup");
        let by = app.pos_resource(shell, "y");
        assert!(by > 0, "shell should sit below the button, y={by}");
        app.run_predefined(button, PredefinedCallback::Popdown, "popup");
        // positionCursor: at the pointer.
        app.displays[0].inject_pointer_move(333, 222);
        app.dispatch_pending();
        app.run_predefined(button, PredefinedCallback::PositionCursor, "popup");
        assert_eq!(app.pos_resource(shell, "x"), 333);
        assert_eq!(app.pos_resource(shell, "y"), 222);
        // Unknown shell warns.
        app.run_predefined(button, PredefinedCallback::None, "ghost");
        assert!(!app.take_warnings().is_empty());
    }

    #[test]
    fn callbacks_queue_host_calls() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = mk(&mut app, "w", "Core", Some(top));
        app.put_resource(
            w,
            "destroyCallback",
            ResourceValue::Callback(vec![CallbackItem::Script("echo bye %w".into())]),
        );
        app.call_callbacks(w, "destroyCallback", HashMap::new());
        let calls = app.take_host_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].script, "echo bye %w");
        assert_eq!(calls[0].widget_name, "w");
        assert_eq!(
            calls[0].kind,
            HostCallKind::Callback("destroyCallback".into())
        );
    }

    #[test]
    fn destroy_fires_destroy_callback() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = mk(&mut app, "w", "Core", Some(top));
        app.set_resource(w, "destroyCallback", "echo destroyed")
            .unwrap();
        app.destroy_widget(w);
        let calls = app.take_host_calls();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].script, "echo destroyed");
        assert!(app.lookup("w").is_none());
    }

    #[test]
    fn translations_drive_actions() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = app
            .create_widget(
                "w",
                "Core",
                Some(top),
                0,
                &[
                    ("width".into(), "100".into()),
                    ("height".into(), "100".into()),
                    ("translations".into(), "<Btn1Down>: ring()".into()),
                ],
                true,
            )
            .unwrap();
        let fired = Rc::new(std::cell::Cell::new(0));
        let f2 = fired.clone();
        app.global_actions.add("ring", move |_, _, _, _| {
            f2.set(f2.get() + 1);
        });
        app.realize(top);
        app.dispatch_pending();
        let win = app.widget(w).window.unwrap();
        let abs = app.displays[0].abs_rect(win);
        app.displays[0].inject_click(abs.x + 5, abs.y + 5, 1);
        app.dispatch_pending();
        assert_eq!(fired.get(), 1);
        // Button 2 does not match.
        app.displays[0].inject_click(abs.x + 5, abs.y + 5, 2);
        app.dispatch_pending();
        assert_eq!(fired.get(), 1);
    }

    #[test]
    fn insensitive_widget_ignores_events() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = app
            .create_widget(
                "w",
                "Core",
                Some(top),
                0,
                &[
                    ("width".into(), "100".into()),
                    ("height".into(), "100".into()),
                    ("translations".into(), "<Btn1Down>: ring()".into()),
                ],
                true,
            )
            .unwrap();
        let fired = Rc::new(std::cell::Cell::new(0));
        let f2 = fired.clone();
        app.global_actions
            .add("ring", move |_, _, _, _| f2.set(f2.get() + 1));
        app.realize(top);
        app.dispatch_pending();
        app.set_resource(w, "sensitive", "false").unwrap();
        let win = app.widget(w).window.unwrap();
        let abs = app.displays[0].abs_rect(win);
        app.displays[0].inject_click(abs.x + 5, abs.y + 5, 1);
        app.dispatch_pending();
        assert_eq!(fired.get(), 0);
        // Parent insensitivity also blocks (ancestorSensitive).
        app.set_resource(w, "sensitive", "true").unwrap();
        app.set_resource(top, "sensitive", "false").unwrap();
        app.displays[0].inject_click(abs.x + 5, abs.y + 5, 1);
        app.dispatch_pending();
        assert_eq!(fired.get(), 0);
    }

    #[test]
    fn unknown_action_warns() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = app
            .create_widget(
                "w",
                "Core",
                Some(top),
                0,
                &[
                    ("width".into(), "50".into()),
                    ("height".into(), "50".into()),
                    ("translations".into(), "<Btn1Down>: missing()".into()),
                ],
                true,
            )
            .unwrap();
        app.realize(top);
        app.dispatch_pending();
        let abs = app.displays[0].abs_rect(app.widget(w).window.unwrap());
        app.displays[0].inject_click(abs.x + 2, abs.y + 2, 1);
        app.dispatch_pending();
        let warnings = app.take_warnings();
        assert!(warnings.iter().any(|m| m.contains("missing")));
    }

    #[test]
    fn get_resource_list_matches_class() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = mk(&mut app, "w", "Core", Some(top));
        let list = app.get_resource_list(w);
        assert_eq!(list.len(), 18);
        assert_eq!(list[0], "destroyCallback");
    }

    #[test]
    fn widget_path_for_xrm() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let b = mk(&mut app, "box", "Box", Some(top));
        let l = mk(&mut app, "leaf", "Core", Some(b));
        let (names, classes) = app.widget_path(l);
        assert_eq!(names, vec!["top", "box", "leaf"]);
        assert_eq!(classes, vec!["Shell", "Box", "Core"]);
    }

    #[test]
    fn second_display_widgets() {
        let mut app = app_with_core();
        let di = app.open_display("dec4:0");
        let top2 = app
            .create_widget("top2", "Shell", None, di, &[], true)
            .unwrap();
        let c = mk(&mut app, "c", "Core", Some(top2));
        assert_eq!(app.widget(c).display_idx, di);
        app.realize(top2);
        assert!(app.displays[di].is_viewable(app.widget(c).window.unwrap()));
        assert_eq!(app.displays[0].window_count(), 1); // only its root
    }

    #[test]
    fn merge_translations_override() {
        let mut app = app_with_core();
        let top = mk(&mut app, "top", "Shell", None);
        let w = mk(&mut app, "w", "Core", Some(top));
        let t = TranslationTable::parse("<Key>q: quitaction()").unwrap();
        app.merge_translations(w, t, MergeMode::Override);
        assert!(app.widget(w).translations.entries.len() == 1);
        let t2 = TranslationTable::parse("<Key>w: other()").unwrap();
        app.merge_translations(w, t2, MergeMode::Augment);
        assert_eq!(app.widget(w).translations.entries.len(), 2);
    }
}
