//! Memory accounting for resources.
//!
//! The paper singles out memory management: "Wafe has its own memory
//! management: every time a string resource, a callback - or other
//! objects larger than one word - are updated, the old value is freed.
//! If a widget is destroyed the associated resources in Wafe's memory
//! are disposed too." Rust frees for us, but the *accounting discipline*
//! is observable behaviour worth reproducing: the tests assert that
//! resource updates never leak tracked bytes and that destroying a
//! widget returns its entire tracked footprint.

/// Tracks logical allocations of resource storage.
#[derive(Debug, Default, Clone)]
pub struct MemStats {
    current: u64,
    peak: u64,
    allocs: u64,
    frees: u64,
    overfrees: u64,
}

impl MemStats {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an allocation of `bytes`.
    pub fn alloc(&mut self, bytes: usize) {
        self.current += bytes as u64;
        self.peak = self.peak.max(self.current);
        self.allocs += 1;
    }

    /// Records a free of `bytes`.
    ///
    /// Freeing more than is tracked — the double-free Wafe's C code
    /// guards against — increments the `overfree` counter and saturates
    /// at zero, so release builds record the fault instead of silently
    /// swallowing it (the counter is surfaced as `xt.mem.overfree` in
    /// `telemetry snapshot`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds on such an underflow.
    pub fn free(&mut self, bytes: usize) {
        if self.current < bytes as u64 {
            self.overfrees += 1;
            #[cfg(debug_assertions)]
            panic!(
                "memory accounting underflow: freeing {bytes} with only {} tracked",
                self.current
            );
        }
        self.current = self.current.saturating_sub(bytes as u64);
        self.frees += 1;
    }

    /// Bytes currently tracked.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Number of allocations recorded.
    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    /// Number of frees recorded.
    pub fn free_count(&self) -> u64 {
        self.frees
    }

    /// Number of frees that exceeded the tracked balance (each one is a
    /// double-free-class accounting bug; always 0 in a healthy run).
    pub fn overfree_count(&self) -> u64 {
        self.overfrees
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_balance() {
        let mut m = MemStats::new();
        m.alloc(100);
        m.alloc(50);
        assert_eq!(m.current(), 150);
        assert_eq!(m.peak(), 150);
        m.free(100);
        assert_eq!(m.current(), 50);
        assert_eq!(m.peak(), 150);
        m.free(50);
        assert_eq!(m.current(), 0);
        assert_eq!(m.alloc_count(), 2);
        assert_eq!(m.free_count(), 2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    #[cfg(debug_assertions)]
    fn underflow_panics_in_debug() {
        let mut m = MemStats::new();
        m.free(1);
    }

    /// Release builds must not panic: the fault is recorded as an
    /// overfree and the balance saturates at zero.
    #[test]
    #[cfg(not(debug_assertions))]
    fn underflow_counts_overfree_in_release() {
        let mut m = MemStats::new();
        m.alloc(10);
        m.free(25);
        assert_eq!(m.current(), 0);
        assert_eq!(m.overfree_count(), 1);
        assert_eq!(m.free_count(), 1);
        // A balanced free afterwards is not an overfree.
        m.alloc(5);
        m.free(5);
        assert_eq!(m.overfree_count(), 1);
    }

    #[test]
    fn balanced_frees_record_no_overfree() {
        let mut m = MemStats::new();
        m.alloc(10);
        m.free(10);
        assert_eq!(m.overfree_count(), 0);
    }
}
