//! Robustness and invariants of the Intrinsics layer: converter and
//! translation parsers never panic; Xrm precedence is monotone; the
//! widget tree stays consistent under random create/destroy sequences.

use wafe_prop::cases;
use wafe_xproto::font::FontDb;
use wafe_xt::converter::{ConvertCtx, ConverterRegistry};
use wafe_xt::resource::ResType;
use wafe_xt::translation::TranslationTable;
use wafe_xt::widget::core_class;
use wafe_xt::xrm::XrmDb;
use wafe_xt::XtApp;

/// Every converter accepts arbitrary input without panicking.
#[test]
fn converters_never_panic() {
    cases(256, |rng| {
        let value = rng.unicode_string(0, 41);
        let fonts = FontDb::new();
        let reg = ConverterRegistry::new();
        for ty in [
            ResType::String,
            ResType::Int,
            ResType::Dimension,
            ResType::Position,
            ResType::Boolean,
            ResType::Pixel,
            ResType::Font,
            ResType::Justify,
            ResType::Orientation,
            ResType::Callback,
            ResType::Translations,
            ResType::StringList,
            ResType::Compound,
            ResType::Cursor,
            ResType::Widget,
        ] {
            let _ = reg.convert(ty, &value, &ConvertCtx { fonts: &fonts });
        }
    });
}

/// The translation parser never panics on arbitrary text.
#[test]
fn translation_parse_never_panics() {
    let alphabet: Vec<char> =
        "<>abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789():,%~! \n"
            .chars()
            .collect();
    cases(256, |rng| {
        let len = rng.range(0, 61);
        let text = rng.string_from(&alphabet, len);
        let _ = TranslationTable::parse(&text);
    });
}

/// Xrm: inserting more entries never makes an existing exact match
/// disappear (precedence is monotone in specificity).
#[test]
fn xrm_monotone() {
    let alphabet: Vec<char> = ('a'..='z').collect();
    cases(256, |rng| {
        let extra = rng.vec(0, 10, |r| {
            let len = r.range(1, 7);
            r.string_from(&alphabet, len)
        });
        let mut db = XrmDb::new();
        db.insert("app.top.leaf.foreground", "exact");
        for (i, name) in extra.iter().enumerate() {
            db.insert(&format!("*{name}{i}.foreground"), "noise");
        }
        let got = db.query(
            &["app", "top", "leaf"],
            &["App", "Shell", "Label"],
            "foreground",
            "Foreground",
        );
        assert_eq!(got, Some("exact".to_string()));
    });
}

/// Random create/destroy interleavings keep widget count and memory
/// accounting consistent.
#[test]
fn tree_consistency() {
    cases(256, |rng| {
        let ops = rng.vec(1, 40, |r| (r.below(2) as u8, r.below(8) as u8));
        let mut app = XtApp::new();
        app.register_class(core_class("Shell", true, true));
        app.register_class(core_class("Core", false, false));
        let top = app
            .create_widget("top", "Shell", None, 0, &[], true)
            .unwrap();
        let mut live: Vec<String> = Vec::new();
        let mut seq = 0usize;
        for (op, pick) in ops {
            if op == 0 || live.is_empty() {
                let name = format!("w{seq}");
                seq += 1;
                app.create_widget(&name, "Core", Some(top), 0, &[], true)
                    .unwrap();
                live.push(name);
            } else {
                let name = live.remove(pick as usize % live.len());
                let id = app.lookup(&name).unwrap();
                app.destroy_widget(id);
            }
            assert_eq!(app.widget_count(), live.len() + 1);
        }
        app.destroy_widget(top);
        assert_eq!(app.widget_count(), 0);
        assert_eq!(app.memstats.current(), 0);
    });
}

#[test]
fn xrm_query_with_empty_db_and_paths() {
    let db = XrmDb::new();
    assert_eq!(db.query(&[], &[], "foreground", "Foreground"), None);
    let mut db = XrmDb::new();
    db.insert("*foreground", "red");
    // Query with only the resource level.
    assert_eq!(
        db.query(&[], &[], "foreground", "Foreground"),
        Some("red".into())
    );
}

#[test]
fn stale_widget_operations_are_safe() {
    let mut app = XtApp::new();
    app.register_class(core_class("Shell", true, true));
    let top = app
        .create_widget("top", "Shell", None, 0, &[], true)
        .unwrap();
    app.destroy_widget(top);
    // Operations on the stale id must not panic.
    app.destroy_widget(top);
    assert!(!app.is_alive(top));
    assert!(!app.is_realized(top));
    assert!(app.set_resource(top, "width", "10").is_err());
    assert!(app.get_resource_string(top, "width").is_err());
    app.call_callbacks(top, "destroyCallback", Default::default());
    assert_eq!(app.pending_host_calls(), 0);
}

#[test]
fn deep_widget_tree_layout_terminates() {
    let mut app = XtApp::new();
    app.register_class(core_class("Shell", true, true));
    app.register_class(core_class("Box", false, true));
    let top = app
        .create_widget("top", "Shell", None, 0, &[], true)
        .unwrap();
    let mut parent = top;
    for i in 0..120 {
        parent = app
            .create_widget(&format!("n{i}"), "Box", Some(parent), 0, &[], true)
            .unwrap();
    }
    app.realize(top);
    assert!(app.is_realized(parent));
    app.destroy_widget(top);
    assert_eq!(app.memstats.current(), 0);
}
