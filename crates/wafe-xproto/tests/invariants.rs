//! Property tests over the display server: hit-testing, event delivery
//! and framebuffer invariants under random window trees and event
//! streams.

use wafe_prop::{cases, Rng};
use wafe_xproto::display::{Display, WindowAttributes};
use wafe_xproto::geometry::{Point, Rect};
use wafe_xproto::{EventKind, WindowId};

/// Draws one random window spec: (x, y, w, h, mapped).
fn random_spec(rng: &mut Rng) -> (i32, i32, u8, u8, bool) {
    (
        rng.range_i64(0, 200) as i32,
        rng.range_i64(0, 160) as i32,
        rng.range(1, 40) as u8,
        rng.range(1, 30) as u8,
        rng.chance(),
    )
}

/// Builds a random two-level window tree; returns all created windows.
fn build_tree(d: &mut Display, spec: &[(i32, i32, u8, u8, bool)]) -> Vec<WindowId> {
    let mut wins = Vec::new();
    for &(x, y, w, h, mapped) in spec {
        let id = d.create_window(
            d.root(),
            WindowAttributes {
                rect: Rect::new(x, y, w.max(1) as u32 * 4, h.max(1) as u32 * 4),
                border_width: 1,
                background: 0xffffff,
                override_redirect: false,
            },
        );
        if mapped {
            d.map_window(id);
        }
        wins.push(id);
    }
    wins
}

/// `window_at` always returns a viewable window (or the root), and
/// that window's absolute rect contains the point (root's always
/// does).
#[test]
fn window_at_is_consistent() {
    cases(256, |rng| {
        let spec = rng.vec(0, 8, random_spec);
        let px = rng.range_i64(0, 250) as i32;
        let py = rng.range_i64(0, 200) as i32;
        let mut d = Display::open(":0");
        build_tree(&mut d, &spec);
        let hit = d.window_at(Point::new(px, py));
        assert!(d.is_viewable(hit));
        let abs = d.abs_rect(hit);
        assert!(abs.contains(Point::new(px, py)) || hit == d.root());
    });
}

/// Clicking any point delivers press+release to the same window with
/// consistent relative coordinates.
#[test]
fn click_coordinates_consistent() {
    cases(256, |rng| {
        let spec = rng.vec(1, 6, random_spec);
        let px = rng.range_i64(0, 250) as i32;
        let py = rng.range_i64(0, 200) as i32;
        let mut d = Display::open(":0");
        build_tree(&mut d, &spec);
        while d.next_event().is_some() {}
        d.inject_click(px, py, 1);
        let events: Vec<_> = std::iter::from_fn(|| d.next_event()).collect();
        let press = events
            .iter()
            .find(|e| e.kind == EventKind::ButtonPress)
            .unwrap();
        let release = events
            .iter()
            .find(|e| e.kind == EventKind::ButtonRelease)
            .unwrap();
        assert_eq!(press.window, release.window);
        assert_eq!(press.x_root, px);
        assert_eq!(press.y_root, py);
        let abs = d.abs_rect(press.window);
        assert_eq!(press.x, px - abs.x);
        assert_eq!(press.y, py - abs.y);
    });
}

/// Typing arbitrary ASCII produces balanced press/release pairs whose
/// ascii concatenation equals the input (for keys the map supports).
#[test]
fn key_injection_balanced() {
    cases(256, |rng| {
        let text = rng.ascii_string(21);
        let mut d = Display::open(":0");
        while d.next_event().is_some() {}
        d.inject_key_text(&text);
        let events: Vec<_> = std::iter::from_fn(|| d.next_event()).collect();
        let presses = events
            .iter()
            .filter(|e| e.kind == EventKind::KeyPress)
            .count();
        let releases = events
            .iter()
            .filter(|e| e.kind == EventKind::KeyRelease)
            .count();
        assert_eq!(presses, releases);
        let typed: String = events
            .iter()
            .filter(|e| e.kind == EventKind::KeyPress)
            .map(|e| e.ascii.as_str())
            .collect();
        assert_eq!(typed, text);
    });
}

/// destroy_window never leaves dangling children and never double
/// counts.
#[test]
fn destroy_is_complete() {
    cases(256, |rng| {
        let spec = rng.vec(1, 8, random_spec);
        let victim = rng.range(0, 8);
        let mut d = Display::open(":0");
        let wins = build_tree(&mut d, &spec);
        let before = d.window_count();
        let victim = wins[victim % wins.len()];
        d.destroy_window(victim);
        assert_eq!(d.window_count(), before - 1);
        // Double destroy is harmless.
        d.destroy_window(victim);
        assert_eq!(d.window_count(), before - 1);
    });
}

/// The framebuffer flush never panics and keeps its dimensions.
#[test]
fn flush_is_safe() {
    cases(256, |rng| {
        let spec = rng.vec(0, 10, |r| {
            (
                r.range_i64(-20, 250) as i32,
                r.range_i64(-20, 200) as i32,
                r.range(0, 60) as u8,
                r.range(0, 50) as u8,
                r.chance(),
            )
        });
        let mut d = Display::open(":0");
        build_tree(&mut d, &spec);
        d.flush();
        let fb = d.framebuffer();
        assert_eq!(fb.width, 1024);
        assert_eq!(fb.height, 768);
    });
}

#[test]
fn enter_leave_pairing_over_random_walk() {
    let mut d = Display::open(":0");
    let w = d.create_window(
        d.root(),
        WindowAttributes {
            rect: Rect::new(100, 100, 100, 100),
            ..Default::default()
        },
    );
    d.map_window(w);
    while d.next_event().is_some() {}
    // Walk the pointer in and out repeatedly.
    let mut enters = 0;
    let mut leaves = 0;
    for step in 0..40 {
        let inside = step % 2 == 0;
        let (x, y) = if inside { (150, 150) } else { (10, 10) };
        d.inject_pointer_move(x, y);
        while let Some(e) = d.next_event() {
            if e.window == w {
                match e.kind {
                    EventKind::EnterNotify => enters += 1,
                    EventKind::LeaveNotify => leaves += 1,
                    _ => {}
                }
            }
        }
    }
    assert_eq!(enters, 20);
    assert_eq!(leaves, 20);
}
