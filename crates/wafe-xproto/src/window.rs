//! Server-side window records.

use crate::color::Pixel;
use crate::framebuffer::DrawOp;
use crate::geometry::Rect;

/// A window resource id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u64);

/// A server-side window.
#[derive(Debug, Clone)]
pub struct Window {
    /// This window's id.
    pub id: WindowId,
    /// Parent window (`None` for a root window).
    pub parent: Option<WindowId>,
    /// Children in stacking order, bottom-most first.
    pub children: Vec<WindowId>,
    /// Geometry relative to the parent (border excluded, like X).
    pub rect: Rect,
    /// Border width in pixels.
    pub border_width: u32,
    /// Border colour.
    pub border_pixel: Pixel,
    /// Background colour.
    pub background: Pixel,
    /// True once `map` has been called.
    pub mapped: bool,
    /// True if this window bypasses any window manager (menus).
    pub override_redirect: bool,
    /// The retained display list: what the client drew here last.
    pub display_list: Vec<DrawOp>,
    /// True if destroyed (kept to detect stale ids).
    pub destroyed: bool,
}

impl Window {
    /// Creates an unmapped window.
    pub fn new(id: WindowId, parent: Option<WindowId>, rect: Rect) -> Self {
        Window {
            id,
            parent,
            children: Vec::new(),
            rect,
            border_width: 0,
            border_pixel: crate::color::BLACK,
            background: crate::color::WHITE,
            mapped: false,
            override_redirect: false,
            display_list: Vec::new(),
            destroyed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_window_is_unmapped() {
        let w = Window::new(WindowId(5), Some(WindowId(1)), Rect::new(0, 0, 10, 10));
        assert!(!w.mapped);
        assert!(!w.destroyed);
        assert!(w.children.is_empty());
        assert_eq!(w.parent, Some(WindowId(1)));
    }
}
