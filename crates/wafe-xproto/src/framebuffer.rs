//! The screen framebuffer and drawing operations.
//!
//! Widgets draw through a display list per window (retained mode, so
//! exposes can replay) and the display flushes display lists into a real
//! RGB framebuffer. For golden tests an ASCII snapshot renders the same
//! display lists into a character grid — the reproduction's stand-in for
//! the paper's screenshots (Figures 2, 3 and 6).

use crate::color::Pixel;
use crate::font::FontId;
use crate::geometry::Rect;

/// One retained drawing operation, in window-relative coordinates.
#[derive(Debug, Clone, PartialEq)]
pub enum DrawOp {
    /// Fill a rectangle with a colour.
    FillRect {
        /// Target area.
        rect: Rect,
        /// Fill colour.
        pixel: Pixel,
    },
    /// Outline a rectangle.
    DrawRect {
        /// Target area.
        rect: Rect,
        /// Line colour.
        pixel: Pixel,
    },
    /// Draw a horizontal or vertical (or general) line.
    DrawLine {
        /// Start x.
        x1: i32,
        /// Start y.
        y1: i32,
        /// End x.
        x2: i32,
        /// End y.
        y2: i32,
        /// Line colour.
        pixel: Pixel,
    },
    /// Draw a string; `y` is the baseline, as in X.
    DrawText {
        /// Left edge of the first glyph.
        x: i32,
        /// Baseline.
        y: i32,
        /// Text to draw.
        text: String,
        /// Ink colour.
        pixel: Pixel,
        /// Font to use.
        font: FontId,
    },
    /// Copy a bitmap/pixmap image; pixels carry their own colours.
    PutImage {
        /// Destination x.
        x: i32,
        /// Destination y.
        y: i32,
        /// Image width.
        w: u32,
        /// Image height.
        h: u32,
        /// Row-major pixels (len == w*h).
        data: std::rc::Rc<Vec<Pixel>>,
    },
}

/// An RGB framebuffer.
#[derive(Debug, Clone)]
pub struct Framebuffer {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    pixels: Vec<Pixel>,
}

impl Framebuffer {
    /// Creates a framebuffer cleared to the given colour.
    pub fn new(width: u32, height: u32, clear: Pixel) -> Self {
        Framebuffer {
            width,
            height,
            pixels: vec![clear; (width * height) as usize],
        }
    }

    /// True for the zero-sized placeholder a headless display holds
    /// before its pixel buffer is materialized.
    pub fn is_empty(&self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// Copies the pixels of a rectangle (clipped to the buffer),
    /// row-major — the payload of a display-protocol damage rect.
    pub fn rect_pixels(&self, rect: Rect) -> Vec<Pixel> {
        let bounds = Rect::new(0, 0, self.width, self.height);
        let r = match rect.intersect(&bounds) {
            Some(r) => r,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity((r.w * r.h) as usize);
        for y in r.y..r.y + r.h as i32 {
            let row = (y as u32 * self.width + r.x as u32) as usize;
            out.extend_from_slice(&self.pixels[row..row + r.w as usize]);
        }
        out
    }

    /// Reads one pixel; out-of-bounds reads return black.
    pub fn get(&self, x: i32, y: i32) -> Pixel {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            return 0;
        }
        self.pixels[(y as u32 * self.width + x as u32) as usize]
    }

    /// Writes one pixel; out-of-bounds writes are clipped.
    pub fn put(&mut self, x: i32, y: i32, p: Pixel) {
        if x < 0 || y < 0 || x as u32 >= self.width || y as u32 >= self.height {
            return;
        }
        self.pixels[(y as u32 * self.width + x as u32) as usize] = p;
    }

    /// Fills a rectangle, clipped to the buffer and to `clip`.
    pub fn fill_rect(&mut self, rect: Rect, clip: Rect, p: Pixel) {
        let target = match rect.intersect(&clip) {
            Some(r) => r,
            None => return,
        };
        for y in target.y..target.y + target.h as i32 {
            for x in target.x..target.x + target.w as i32 {
                self.put(x, y, p);
            }
        }
    }

    /// Outlines a rectangle, clipped.
    pub fn draw_rect(&mut self, rect: Rect, clip: Rect, p: Pixel) {
        let (x2, y2) = (rect.x + rect.w as i32 - 1, rect.y + rect.h as i32 - 1);
        self.draw_line(rect.x, rect.y, x2, rect.y, clip, p);
        self.draw_line(rect.x, y2, x2, y2, clip, p);
        self.draw_line(rect.x, rect.y, rect.x, y2, clip, p);
        self.draw_line(x2, rect.y, x2, y2, clip, p);
    }

    /// Draws a line (Bresenham), clipped.
    pub fn draw_line(&mut self, x1: i32, y1: i32, x2: i32, y2: i32, clip: Rect, p: Pixel) {
        let (mut x, mut y) = (x1, y1);
        let dx = (x2 - x1).abs();
        let dy = -(y2 - y1).abs();
        let sx = if x1 < x2 { 1 } else { -1 };
        let sy = if y1 < y2 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            if clip.contains(crate::geometry::Point::new(x, y)) {
                self.put(x, y, p);
            }
            if x == x2 && y == y2 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Renders text with the 5×7 bitmap font, one glyph per cell. The
    /// glyph top sits a fixed 7 rows above the baseline (the bitmap's
    /// height), whatever the nominal font ascent; wide cells centre it.
    pub fn draw_text_blocks(
        &mut self,
        x: i32,
        baseline: i32,
        text: &str,
        clip: Rect,
        p: Pixel,
        char_width: u32,
    ) {
        let top = baseline - 7;
        let pad = (char_width.saturating_sub(5) / 2) as i32;
        for (i, c) in text.chars().enumerate() {
            let gx = x + (i as u32 * char_width) as i32 + pad;
            for (col, row) in crate::font5x7::lit_pixels(c) {
                let px = gx + col as i32;
                let py = top + row as i32;
                if clip.contains(crate::geometry::Point::new(px, py)) {
                    self.put(px, py, p);
                }
            }
        }
    }

    /// Copies an image, clipped.
    pub fn put_image(&mut self, x: i32, y: i32, w: u32, h: u32, data: &[Pixel], clip: Rect) {
        for row in 0..h {
            for col in 0..w {
                let px = x + col as i32;
                let py = y + row as i32;
                if clip.contains(crate::geometry::Point::new(px, py)) {
                    self.put(px, py, data[(row * w + col) as usize]);
                }
            }
        }
    }

    /// Counts pixels with exactly the given value (test helper).
    pub fn count_pixels(&self, p: Pixel) -> usize {
        self.pixels.iter().filter(|&&v| v == p).count()
    }

    /// Writes the framebuffer as a binary PPM (P6) image — the
    /// reproduction's way of producing real screenshot files for the
    /// paper's figures.
    pub fn write_ppm<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        writeln!(out, "P6\n{} {}\n255", self.width, self.height)?;
        let mut bytes = Vec::with_capacity(self.pixels.len() * 3);
        for p in &self.pixels {
            bytes.push((p >> 16) as u8);
            bytes.push((p >> 8) as u8);
            bytes.push(*p as u8);
        }
        out.write_all(&bytes)
    }
}

/// A character-cell canvas for ASCII screenshots.
///
/// Cells are 8x16 pixels: window-relative pixel coordinates divide down
/// to cells. Text lands as itself; fills as background shading; borders
/// as box-drawing strokes.
#[derive(Debug, Clone)]
pub struct AsciiCanvas {
    /// Width in character cells.
    pub cols: usize,
    /// Height in character cells.
    pub rows: usize,
    cells: Vec<char>,
}

/// Pixel width of one ASCII cell.
pub const CELL_W: i32 = 8;
/// Pixel height of one ASCII cell.
pub const CELL_H: i32 = 16;

impl AsciiCanvas {
    /// Creates a blank canvas covering `width`x`height` pixels.
    pub fn new(width: u32, height: u32) -> Self {
        let cols = (width as i32 / CELL_W).max(1) as usize;
        let rows = (height as i32 / CELL_H).max(1) as usize;
        AsciiCanvas {
            cols,
            rows,
            cells: vec![' '; cols * rows],
        }
    }

    /// Puts a character at a cell position.
    pub fn put(&mut self, col: i32, row: i32, c: char) {
        if col < 0 || row < 0 || col as usize >= self.cols || row as usize >= self.rows {
            return;
        }
        self.cells[row as usize * self.cols + col as usize] = c;
    }

    /// Writes text starting at a pixel position.
    pub fn text_at_pixel(&mut self, x: i32, y: i32, text: &str) {
        let col0 = x / CELL_W;
        let row = y / CELL_H;
        for (i, c) in text.chars().enumerate() {
            self.put(col0 + i as i32, row, c);
        }
    }

    /// Draws a box outline for a pixel rectangle.
    pub fn box_at_pixel(&mut self, rect: Rect) {
        let c0 = rect.x / CELL_W;
        let r0 = rect.y / CELL_H;
        let c1 = (rect.x + rect.w as i32 - 1) / CELL_W;
        let r1 = (rect.y + rect.h as i32 - 1) / CELL_H;
        if c1 <= c0 || r1 <= r0 {
            return;
        }
        for c in c0..=c1 {
            self.put(c, r0, '-');
            self.put(c, r1, '-');
        }
        for r in r0..=r1 {
            self.put(c0, r, '|');
            self.put(c1, r, '|');
        }
        self.put(c0, r0, '+');
        self.put(c1, r0, '+');
        self.put(c0, r1, '+');
        self.put(c1, r1, '+');
    }

    /// Renders the canvas as lines, right-trimmed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in 0..self.rows {
            let line: String = self.cells[r * self.cols..(r + 1) * self.cols]
                .iter()
                .collect();
            out.push_str(line.trim_end());
            out.push('\n');
        }
        // Drop trailing blank lines.
        while out.ends_with("\n\n") {
            out.pop();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_read() {
        let mut fb = Framebuffer::new(20, 10, 0xffffff);
        let clip = Rect::new(0, 0, 20, 10);
        fb.fill_rect(Rect::new(2, 2, 3, 3), clip, 0xff0000);
        assert_eq!(fb.get(2, 2), 0xff0000);
        assert_eq!(fb.get(4, 4), 0xff0000);
        assert_eq!(fb.get(5, 5), 0xffffff);
        assert_eq!(fb.count_pixels(0xff0000), 9);
    }

    #[test]
    fn clipping() {
        let mut fb = Framebuffer::new(10, 10, 0);
        let clip = Rect::new(0, 0, 5, 5);
        fb.fill_rect(Rect::new(0, 0, 10, 10), clip, 7);
        assert_eq!(fb.count_pixels(7), 25);
        // Out-of-bounds put/get are safe.
        fb.put(-1, -1, 9);
        assert_eq!(fb.get(-1, -1), 0);
        assert_eq!(fb.get(100, 100), 0);
    }

    #[test]
    fn lines_and_rect_outline() {
        let mut fb = Framebuffer::new(10, 10, 0);
        let clip = Rect::new(0, 0, 10, 10);
        fb.draw_line(0, 0, 9, 0, clip, 1);
        assert_eq!(fb.count_pixels(1), 10);
        let mut fb2 = Framebuffer::new(10, 10, 0);
        fb2.draw_rect(Rect::new(0, 0, 4, 4), clip, 2);
        // 4x4 outline = 12 pixels.
        assert_eq!(fb2.count_pixels(2), 12);
    }

    #[test]
    fn diagonal_line() {
        let mut fb = Framebuffer::new(10, 10, 0);
        let clip = Rect::new(0, 0, 10, 10);
        fb.draw_line(0, 0, 9, 9, clip, 3);
        for i in 0..10 {
            assert_eq!(fb.get(i, i), 3);
        }
    }

    #[test]
    fn text_blocks_ink() {
        let mut fb = Framebuffer::new(60, 20, 0xffffff);
        let clip = Rect::new(0, 0, 60, 20);
        fb.draw_text_blocks(0, 13, "ab", clip, 0, 6);
        assert!(fb.count_pixels(0) > 0);
    }

    #[test]
    fn ascii_canvas_text_and_box() {
        let mut c = AsciiCanvas::new(160, 64);
        c.text_at_pixel(16, 16, "hello");
        c.box_at_pixel(Rect::new(0, 0, 160, 64));
        let out = c.render();
        assert!(out.contains("hello"));
        assert!(out.contains('+'));
        assert!(out.lines().next().unwrap().starts_with('+'));
    }

    #[test]
    fn ascii_canvas_clips() {
        let mut c = AsciiCanvas::new(80, 32);
        c.text_at_pixel(1000, 1000, "off");
        c.put(-1, -1, 'x');
        assert!(!c.render().contains("off"));
    }

    #[test]
    fn put_image() {
        let mut fb = Framebuffer::new(4, 4, 0);
        let clip = Rect::new(0, 0, 4, 4);
        fb.put_image(1, 1, 2, 2, &[1, 2, 3, 4], clip);
        assert_eq!(fb.get(1, 1), 1);
        assert_eq!(fb.get(2, 2), 4);
    }
}
