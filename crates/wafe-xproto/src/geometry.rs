//! Points and rectangles in window coordinates.

/// A point, in pixels. X uses signed 16-bit positions; we use `i32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Point {
    /// Horizontal coordinate, growing rightward.
    pub x: i32,
    /// Vertical coordinate, growing downward.
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Component-wise sum.
    pub fn offset(self, dx: i32, dy: i32) -> Self {
        Point::new(self.x + dx, self.y + dy)
    }
}

/// An axis-aligned rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x: i32, y: i32, w: u32, h: u32) -> Self {
        Rect { x, y, w, h }
    }

    /// True if `p` lies inside (inclusive of the top-left edge,
    /// exclusive of the bottom-right edge, like X).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x
            && p.y >= self.y
            && p.x < self.x + self.w as i32
            && p.y < self.y + self.h as i32
    }

    /// Intersection, or `None` if the rectangles are disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.w as i32).min(other.x + other.w as i32);
        let y2 = (self.y + self.h as i32).min(other.y + other.h as i32);
        if x2 > x1 && y2 > y1 {
            Some(Rect::new(x1, y1, (x2 - x1) as u32, (y2 - y1) as u32))
        } else {
            None
        }
    }

    /// The rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: i32, dy: i32) -> Rect {
        Rect::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// The smallest rectangle covering both. An empty rectangle is the
    /// identity, so damage accumulation can start from `Rect::default()`.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.w == 0 || self.h == 0 {
            return *other;
        }
        if other.w == 0 || other.h == 0 {
            return *self;
        }
        let x1 = self.x.min(other.x);
        let y1 = self.y.min(other.y);
        let x2 = (self.x + self.w as i32).max(other.x + other.w as i32);
        let y2 = (self.y + self.h as i32).max(other.y + other.h as i32);
        Rect::new(x1, y1, (x2 - x1) as u32, (y2 - y1) as u32)
    }

    /// True if `other` lies entirely inside this rectangle (empty
    /// rectangles are contained everywhere).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        if other.w == 0 || other.h == 0 {
            return true;
        }
        other.x >= self.x
            && other.y >= self.y
            && other.x + other.w as i32 <= self.x + self.w as i32
            && other.y + other.h as i32 <= self.y + self.h as i32
    }

    /// The rectangle grown by `m` pixels on every side (window borders).
    pub fn inflated(&self, m: u32) -> Rect {
        Rect::new(
            self.x - m as i32,
            self.y - m as i32,
            self.w + 2 * m,
            self.h + 2 * m,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_edges() {
        let r = Rect::new(10, 10, 5, 5);
        assert!(r.contains(Point::new(10, 10)));
        assert!(r.contains(Point::new(14, 14)));
        assert!(!r.contains(Point::new(15, 14)));
        assert!(!r.contains(Point::new(9, 10)));
    }

    #[test]
    fn intersections() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Some(Rect::new(5, 5, 5, 5)));
        let c = Rect::new(20, 20, 3, 3);
        assert_eq!(a.intersect(&c), None);
        // Touching edges do not intersect.
        let d = Rect::new(10, 0, 5, 5);
        assert_eq!(a.intersect(&d), None);
    }

    #[test]
    fn translation_and_area() {
        let r = Rect::new(1, 2, 3, 4);
        assert_eq!(r.translated(10, 20), Rect::new(11, 22, 3, 4));
        assert_eq!(r.area(), 12);
    }

    #[test]
    fn point_offset() {
        assert_eq!(Point::new(1, 2).offset(3, -1), Point::new(4, 1));
    }

    #[test]
    fn union_covers_both_and_empty_is_identity() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(20, 5, 4, 4);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(0, 0, 24, 10));
        assert_eq!(Rect::default().union(&a), a);
        assert_eq!(a.union(&Rect::default()), a);
    }

    #[test]
    fn contains_rect_edges() {
        let a = Rect::new(0, 0, 10, 10);
        assert!(a.contains_rect(&Rect::new(0, 0, 10, 10)));
        assert!(a.contains_rect(&Rect::new(3, 3, 2, 2)));
        assert!(!a.contains_rect(&Rect::new(5, 5, 10, 2)));
        assert!(a.contains_rect(&Rect::new(50, 50, 0, 3)), "empty rect");
    }

    #[test]
    fn inflate_grows_every_side() {
        assert_eq!(Rect::new(5, 5, 10, 10).inflated(2), Rect::new(3, 3, 14, 14));
    }
}
