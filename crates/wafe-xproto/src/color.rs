//! The colour-name database and pixel values.
//!
//! Pixels are 24-bit `0xRRGGBB` values (a TrueColor visual). Named
//! colours come from a subset of the X11 `rgb.txt` shipped with X11R5 —
//! every name used by the paper's examples (`red`, `blue`, `tomato`, …)
//! is present — plus `#rgb`, `#rrggbb` and `#rrrrggggbbbb` hex forms.

/// A pixel value in `0xRRGGBB` layout.
pub type Pixel = u32;

/// Black, the default foreground of most widgets.
pub const BLACK: Pixel = 0x000000;
/// White, the default background of most widgets.
pub const WHITE: Pixel = 0xffffff;

/// A subset of the X11R5 `rgb.txt` database (lower-cased names).
static RGB_TXT: &[(&str, Pixel)] = &[
    ("alice blue", 0xf0f8ff),
    ("antique white", 0xfaebd7),
    ("aquamarine", 0x7fffd4),
    ("azure", 0xf0ffff),
    ("beige", 0xf5f5dc),
    ("bisque", 0xffe4c4),
    ("black", 0x000000),
    ("blanched almond", 0xffebcd),
    ("blue", 0x0000ff),
    ("blue violet", 0x8a2be2),
    ("brown", 0xa52a2a),
    ("burlywood", 0xdeb887),
    ("cadet blue", 0x5f9ea0),
    ("chartreuse", 0x7fff00),
    ("chocolate", 0xd2691e),
    ("coral", 0xff7f50),
    ("cornflower blue", 0x6495ed),
    ("cornsilk", 0xfff8dc),
    ("cyan", 0x00ffff),
    ("dark goldenrod", 0xb8860b),
    ("dark green", 0x006400),
    ("dark khaki", 0xbdb76b),
    ("dark olive green", 0x556b2f),
    ("dark orange", 0xff8c00),
    ("dark orchid", 0x9932cc),
    ("dark salmon", 0xe9967a),
    ("dark sea green", 0x8fbc8f),
    ("dark slate blue", 0x483d8b),
    ("dark slate gray", 0x2f4f4f),
    ("dark turquoise", 0x00ced1),
    ("dark violet", 0x9400d3),
    ("deep pink", 0xff1493),
    ("deep sky blue", 0x00bfff),
    ("dim gray", 0x696969),
    ("dodger blue", 0x1e90ff),
    ("firebrick", 0xb22222),
    ("floral white", 0xfffaf0),
    ("forest green", 0x228b22),
    ("gainsboro", 0xdcdcdc),
    ("ghost white", 0xf8f8ff),
    ("gold", 0xffd700),
    ("goldenrod", 0xdaa520),
    ("gray", 0xbebebe),
    ("green", 0x00ff00),
    ("green yellow", 0xadff2f),
    ("honeydew", 0xf0fff0),
    ("hot pink", 0xff69b4),
    ("indian red", 0xcd5c5c),
    ("ivory", 0xfffff0),
    ("khaki", 0xf0e68c),
    ("lavender", 0xe6e6fa),
    ("lavender blush", 0xfff0f5),
    ("lawn green", 0x7cfc00),
    ("lemon chiffon", 0xfffacd),
    ("light blue", 0xadd8e6),
    ("light coral", 0xf08080),
    ("light cyan", 0xe0ffff),
    ("light goldenrod", 0xeedd82),
    ("light gray", 0xd3d3d3),
    ("light pink", 0xffb6c1),
    ("light salmon", 0xffa07a),
    ("light sea green", 0x20b2aa),
    ("light sky blue", 0x87cefa),
    ("light slate blue", 0x8470ff),
    ("light slate gray", 0x778899),
    ("light steel blue", 0xb0c4de),
    ("light yellow", 0xffffe0),
    ("lime green", 0x32cd32),
    ("linen", 0xfaf0e6),
    ("magenta", 0xff00ff),
    ("maroon", 0xb03060),
    ("medium aquamarine", 0x66cdaa),
    ("medium blue", 0x0000cd),
    ("medium orchid", 0xba55d3),
    ("medium purple", 0x9370db),
    ("medium sea green", 0x3cb371),
    ("medium slate blue", 0x7b68ee),
    ("medium spring green", 0x00fa9a),
    ("medium turquoise", 0x48d1cc),
    ("medium violet red", 0xc71585),
    ("midnight blue", 0x191970),
    ("mint cream", 0xf5fffa),
    ("misty rose", 0xffe4e1),
    ("moccasin", 0xffe4b5),
    ("navajo white", 0xffdead),
    ("navy", 0x000080),
    ("navy blue", 0x000080),
    ("old lace", 0xfdf5e6),
    ("olive drab", 0x6b8e23),
    ("orange", 0xffa500),
    ("orange red", 0xff4500),
    ("orchid", 0xda70d6),
    ("pale goldenrod", 0xeee8aa),
    ("pale green", 0x98fb98),
    ("pale turquoise", 0xafeeee),
    ("pale violet red", 0xdb7093),
    ("papaya whip", 0xffefd5),
    ("peach puff", 0xffdab9),
    ("peru", 0xcd853f),
    ("pink", 0xffc0cb),
    ("plum", 0xdda0dd),
    ("powder blue", 0xb0e0e6),
    ("purple", 0xa020f0),
    ("red", 0xff0000),
    ("rosy brown", 0xbc8f8f),
    ("royal blue", 0x4169e1),
    ("saddle brown", 0x8b4513),
    ("salmon", 0xfa8072),
    ("sandy brown", 0xf4a460),
    ("sea green", 0x2e8b57),
    ("seashell", 0xfff5ee),
    ("sienna", 0xa0522d),
    ("sky blue", 0x87ceeb),
    ("slate blue", 0x6a5acd),
    ("slate gray", 0x708090),
    ("snow", 0xfffafa),
    ("spring green", 0x00ff7f),
    ("steel blue", 0x4682b4),
    ("tan", 0xd2b48c),
    ("thistle", 0xd8bfd8),
    ("tomato", 0xff6347),
    ("turquoise", 0x40e0d0),
    ("violet", 0xee82ee),
    ("violet red", 0xd02090),
    ("wheat", 0xf5deb3),
    ("white", 0xffffff),
    ("white smoke", 0xf5f5f5),
    ("yellow", 0xffff00),
    ("yellow green", 0x9acd32),
];

/// Looks up a colour by name or hex specification.
///
/// Accepts `rgb.txt` names, case-insensitively and with or without
/// embedded spaces (`NavyBlue` == `navy blue`), plus `#rgb`, `#rrggbb`
/// and `#rrrrggggbbbb` hex forms. Also accepts the `grayNN` scale
/// (`gray0`..`gray100`), which X generates procedurally.
///
/// # Examples
///
/// ```
/// use wafe_xproto::lookup_color;
/// assert_eq!(lookup_color("tomato"), Some(0xff6347));
/// assert_eq!(lookup_color("#ff0000"), Some(0xff0000));
/// assert_eq!(lookup_color("NavyBlue"), Some(0x000080));
/// assert_eq!(lookup_color("no such colour"), None);
/// ```
pub fn lookup_color(spec: &str) -> Option<Pixel> {
    let spec = spec.trim();
    if let Some(hex) = spec.strip_prefix('#') {
        return parse_hex(hex);
    }
    let key = normalize(spec);
    // Procedural grayNN / greyNN scale.
    for prefix in ["gray", "grey"] {
        if let Some(rest) = key.strip_prefix(prefix) {
            if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                let pct: u32 = rest.parse().ok()?;
                if pct <= 100 {
                    let v = (pct * 255 + 50) / 100;
                    return Some((v << 16) | (v << 8) | v);
                }
                return None;
            }
        }
    }
    let key_spaced = key.clone();
    RGB_TXT
        .iter()
        .find(|(name, _)| normalize(name) == key_spaced)
        .map(|(_, px)| *px)
}

fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| !c.is_whitespace())
        .flat_map(|c| c.to_lowercase())
        .collect()
}

fn parse_hex(hex: &str) -> Option<Pixel> {
    if !hex.chars().all(|c| c.is_ascii_hexdigit()) {
        return None;
    }
    match hex.len() {
        3 => {
            let v = u32::from_str_radix(hex, 16).ok()?;
            let (r, g, b) = ((v >> 8) & 0xf, (v >> 4) & 0xf, v & 0xf);
            Some((r * 17) << 16 | (g * 17) << 8 | (b * 17))
        }
        6 => u32::from_str_radix(hex, 16).ok(),
        12 => {
            let r = u32::from_str_radix(&hex[0..4], 16).ok()? >> 8;
            let g = u32::from_str_radix(&hex[4..8], 16).ok()? >> 8;
            let b = u32::from_str_radix(&hex[8..12], 16).ok()? >> 8;
            Some(r << 16 | g << 8 | b)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_colors_exist() {
        // Colours used in the paper's examples.
        for name in ["red", "blue", "tomato"] {
            assert!(lookup_color(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn case_and_space_insensitive() {
        assert_eq!(lookup_color("Navy Blue"), lookup_color("navyblue"));
        assert_eq!(lookup_color("SteelBlue"), Some(0x4682b4));
        assert_eq!(lookup_color("  white  "), Some(0xffffff));
    }

    #[test]
    fn hex_forms() {
        assert_eq!(lookup_color("#f00"), Some(0xff0000));
        assert_eq!(lookup_color("#00ff00"), Some(0x00ff00));
        assert_eq!(lookup_color("#0000ffff0000"), Some(0x00ff00));
        assert_eq!(lookup_color("#12345"), None);
        assert_eq!(lookup_color("#zzz"), None);
    }

    #[test]
    fn gray_scale() {
        assert_eq!(lookup_color("gray0"), Some(0x000000));
        assert_eq!(lookup_color("gray100"), Some(0xffffff));
        assert_eq!(lookup_color("grey50"), Some(0x808080));
        assert_eq!(lookup_color("gray101"), None);
    }

    #[test]
    fn unknown_is_none() {
        assert_eq!(lookup_color("definitely not a colour"), None);
        assert_eq!(lookup_color(""), None);
    }

    #[test]
    fn database_is_well_formed() {
        for (name, px) in RGB_TXT {
            assert!(!name.is_empty());
            assert!(*px <= 0xffffff, "{name} out of 24-bit range");
        }
    }
}
