//! Dirty-region tracking for the display.
//!
//! Every visible mutation (map, unmap, configure, destroy, attribute or
//! display-list change) records a damage rectangle instead of a single
//! boolean. The tracker coalesces overlapping rectangles as they are
//! added and keeps the list bounded: past [`MAX_DAMAGE_RECTS`] entries
//! the cheapest pair is merged, and once the summed coverage passes
//! [`FULL_COVERAGE_PERMILLE`] of the screen the whole accumulation
//! collapses to a single full-frame marker — at that point shipping the
//! whole screen is cheaper than shipping the bookkeeping.
//!
//! The invariant the property suite pins: a pixel inside any rectangle
//! ever [`add`](DamageTracker::add)ed is inside the taken [`Damage`] —
//! coalescing may *grow* the damaged region, never shrink it.

use crate::geometry::Rect;

/// Hard bound on the coalesced rectangle list.
pub const MAX_DAMAGE_RECTS: usize = 16;

/// Full-frame fallback threshold: when the summed rectangle area
/// exceeds this fraction (in permille) of the screen, the tracker
/// switches to a single full-frame rectangle.
pub const FULL_COVERAGE_PERMILLE: u64 = 600;

/// The damage accumulated between two flushes, as handed to a consumer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Damage {
    /// The whole screen is dirty; `rects` is empty.
    pub full: bool,
    /// Coalesced dirty rectangles, each clipped to the screen.
    pub rects: Vec<Rect>,
}

impl Damage {
    /// A full-screen damage record.
    pub fn full() -> Damage {
        Damage {
            full: true,
            rects: Vec::new(),
        }
    }

    /// Nothing dirty at all.
    pub fn is_empty(&self) -> bool {
        !self.full && self.rects.is_empty()
    }

    /// True if the pixel-region `r` is covered by this damage.
    pub fn covers(&self, r: &Rect) -> bool {
        self.full || self.rects.iter().any(|d| d.contains_rect(r))
    }
}

/// Bounded, coalescing dirty-region accumulator for one screen.
#[derive(Debug, Clone)]
pub struct DamageTracker {
    bounds: Rect,
    rects: Vec<Rect>,
    full: bool,
}

impl DamageTracker {
    /// A tracker for a `width`x`height` screen, starting clean.
    pub fn new(width: u32, height: u32) -> DamageTracker {
        DamageTracker {
            bounds: Rect::new(0, 0, width, height),
            rects: Vec::new(),
            full: false,
        }
    }

    /// Whether any damage is pending.
    pub fn is_dirty(&self) -> bool {
        self.full || !self.rects.is_empty()
    }

    /// Number of coalesced rectangles currently held (0 when full).
    pub fn rect_count(&self) -> usize {
        self.rects.len()
    }

    /// Whether the accumulation has collapsed to full-frame.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// The coalesced rectangles currently held (empty when full).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Marks the whole screen dirty.
    pub fn add_full(&mut self) {
        self.full = true;
        self.rects.clear();
    }

    /// Records one dirty rectangle (clipped to the screen; off-screen
    /// damage is ignored). Overlapping entries are merged by union, the
    /// list stays bounded, and heavy coverage falls back to full-frame.
    pub fn add(&mut self, r: Rect) {
        if self.full {
            return;
        }
        let r = match r.intersect(&self.bounds) {
            Some(c) => c,
            None => return,
        };
        // Union-merge: fold every rectangle the new one touches into it,
        // repeating because the grown union can reach others. Unions
        // only ever grow, so no added pixel is lost.
        let mut merged = r;
        loop {
            let mut grew = false;
            self.rects.retain(|old| {
                if merged.intersect(old).is_some() {
                    merged = merged.union(old);
                    grew = true;
                    false
                } else {
                    true
                }
            });
            if !grew {
                break;
            }
        }
        self.rects.push(merged);
        if self.rects.len() > MAX_DAMAGE_RECTS {
            self.merge_cheapest_pair();
        }
        let covered: u64 = self.rects.iter().map(Rect::area).sum();
        if covered * 1000 > self.bounds.area() * FULL_COVERAGE_PERMILLE {
            self.add_full();
        }
    }

    /// Merges the pair whose union wastes the least area, keeping the
    /// list at the bound without discarding any dirty pixel.
    fn merge_cheapest_pair(&mut self) {
        let mut best = (0usize, 1usize, u64::MAX);
        for i in 0..self.rects.len() {
            for j in i + 1..self.rects.len() {
                let waste = self.rects[i]
                    .union(&self.rects[j])
                    .area()
                    .saturating_sub(self.rects[i].area())
                    .saturating_sub(self.rects[j].area());
                if waste < best.2 {
                    best = (i, j, waste);
                }
            }
        }
        let (i, j, _) = best;
        let b = self.rects.remove(j);
        let a = self.rects[i];
        self.rects[i] = a.union(&b);
    }

    /// Takes the accumulated damage, leaving the tracker clean.
    pub fn take(&mut self) -> Damage {
        let full = std::mem::take(&mut self.full);
        let mut rects = std::mem::take(&mut self.rects);
        // Canonical order: consumers (frame encoding, snapshots) see the
        // same list for the same damage regardless of insertion order.
        rects.sort_by_key(|r| (r.y, r.x, r.w, r.h));
        Damage { full, rects }
    }

    /// Merges a previously taken [`Damage`] back in (a frame that could
    /// not be shipped keeps accumulating — coalesce-to-latest).
    pub fn merge(&mut self, damage: &Damage) {
        if damage.full {
            self.add_full();
            return;
        }
        for r in &damage.rects {
            self.add(*r);
        }
    }

    /// The screen bounds this tracker clips against.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clean_and_takes_clean() {
        let mut t = DamageTracker::new(100, 100);
        assert!(!t.is_dirty());
        assert!(t.take().is_empty());
    }

    #[test]
    fn overlapping_rects_coalesce() {
        let mut t = DamageTracker::new(1000, 1000);
        t.add(Rect::new(0, 0, 10, 10));
        t.add(Rect::new(5, 5, 10, 10));
        let d = t.take();
        assert_eq!(d.rects, vec![Rect::new(0, 0, 15, 15)]);
    }

    #[test]
    fn disjoint_rects_stay_separate() {
        let mut t = DamageTracker::new(1000, 1000);
        t.add(Rect::new(0, 0, 10, 10));
        t.add(Rect::new(100, 100, 10, 10));
        assert_eq!(t.take().rects.len(), 2);
    }

    #[test]
    fn chain_merge_reaches_transitively() {
        let mut t = DamageTracker::new(1000, 1000);
        t.add(Rect::new(0, 0, 10, 10));
        t.add(Rect::new(20, 0, 10, 10));
        // Bridges both: all three must merge into one.
        t.add(Rect::new(5, 0, 20, 10));
        assert_eq!(t.take().rects, vec![Rect::new(0, 0, 30, 10)]);
    }

    #[test]
    fn list_stays_bounded() {
        let mut t = DamageTracker::new(100_000, 10);
        for i in 0..200 {
            t.add(Rect::new(i * 20, 0, 5, 5));
        }
        assert!(t.rect_count() <= MAX_DAMAGE_RECTS);
    }

    #[test]
    fn heavy_coverage_falls_back_to_full() {
        let mut t = DamageTracker::new(100, 100);
        t.add(Rect::new(0, 0, 90, 90));
        let d = t.take();
        assert!(d.full, "81% coverage must collapse to full-frame");
        assert!(d.rects.is_empty());
    }

    #[test]
    fn offscreen_damage_is_clipped_or_dropped() {
        let mut t = DamageTracker::new(100, 100);
        t.add(Rect::new(-500, -500, 10, 10));
        assert!(!t.is_dirty());
        t.add(Rect::new(95, 95, 50, 50));
        assert_eq!(t.take().rects, vec![Rect::new(95, 95, 5, 5)]);
    }

    #[test]
    fn no_dirty_pixel_is_ever_lost() {
        let mut t = DamageTracker::new(1024, 768);
        let added = [
            Rect::new(3, 3, 40, 40),
            Rect::new(100, 200, 7, 9),
            Rect::new(30, 30, 100, 5),
            Rect::new(900, 700, 200, 200), // clipped
        ];
        for r in added {
            t.add(r);
        }
        let d = t.take();
        for r in added {
            let clipped = r.intersect(&t.bounds()).unwrap();
            assert!(d.covers(&clipped), "{clipped:?} lost from {d:?}");
        }
    }

    #[test]
    fn merge_taken_damage_back_in() {
        let mut t = DamageTracker::new(100, 100);
        t.add(Rect::new(0, 0, 5, 5));
        let d = t.take();
        assert!(!t.is_dirty());
        t.merge(&d);
        assert!(t.is_dirty());
        t.merge(&Damage::full());
        assert!(t.take().full);
    }

    #[test]
    fn taken_rects_are_canonically_ordered() {
        let mut t = DamageTracker::new(1000, 1000);
        t.add(Rect::new(500, 500, 5, 5));
        t.add(Rect::new(0, 0, 5, 5));
        t.add(Rect::new(200, 0, 5, 5));
        let d = t.take();
        assert_eq!(
            d.rects,
            vec![
                Rect::new(0, 0, 5, 5),
                Rect::new(200, 0, 5, 5),
                Rect::new(500, 500, 5, 5)
            ]
        );
    }
}
